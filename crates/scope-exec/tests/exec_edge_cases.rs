//! Failure-injection and edge-case tests for the execution simulator.

use scope_exec::{execute_deterministic, explain, ABTester, ClusterConfig};
use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::{compile, RuleConfig};

fn compile_default(plan: &PlanGraph, cat: &TrueCatalog) -> scope_optimizer::PhysPlan {
    compile(plan, &cat.observe(), &RuleConfig::default_config())
        .expect("compiles")
        .plan
}

#[test]
fn empty_table_executes_in_overhead_time() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1, 0.0, DomainId(0));
    cat.add_table(0, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    g.set_root(o);
    let plan = compile_default(&g, &cat);
    let m = execute_deterministic(&plan, &cat, &ClusterConfig::noiseless());
    assert!(m.runtime.is_finite() && m.runtime > 0.0);
    assert!(
        m.runtime < 60.0,
        "empty scan should be overhead-bound: {}",
        m.runtime
    );
}

#[test]
fn zero_selectivity_filter_does_not_produce_nan() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1000, 0.0, DomainId(0));
    let p = cat.add_pred(1e-9, None); // essentially nothing passes
    cat.add_table(1_000_000_000, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom {
                col: c,
                op: CmpOp::Eq,
                literal: Literal::Int(0),
                pred: p,
            }),
        },
        vec![s],
    );
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![c],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![f],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![agg]);
    g.set_root(o);
    let plan = compile_default(&g, &cat);
    let m = execute_deterministic(&plan, &cat, &ClusterConfig::noiseless());
    assert!(m.runtime.is_finite());
    assert!(m.cpu_time.is_finite());
    assert!(m.io_time.is_finite());
}

#[test]
fn extreme_skew_dominates_runtime_but_not_cpu() {
    // Same plan, two worlds: uniform vs 90%-skewed join key. CPU totals are
    // nearly identical; the skewed world's wall-clock collapses onto one
    // vertex.
    let build = |skew: f64| -> (PlanGraph, TrueCatalog) {
        let mut cat = TrueCatalog::new();
        // A fact-to-fact join: the right side is too big to broadcast, so
        // the optimizer hash-partitions both sides on the (skewed) key.
        let k0 = cat.add_column(50_000_000, skew, DomainId(0));
        let k1 = cat.add_column(50_000_000, 0.0, DomainId(0));
        cat.add_table(500_000_000, 100, 1, vec![k0]);
        cat.add_table(50_000_000, 50, 2, vec![k1]);
        let mut g = PlanGraph::new();
        let a = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let b = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
        let j = g.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(ColId(0), ColId(1))],
            },
            vec![a, b],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![j]);
        g.set_root(o);
        (g, cat)
    };
    let (gp, cat_uniform) = build(0.0);
    let (gs, cat_skewed) = build(0.9);
    let cluster = ClusterConfig::noiseless();
    let plan_u = compile_default(&gp, &cat_uniform);
    let plan_s = compile_default(&gs, &cat_skewed);
    let mu = execute_deterministic(&plan_u, &cat_uniform, &cluster);
    let ms = execute_deterministic(&plan_s, &cat_skewed, &cluster);
    // Plans are identical (the optimizer can't see skew), so only truth
    // differs. Note: the heavy-hitter join also inflates output rows, so
    // CPU differs somewhat — but runtime must blow up far more.
    let runtime_ratio = ms.runtime / mu.runtime;
    let cpu_ratio = ms.cpu_time / mu.cpu_time;
    assert!(runtime_ratio > 3.0, "runtime ratio {runtime_ratio}");
    assert!(
        runtime_ratio > cpu_ratio * 1.5,
        "skew must hit wall-clock harder than CPU: {runtime_ratio} vs {cpu_ratio}"
    );
}

#[test]
fn ab_runner_metrics_are_positive_across_trials() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(100, 0.0, DomainId(0));
    cat.add_table(50_000_000, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    g.set_root(o);
    let plan = compile_default(&g, &cat);
    let ab = ABTester::new(3);
    let mut runtimes = Vec::new();
    for trial in 0..20 {
        let m = ab.run_with_catalog(1, &cat, &plan, trial);
        assert!(m.runtime > 0.0 && m.runtime.is_finite());
        runtimes.push(m.runtime);
    }
    // Noise produces distinct trials but bounded spread.
    let min = runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = runtimes.iter().cloned().fold(0.0_f64, f64::max);
    assert!(max > min);
    assert!(max / min < 2.0, "noise spread too wide: {min}..{max}");
}

#[test]
fn explain_handles_single_node_stage_graphs() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(10, 0.0, DomainId(0));
    cat.add_table(100, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    g.set_root(o);
    let plan = compile_default(&g, &cat);
    let trace = explain(&plan, &cat, &ClusterConfig::noiseless());
    assert!(!trace.nodes.is_empty());
    assert!(!trace.stages.is_empty());
    assert!(!trace.render().is_empty());
}

#[test]
fn more_tokens_never_hurt() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1000, 0.0, DomainId(0));
    cat.add_table(2_000_000_000, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![c],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![s],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![agg]);
    g.set_root(o);
    let plan = compile_default(&g, &cat);
    let mut last = f64::INFINITY;
    for tokens in [10u32, 25, 50, 100, 250] {
        let cluster = ClusterConfig {
            tokens,
            ..ClusterConfig::noiseless()
        };
        let m = execute_deterministic(&plan, &cat, &cluster);
        assert!(
            m.runtime <= last + 1e-9,
            "tokens {tokens} regressed runtime"
        );
        last = m.runtime;
    }
}
