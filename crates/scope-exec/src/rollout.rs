//! Deterministic traffic splitting for staged (canaried) rollouts.
//!
//! QO-Advisor's flighting pipeline exposes a hint to a *fraction* of its
//! matching traffic before trusting it fleet-wide. The assignment has to
//! be a pure function of the job and the flight — never of wall-clock
//! time, thread interleaving, or sampling RNG state — so that a replay of
//! the same workload reproduces bit-identical serving decisions, and so
//! that the *same* job lands on the same side of the split every day it
//! recurs (a job flapping between steered and default would double the
//! variance the canary monitor sees).
//!
//! The split hashes `(salt, unit)` with the standard SipHash-backed
//! [`DefaultHasher`], which is deterministic for a fixed key pair — the
//! same property [`plan_fingerprint`](crate::abtest::plan_fingerprint)
//! already relies on. The salt decorrelates flights: two hints canarying
//! at 5% each should not pick the *same* 5% of jobs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Whether `unit` (a job id) is inside the first `pct` percent of the
/// hash ring for the flight identified by `salt`.
///
/// Monotone in `pct`: the population served at 5% is a subset of the
/// population served at 25%, so ramping a flight up only *adds* jobs to
/// the treatment group — it never swaps one cohort for another.
pub fn in_rollout(unit: u64, salt: u64, pct: u8) -> bool {
    if pct == 0 {
        return false;
    }
    if pct >= 100 {
        return true;
    }
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    unit.hash(&mut h);
    (h.finish() % 100) < u64::from(pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_total() {
        for unit in 0..256u64 {
            assert!(!in_rollout(unit, 7, 0));
            assert!(in_rollout(unit, 7, 100));
            assert!(in_rollout(unit, 7, 255));
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        for unit in 0..512u64 {
            for pct in [1u8, 5, 25, 50, 99] {
                assert_eq!(
                    in_rollout(unit, 0xF11, pct),
                    in_rollout(unit, 0xF11, pct),
                    "unit {unit} pct {pct}"
                );
            }
        }
    }

    #[test]
    fn ramping_up_is_monotone() {
        for unit in 0..2048u64 {
            let mut prev = false;
            for pct in 0..=100u8 {
                let now = in_rollout(unit, 99, pct);
                assert!(now || !prev, "unit {unit} left the rollout at {pct}%");
                prev = now;
            }
        }
    }

    #[test]
    fn split_fraction_tracks_pct() {
        let n = 20_000u64;
        for pct in [5u8, 25, 50] {
            let hits = (0..n).filter(|&u| in_rollout(u, 0xA5A5, pct)).count() as f64;
            let frac = hits / n as f64;
            let want = f64::from(pct) / 100.0;
            assert!(
                (frac - want).abs() < 0.02,
                "pct {pct}: observed fraction {frac:.3}"
            );
        }
    }

    #[test]
    fn salts_decorrelate_flights() {
        let n = 20_000u64;
        let both = (0..n)
            .filter(|&u| in_rollout(u, 1, 10) && in_rollout(u, 2, 10))
            .count() as f64;
        // Independent 10% splits overlap on ~1% of units; identical splits
        // would overlap on 10%.
        let overlap = both / n as f64;
        assert!(overlap < 0.03, "overlap {overlap}");
    }
}
