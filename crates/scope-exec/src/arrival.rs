//! Deterministic diurnal job-arrival streams for the serving layer.
//!
//! The batch experiments hand `compile_day` a whole day of jobs at once;
//! a *serving* daemon instead sees jobs arrive one at a time on a
//! diurnal curve — quiet overnight, a morning ramp, an afternoon peak —
//! and must survive the hours where arrivals bunch up. This module
//! synthesizes that stream without ever touching a wall clock: a job's
//! arrival offset is a pure function of `(seed, day, job index)`, so the
//! same workload replays bit-identically regardless of thread count or
//! host, and a fault profile can overlay a [`ArrivalBurst`] that remaps a
//! fraction of the day's arrivals into a short spike (the overload case
//! admission control exists for).
//!
//! Arrival times are *virtual microseconds since the day's start*; the
//! serving loop treats them as its only clock.

/// Virtual length of one serving day, in microseconds.
pub const DAY_US: u64 = 86_400_000_000;

/// Relative arrival weight per hour of the virtual day: a two-peak
/// business-hours curve (09:00 and 15:00) over a non-zero overnight
/// floor, loosely matching recurring-job cluster load.
const HOUR_WEIGHTS: [f64; 24] = [
    0.3, 0.25, 0.2, 0.2, 0.25, 0.4, 0.7, 1.1, 1.6, 2.0, 1.9, 1.7, 1.5, 1.7, 1.9, 2.0, 1.8, 1.4,
    1.0, 0.8, 0.6, 0.5, 0.4, 0.35,
];

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A unit-interval draw that is a pure function of its arguments.
/// `stream` decorrelates the independent decisions made per job.
#[inline]
fn unit(seed: u64, day: u32, idx: u64, stream: u64) -> f64 {
    let h = mix64(seed ^ mix64(u64::from(day) ^ mix64(idx ^ mix64(stream))));
    // 53 high bits → uniform in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A burst overlay: a `fraction` of the day's arrivals is remapped into
/// the window `[start_frac, start_frac + width_frac)` of the day,
/// modelling a thundering-herd spike on top of the diurnal baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArrivalBurst {
    /// Window start, as a fraction of the day (`0.0..1.0`).
    pub start_frac: f64,
    /// Window width, as a fraction of the day (> 0).
    pub width_frac: f64,
    /// Fraction of arrivals remapped into the window (`0.0..=1.0`).
    pub fraction: f64,
}

impl ArrivalBurst {
    /// The default overload spike: 60% of the day's traffic crammed into
    /// a two-minute-scale window mid-morning.
    pub fn spike() -> ArrivalBurst {
        ArrivalBurst {
            start_frac: 0.40,
            width_frac: 0.002,
            fraction: 0.6,
        }
    }
}

/// The deterministic arrival-time generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalCurve {
    pub seed: u64,
    /// Virtual day length in microseconds ([`DAY_US`] by default).
    pub day_us: u64,
}

impl ArrivalCurve {
    pub fn new(seed: u64) -> ArrivalCurve {
        ArrivalCurve {
            seed,
            day_us: DAY_US,
        }
    }

    /// Arrival offset (µs since the day's start) for job `idx` on `day`,
    /// optionally remapped by a burst overlay. Pure: the same arguments
    /// always produce the same offset.
    pub fn arrival_us(&self, day: u32, idx: u64, burst: Option<&ArrivalBurst>) -> u64 {
        if let Some(b) = burst {
            if unit(self.seed, day, idx, 2) < b.fraction.clamp(0.0, 1.0) {
                let start = b.start_frac.clamp(0.0, 1.0);
                let width = b.width_frac.max(1e-9).min(1.0 - start);
                let frac = start + unit(self.seed, day, idx, 3) * width;
                return ((frac * self.day_us as f64) as u64).min(self.day_us - 1);
            }
        }
        // Pick an hour bin by the diurnal weights, then a uniform offset
        // within the bin.
        let total: f64 = HOUR_WEIGHTS.iter().sum();
        let mut target = unit(self.seed, day, idx, 0) * total;
        let mut hour = HOUR_WEIGHTS.len() - 1;
        for (h, &w) in HOUR_WEIGHTS.iter().enumerate() {
            if target < w {
                hour = h;
                break;
            }
            target -= w;
        }
        let bin_us = self.day_us / HOUR_WEIGHTS.len() as u64;
        let within = (unit(self.seed, day, idx, 1) * bin_us as f64) as u64;
        (hour as u64 * bin_us + within).min(self.day_us - 1)
    }

    /// Arrival offsets for jobs `0..n` on `day`, in job-index order
    /// (callers sort by arrival themselves when they need stream order).
    pub fn day_arrivals(&self, day: u32, n: usize, burst: Option<&ArrivalBurst>) -> Vec<u64> {
        (0..n as u64)
            .map(|idx| self.arrival_us(day, idx, burst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_and_in_range() {
        let c = ArrivalCurve::new(7);
        for day in 0..3 {
            for idx in 0..200 {
                let a = c.arrival_us(day, idx, None);
                assert_eq!(a, c.arrival_us(day, idx, None));
                assert!(a < DAY_US);
            }
        }
    }

    #[test]
    fn different_days_and_seeds_differ() {
        let c = ArrivalCurve::new(7);
        let d0 = c.day_arrivals(0, 100, None);
        let d1 = c.day_arrivals(1, 100, None);
        assert_ne!(d0, d1);
        let other = ArrivalCurve::new(8).day_arrivals(0, 100, None);
        assert_ne!(d0, other);
    }

    #[test]
    fn curve_is_diurnal_not_uniform() {
        let c = ArrivalCurve::new(2021);
        let arrivals = c.day_arrivals(0, 20_000, None);
        let bin_us = DAY_US / 24;
        let mut per_hour = [0usize; 24];
        for a in arrivals {
            per_hour[(a / bin_us) as usize % 24] += 1;
        }
        // The 09:00 and 15:00 peaks must clearly dominate the 02:00
        // trough (weights 2.0 vs 0.2 → ~10x in expectation).
        assert!(per_hour[9] > per_hour[2] * 4, "{per_hour:?}");
        assert!(per_hour[15] > per_hour[2] * 4, "{per_hour:?}");
    }

    #[test]
    fn burst_concentrates_arrivals() {
        let c = ArrivalCurve::new(11);
        let burst = ArrivalBurst::spike();
        let arrivals = c.day_arrivals(0, 10_000, Some(&burst));
        let lo = (burst.start_frac * DAY_US as f64) as u64;
        let hi = ((burst.start_frac + burst.width_frac) * DAY_US as f64) as u64;
        let in_window = arrivals.iter().filter(|&&a| a >= lo && a < hi).count();
        // 60% of arrivals are remapped into a window that would naturally
        // hold ~0.2% of the day.
        assert!(
            in_window as f64 > 0.5 * arrivals.len() as f64,
            "only {in_window} of {} arrivals in the burst window",
            arrivals.len()
        );
    }
}
