//! Seeded, deterministic fault injection for the cluster simulator.
//!
//! Production SCOPE clusters lose vertices to transient machine failures,
//! grow stragglers on hot or degraded nodes, and occasionally have whole
//! stages preempted when capacity is reclaimed. The paper's steering
//! pipeline has to survive all of that: a candidate configuration whose
//! A/B trial dies is *evidence to discard*, not a panic, and a steered
//! production run that fails falls back to the default plan (§3.3's
//! guardrail). This module injects those failure modes into the simulator
//! in a seeded, reproducible way:
//!
//! * [`FaultProfile`] — per-run fault rates: transient per-vertex failure
//!   probability, straggler probability and slowdown, stage preemption,
//!   retry budget with exponential backoff, and an optional job timeout.
//! * [`JobOutcome`] — what happened: clean success, success after retries,
//!   retry-budget exhaustion, or timeout.
//! * [`execute_with_faults`] — the faulted twin of
//!   [`execute`](crate::simulate::execute). With [`FaultProfile::none`] it
//!   delegates to the noise-only simulator and is bit-identical to it.
//!
//! Failed vertices force their stage to re-run: retries consume a shared
//! job-level budget, add exponential backoff to the critical path, and
//! inflate CPU/IO by the re-executed work. Stragglers stretch a stage's
//! wall time; with speculative execution enabled the scheduler launches a
//! backup copy, capping the stretch but duplicating the stage's work.

use rand::Rng;

use scope_ir::stats::lognormal;
use scope_ir::TrueCatalog;
use scope_optimizer::PhysPlan;

use crate::cluster::ClusterConfig;
use crate::simulate::{
    build_stages, execute, waves_for_tokens, RunMetrics, StageGraph, STAGE_OVERHEAD_S,
    WAVE_OVERHEAD_S,
};
use crate::truth::{replay, NodeTruth};
use crate::work::{node_work, NodeWork};

/// Speculative execution caps a straggling stage's stretch at this factor
/// (the backup copy usually finishes first).
const SPECULATION_CAP: f64 = 1.5;
/// Exponential backoff stops doubling after this many retries.
const BACKOFF_DOUBLING_CAP: u32 = 6;

/// Fault rates applied to one simulated run. All probabilities are per
/// stage *attempt*; vertex failures compound with the stage's parallelism.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability that a single vertex attempt fails transiently. A stage
    /// with `dop` vertices fails with probability `1 - (1-p)^dop`.
    pub vertex_failure_prob: f64,
    /// Probability that a stage attempt grows a straggler.
    pub straggler_prob: f64,
    /// Wall-time multiplier for a straggling stage attempt (≥ 1).
    pub straggler_slowdown: f64,
    /// Probability that a stage attempt is preempted by capacity reclaim
    /// (kills the whole attempt, like a failure).
    pub preemption_prob: f64,
    /// Job-level retry budget shared across all stages.
    pub max_retries: u32,
    /// Backoff before the first retry (seconds); doubles per retry.
    pub backoff_base_s: f64,
    /// Seeded jitter applied to each backoff interval: the interval is
    /// multiplied by a factor drawn uniformly from `[1-f, 1+f]` using the
    /// per-job RNG, so retries de-synchronize under burst failures
    /// instead of forming a retry storm. `0.0` (the default) reproduces
    /// the unjittered schedule bit-for-bit; serial/parallel bit-identity
    /// is preserved because the draw comes from the job's own RNG split.
    pub backoff_jitter_frac: f64,
    /// Launch backup copies for stragglers (caps the stretch, duplicates
    /// the stage's work).
    pub speculative_execution: bool,
    /// Job-level wall-clock timeout in seconds.
    pub timeout_s: Option<f64>,
    /// Planted plan-targeted regressions: any run whose
    /// [`plan_fingerprint`](crate::abtest::plan_fingerprint) appears here
    /// has its runtime and CPU multiplied by the paired factor. This
    /// models an environment shift that hurts *one specific plan shape*
    /// (the case flighting must contain) while leaving every other plan —
    /// including the default plan for the same job — untouched.
    pub slowdown_plans: Vec<(u64, f64)>,
}

impl FaultProfile {
    /// No faults at all. [`execute_with_faults`] with this profile is
    /// bit-identical to the noise-only simulator.
    pub fn none() -> FaultProfile {
        FaultProfile {
            vertex_failure_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            preemption_prob: 0.0,
            max_retries: 3,
            backoff_base_s: 5.0,
            backoff_jitter_frac: 0.0,
            speculative_execution: true,
            timeout_s: None,
            slowdown_plans: Vec::new(),
        }
    }

    /// A mildly unhealthy cluster: rare vertex failures, occasional
    /// stragglers.
    pub fn light() -> FaultProfile {
        FaultProfile {
            vertex_failure_prob: 2e-4,
            straggler_prob: 0.02,
            straggler_slowdown: 2.5,
            preemption_prob: 0.002,
            ..FaultProfile::none()
        }
    }

    /// A bad day: frequent vertex failures, common stragglers, real
    /// preemption pressure.
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            vertex_failure_prob: 2e-3,
            straggler_prob: 0.10,
            straggler_slowdown: 4.0,
            preemption_prob: 0.01,
            ..FaultProfile::none()
        }
    }

    /// A profile that only injects transient vertex failures at `p` (used
    /// by the fault-sweep experiment).
    pub fn with_vertex_failures(p: f64) -> FaultProfile {
        FaultProfile {
            vertex_failure_prob: p,
            ..FaultProfile::none()
        }
    }

    /// Same profile with a job-level timeout.
    pub fn with_timeout(mut self, timeout_s: f64) -> FaultProfile {
        self.timeout_s = Some(timeout_s);
        self
    }

    /// A profile that only plants plan-targeted slowdowns (used by the
    /// flighting experiment to inject a regression into specific hints).
    pub fn with_slowdown_plans(plans: Vec<(u64, f64)>) -> FaultProfile {
        FaultProfile {
            slowdown_plans: plans,
            ..FaultProfile::none()
        }
    }

    /// Same profile with seeded backoff jitter (see
    /// [`backoff_jitter_frac`](FaultProfile::backoff_jitter_frac)).
    /// `frac` is clamped to `[0, 1]`.
    pub fn with_backoff_jitter(mut self, frac: f64) -> FaultProfile {
        self.backoff_jitter_frac = frac.clamp(0.0, 1.0);
        self
    }

    /// True when the profile cannot change an execution in any way.
    pub fn is_none(&self) -> bool {
        self.vertex_failure_prob <= 0.0
            && self.straggler_prob <= 0.0
            && self.preemption_prob <= 0.0
            && self.timeout_s.is_none()
            && self.slowdown_plans.is_empty()
    }

    /// The planted slowdown factor for a plan fingerprint (1.0 when the
    /// plan is not targeted). First match wins.
    pub fn slowdown_for(&self, fingerprint: u64) -> f64 {
        self.slowdown_plans
            .iter()
            .find(|(fp, _)| *fp == fingerprint)
            .map_or(1.0, |(_, factor)| factor.max(0.0))
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::none()
    }
}

/// How a simulated job run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// Finished with no faults observed.
    Success,
    /// Finished, but some stages had to be re-run.
    SuccessWithRetries { retries: u32 },
    /// The retry budget ran out before the job completed.
    Failed { reason: String },
    /// The job exceeded its wall-clock timeout.
    TimedOut,
}

impl JobOutcome {
    /// Whether the job produced its output.
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            JobOutcome::Success | JobOutcome::SuccessWithRetries { .. }
        )
    }

    /// Retries consumed (0 unless `SuccessWithRetries`).
    pub fn retries(&self) -> u32 {
        match self {
            JobOutcome::SuccessWithRetries { retries } => *retries,
            _ => 0,
        }
    }
}

/// One faulted execution: metrics plus how the run ended.
#[derive(Clone, Debug)]
pub struct FaultedRun {
    /// For failed/timed-out runs these are the *partial* metrics up to the
    /// abort point — still finite and non-negative, never NaN.
    pub metrics: RunMetrics,
    pub outcome: JobOutcome,
    /// Stage re-executions consumed from the retry budget.
    pub retries: u32,
    /// Speculative backup copies launched for stragglers.
    pub speculative_copies: u32,
}

/// Deterministic process-crash fault for crash-safety testing.
///
/// A crash plan is a countdown over durable-write operations (journal
/// appends, snapshot writes): while the countdown lasts every operation
/// persists normally, the operation on which it expires is *torn* — only
/// a byte prefix reaches stable storage, modelling a crash mid-`write` —
/// and every operation after that is lost entirely (the process is dead).
/// Being a countdown rather than a probability keeps crash tests
/// bit-reproducible: the same plan always kills the same write.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashPlan {
    remaining: u64,
    torn_bytes: usize,
    dead: bool,
}

/// What a [`CrashPlan`] decided for one durable-write operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashRoll {
    /// The write persists in full.
    Alive,
    /// The process crashed mid-write: only this many bytes persisted.
    Torn(usize),
    /// The process is already dead; nothing persists.
    Dead,
}

impl CrashPlan {
    /// Crash on the write after `survive` successful operations, leaving
    /// `torn_bytes` of that final write on stable storage.
    pub fn after_ops(survive: u64, torn_bytes: usize) -> CrashPlan {
        CrashPlan {
            remaining: survive,
            torn_bytes,
            dead: false,
        }
    }

    /// Roll the plan for the next durable-write operation.
    pub fn roll(&mut self) -> CrashRoll {
        if self.dead {
            return CrashRoll::Dead;
        }
        if self.remaining == 0 {
            self.dead = true;
            return CrashRoll::Torn(self.torn_bytes);
        }
        self.remaining -= 1;
        CrashRoll::Alive
    }

    /// Whether the simulated process has already crashed.
    pub fn crashed(&self) -> bool {
        self.dead
    }
}

/// A torn serving-table snapshot swap: the publisher "crashes" partway
/// through its `publish`-th copy-on-write swap (0-based), completing only
/// the first `shards_completed` shards; optionally one entry of the last
/// completed shard is written with a corrupted checksum, modelling a torn
/// entry write the read path must detect and refuse to serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TornSwap {
    /// 0-based index of the publish operation that tears.
    pub publish: u64,
    /// Shards fully swapped before the tear.
    pub shards_completed: usize,
    /// Plant one checksum-corrupted entry in the last completed shard.
    pub corrupt_entry: bool,
}

/// Fault rates targeting the *serving loop* rather than simulated
/// execution: slow table lookups, torn snapshot swaps, flighting-journal
/// write stalls, and burst overload on the arrival curve. All randomness
/// is derived from pure hashes of `(seed, day, index)` inside the serving
/// layer, so a profile is bit-reproducible across runs and thread counts.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeFaultProfile {
    /// Profile name, used in reports and the bench fault matrix.
    pub name: &'static str,
    /// Probability a single lookup is slow (per-request deterministic roll).
    pub slow_lookup_prob: f64,
    /// Extra decision latency added to a slow lookup (µs).
    pub slow_lookup_extra_us: u64,
    /// Probability a flighting-journal write stalls (per maintenance tick);
    /// consecutive stalls trip the circuit breaker.
    pub journal_stall_prob: f64,
    /// Torn snapshot swap, if any.
    pub torn_swap: Option<TornSwap>,
    /// Burst overload overlay on the arrival curve, if any.
    pub burst: Option<crate::arrival::ArrivalBurst>,
}

impl ServeFaultProfile {
    /// No serving faults.
    pub fn none() -> ServeFaultProfile {
        ServeFaultProfile {
            name: "none",
            slow_lookup_prob: 0.0,
            slow_lookup_extra_us: 0,
            journal_stall_prob: 0.0,
            torn_swap: None,
            burst: None,
        }
    }

    /// A quarter of lookups blow straight through the decision deadline.
    pub fn slow_lookups() -> ServeFaultProfile {
        ServeFaultProfile {
            name: "slow_lookups",
            slow_lookup_prob: 0.25,
            slow_lookup_extra_us: 5_000,
            ..ServeFaultProfile::none()
        }
    }

    /// The second snapshot publish tears halfway through its shards and
    /// plants one checksum-corrupted entry.
    pub fn torn_swaps() -> ServeFaultProfile {
        ServeFaultProfile {
            name: "torn_swaps",
            torn_swap: Some(TornSwap {
                publish: 1,
                shards_completed: 4,
                corrupt_entry: true,
            }),
            ..ServeFaultProfile::none()
        }
    }

    /// Half of all flighting-journal writes stall — breaker food.
    pub fn journal_stalls() -> ServeFaultProfile {
        ServeFaultProfile {
            name: "journal_stalls",
            journal_stall_prob: 0.5,
            ..ServeFaultProfile::none()
        }
    }

    /// A thundering-herd arrival spike (see
    /// [`ArrivalBurst::spike`](crate::arrival::ArrivalBurst::spike)).
    pub fn burst_overload() -> ServeFaultProfile {
        ServeFaultProfile {
            name: "burst_overload",
            burst: Some(crate::arrival::ArrivalBurst::spike()),
            ..ServeFaultProfile::none()
        }
    }

    /// The full fault matrix the serving bench replays.
    pub fn all() -> Vec<ServeFaultProfile> {
        vec![
            ServeFaultProfile::none(),
            ServeFaultProfile::slow_lookups(),
            ServeFaultProfile::torn_swaps(),
            ServeFaultProfile::journal_stalls(),
            ServeFaultProfile::burst_overload(),
        ]
    }
}

impl Default for ServeFaultProfile {
    fn default() -> Self {
        ServeFaultProfile::none()
    }
}

/// Fault accounting for one pass over the stage graph.
struct Schedule {
    runtime: f64,
    /// Stage-elapsed seconds that were executed more than once (retried
    /// fractions, speculative copies). Inflates CPU and IO.
    rework_elapsed: f64,
    /// Fault-free stage-elapsed seconds (denominator for the rework
    /// fraction).
    clean_elapsed: f64,
    retries: u32,
    speculative_copies: u32,
    /// Stage index where the retry budget ran out, if any.
    failed_at: Option<usize>,
}

/// Walk the stage graph in topological order, rolling faults per stage
/// attempt. Failures and preemptions kill the attempt partway through and
/// consume the shared retry budget (plus exponential backoff); stragglers
/// stretch the attempt, capped when speculative execution is on.
fn schedule_with_faults<R: Rng + ?Sized>(
    stages: &StageGraph,
    tokens: u32,
    profile: &FaultProfile,
    rng: &mut R,
) -> Schedule {
    let n = stages.stages.len();
    let mut finish = vec![0.0_f64; n];
    let mut sched = Schedule {
        runtime: STAGE_OVERHEAD_S,
        rework_elapsed: 0.0,
        clean_elapsed: 0.0,
        retries: 0,
        speculative_copies: 0,
        failed_at: None,
    };
    let mut retries_left = profile.max_retries;

    for (i, stage) in stages.stages.iter().enumerate() {
        let start = stage
            .deps
            .iter()
            .map(|&d| finish[d])
            .fold(0.0_f64, f64::max);
        let waves = waves_for_tokens(stage.dop, tokens);
        let clean = stage.elapsed * waves + STAGE_OVERHEAD_S + WAVE_OVERHEAD_S * waves;
        sched.clean_elapsed += stage.elapsed;

        // A stage attempt dies when any of its vertices fails transiently
        // (compounding with parallelism) or the attempt is preempted.
        let p_vertex_escalated = if profile.vertex_failure_prob > 0.0 {
            1.0 - (1.0 - profile.vertex_failure_prob.min(1.0)).powi(stage.dop.max(1) as i32)
        } else {
            0.0
        };
        let p_attempt_dies = (p_vertex_escalated + profile.preemption_prob).clamp(0.0, 0.95);

        let mut time = 0.0;
        loop {
            let mut attempt_time = clean;
            if profile.straggler_prob > 0.0 && rng.gen_bool(profile.straggler_prob.min(1.0)) {
                scope_trace::count(scope_trace::Counter::ExecStragglers, 1);
                let slow = profile.straggler_slowdown.max(1.0);
                if profile.speculative_execution {
                    attempt_time = clean * slow.min(SPECULATION_CAP);
                    sched.speculative_copies += 1;
                    // The backup duplicates the straggling stage's work.
                    sched.rework_elapsed += stage.elapsed;
                } else {
                    attempt_time = clean * slow;
                }
            }
            if p_attempt_dies > 0.0 && rng.gen_bool(p_attempt_dies) {
                // The attempt dies partway through; its work is wasted.
                let done_frac: f64 = rng.gen_range(0.1..0.9);
                time += attempt_time * done_frac;
                sched.rework_elapsed += stage.elapsed * done_frac;
                if retries_left == 0 {
                    finish[i] = start + time;
                    sched.failed_at = Some(i);
                    sched.runtime = finish[i];
                    debug_assert!(
                        sched.runtime.is_finite() && sched.runtime >= 0.0,
                        "faulted schedule runtime must stay finite: {}",
                        sched.runtime
                    );
                    return sched;
                }
                retries_left -= 1;
                sched.retries += 1;
                let doubling = (sched.retries - 1).min(BACKOFF_DOUBLING_CAP);
                let mut backoff = profile.backoff_base_s.max(0.0) * f64::powi(2.0, doubling as i32);
                // Seeded de-synchronizing jitter. The RNG draw is gated so
                // jitter-free profiles keep their historical fault stream.
                if profile.backoff_jitter_frac > 0.0 {
                    let f = profile.backoff_jitter_frac.min(1.0);
                    backoff *= 1.0 + f * rng.gen_range(-1.0..1.0);
                }
                time += backoff;
                continue;
            }
            time += attempt_time;
            break;
        }
        finish[i] = start + time;
    }

    sched.runtime = finish
        .get(stages.root_stage)
        .copied()
        .unwrap_or(STAGE_OVERHEAD_S);
    debug_assert!(
        sched.runtime.is_finite() && sched.runtime >= 0.0,
        "faulted schedule runtime must stay finite: {}",
        sched.runtime
    );
    sched
}

/// Execute a plan under a fault profile. With [`FaultProfile::none`] this
/// is bit-identical to [`execute`](crate::simulate::execute) (same RNG
/// stream, same metrics); otherwise faults are rolled deterministically
/// from `rng`, so a fixed seed gives a fixed outcome.
pub fn execute_with_faults<R: Rng + ?Sized>(
    plan: &PhysPlan,
    cat: &TrueCatalog,
    cluster: &ClusterConfig,
    profile: &FaultProfile,
    rng: &mut R,
) -> FaultedRun {
    if profile.is_none() {
        let metrics = execute(plan, cat, cluster, rng);
        return FaultedRun {
            metrics,
            outcome: JobOutcome::Success,
            retries: 0,
            speculative_copies: 0,
        };
    }

    let truths = replay(plan, cat);
    let mut works = vec![NodeWork::default(); plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let children: Vec<&NodeTruth> = node.children.iter().map(|c| &truths[c.index()]).collect();
        works[id.index()] = node_work(&node.op, &truths[id.index()], &children, cat, cluster);
    }
    let stages = build_stages(plan, &truths, &works);
    let mut sched = schedule_with_faults(&stages, cluster.tokens, profile, rng);
    // Planted plan-targeted regression: the environment shift stretches
    // this specific plan's schedule and burns proportional CPU, before
    // cluster noise is applied (so the regression survives averaging).
    let slowdown = profile.slowdown_for(crate::abtest::plan_fingerprint(plan));
    if slowdown != 1.0 {
        sched.runtime *= slowdown;
    }

    let mut cpu = 0.0;
    let mut io = 0.0;
    let mut mem = 0.0_f64;
    for id in plan.reachable() {
        cpu += works[id.index()].cpu;
        io += works[id.index()].io + works[id.index()].net;
        mem = mem.max(works[id.index()].mem);
    }
    // Re-executed work burns CPU and re-reads inputs proportionally.
    let rework_frac = if sched.clean_elapsed > 0.0 {
        sched.rework_elapsed / sched.clean_elapsed
    } else {
        0.0
    };
    cpu *= (1.0 + rework_frac) * slowdown;
    io *= 1.0 + rework_frac;

    // The same mean-one lognormal cluster noise as the fault-free path.
    let sigma = cluster.sigma_for_runtime(sched.runtime);
    let mut metrics = if sigma == 0.0 {
        RunMetrics {
            runtime: sched.runtime,
            cpu_time: cpu,
            io_time: io,
            memory: mem,
        }
    } else {
        let mut mean_one = |s: f64| lognormal(rng, -s * s / 2.0, s);
        // Three draws in the original order; the byte peak takes none.
        RunMetrics {
            runtime: sched.runtime * mean_one(sigma),
            cpu_time: cpu * mean_one(sigma * 0.5),
            io_time: io * mean_one(sigma * 0.5),
            memory: mem,
        }
    };

    let outcome = if let Some(stage) = sched.failed_at {
        JobOutcome::Failed {
            reason: format!(
                "retry budget ({}) exhausted at stage {stage}",
                profile.max_retries
            ),
        }
    } else if matches!(profile.timeout_s, Some(t) if metrics.runtime > t) {
        // The job is killed at the deadline; work done up to it is billed.
        let t = profile.timeout_s.unwrap();
        let done_frac = (t / metrics.runtime).clamp(0.0, 1.0);
        metrics.runtime = t;
        metrics.cpu_time *= done_frac;
        metrics.io_time *= done_frac;
        // The working-set peak was reached before the kill: report it as-is.
        JobOutcome::TimedOut
    } else if sched.retries > 0 {
        JobOutcome::SuccessWithRetries {
            retries: sched.retries,
        }
    } else {
        JobOutcome::Success
    };

    debug_assert!(
        metrics.is_valid(),
        "faulted metrics must stay finite and non-negative: {metrics:?}"
    );
    scope_trace::count(scope_trace::Counter::ExecRuns, 1);
    scope_trace::count(scope_trace::Counter::ExecRetries, sched.retries as u64);
    scope_trace::count(
        scope_trace::Counter::ExecSpeculativeCopies,
        sched.speculative_copies as u64,
    );
    if scope_trace::enabled() {
        match &outcome {
            JobOutcome::Failed { .. } => scope_trace::count(scope_trace::Counter::ExecFailures, 1),
            JobOutcome::TimedOut => scope_trace::count(scope_trace::Counter::ExecTimeouts, 1),
            JobOutcome::Success | JobOutcome::SuccessWithRetries { .. } => {}
        }
        scope_trace::record(
            scope_trace::Histogram::ExecSimulatedMillis,
            (metrics.runtime * 1000.0) as u64,
        );
        for stage in &stages.stages {
            scope_trace::record(
                scope_trace::Histogram::StageSimulatedMillis,
                (stage.elapsed * 1000.0) as u64,
            );
        }
    }
    FaultedRun {
        metrics,
        outcome,
        retries: sched.retries,
        speculative_copies: sched.speculative_copies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::Stage;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain_graph(elapsed: f64, dop: u32, n: usize) -> StageGraph {
        let stages = (0..n)
            .map(|i| Stage {
                elapsed,
                dop,
                deps: if i == 0 { vec![] } else { vec![i - 1] },
            })
            .collect();
        StageGraph {
            stages,
            node_stage: vec![],
            root_stage: n - 1,
        }
    }

    #[test]
    fn none_profile_is_inert() {
        let p = FaultProfile::none();
        assert!(p.is_none());
        assert!(!FaultProfile::light().is_none());
        assert!(!FaultProfile::heavy().is_none());
        assert!(!FaultProfile::none().with_timeout(60.0).is_none());
    }

    #[test]
    fn schedule_without_faults_matches_makespan() {
        let g = chain_graph(10.0, 50, 3);
        let p = FaultProfile::none();
        let mut rng = StdRng::seed_from_u64(1);
        let sched = schedule_with_faults(&g, 50, &p, &mut rng);
        let expected = crate::simulate::makespan(&g, 50);
        assert!((sched.runtime - expected).abs() < 1e-9);
        assert_eq!(sched.retries, 0);
        assert!(sched.failed_at.is_none());
        assert_eq!(sched.rework_elapsed, 0.0);
    }

    #[test]
    fn retries_add_time_and_rework() {
        let g = chain_graph(10.0, 100, 4);
        let mut p = FaultProfile::with_vertex_failures(0.01);
        p.max_retries = 50;
        // With dop 100 and p=0.01, each attempt dies with ~63% probability:
        // retries are essentially guaranteed over 4 stages.
        let mut rng = StdRng::seed_from_u64(3);
        let sched = schedule_with_faults(&g, 100, &p, &mut rng);
        assert!(sched.retries > 0);
        assert!(sched.failed_at.is_none(), "budget of 50 should suffice");
        assert!(sched.rework_elapsed > 0.0);
        assert!(sched.runtime > crate::simulate::makespan(&g, 100));
    }

    #[test]
    fn budget_exhaustion_fails_the_job() {
        let g = chain_graph(10.0, 1000, 4);
        let mut p = FaultProfile::with_vertex_failures(0.05);
        p.max_retries = 2;
        // dop 1000 at p=0.05 → every attempt dies (capped at 95%).
        let mut rng = StdRng::seed_from_u64(1);
        let sched = schedule_with_faults(&g, 100, &p, &mut rng);
        assert_eq!(sched.retries, 2);
        assert!(sched.failed_at.is_some());
        assert!(sched.runtime.is_finite() && sched.runtime > 0.0);
    }

    #[test]
    fn stragglers_stretch_but_speculation_caps() {
        let g = chain_graph(100.0, 50, 6);
        let mut p = FaultProfile::none();
        p.straggler_prob = 1.0; // every stage straggles
        p.straggler_slowdown = 4.0;
        p.speculative_execution = false;
        let mut rng = StdRng::seed_from_u64(1);
        let slow = schedule_with_faults(&g, 50, &p, &mut rng);
        p.speculative_execution = true;
        let mut rng = StdRng::seed_from_u64(1);
        let capped = schedule_with_faults(&g, 50, &p, &mut rng);
        assert!(capped.runtime < slow.runtime);
        assert_eq!(capped.speculative_copies, 6);
        // Speculation trades wall time for duplicated work.
        assert!(capped.rework_elapsed > slow.rework_elapsed);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let g = chain_graph(20.0, 200, 5);
        let p = FaultProfile::heavy();
        let a = schedule_with_faults(&g, 50, &p, &mut StdRng::seed_from_u64(9));
        let b = schedule_with_faults(&g, 50, &p, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.failed_at, b.failed_at);
        let c = schedule_with_faults(&g, 50, &p, &mut StdRng::seed_from_u64(10));
        // A different seed rolls different faults (overwhelmingly likely
        // under the heavy profile on 5 stages of dop 200).
        assert!(a.runtime != c.runtime || a.retries != c.retries);
    }

    #[test]
    fn slowdown_plans_make_profile_non_inert() {
        let p = FaultProfile::with_slowdown_plans(vec![(42, 1.2)]);
        assert!(!p.is_none());
        assert_eq!(p.slowdown_for(42), 1.2);
        assert_eq!(p.slowdown_for(43), 1.0);
        assert_eq!(FaultProfile::none().slowdown_for(42), 1.0);
    }

    #[test]
    fn zero_jitter_reproduces_the_unjittered_schedule() {
        let g = chain_graph(10.0, 1000, 4);
        let mut p = FaultProfile::with_vertex_failures(0.05);
        p.max_retries = 10;
        let base = schedule_with_faults(&g, 100, &p, &mut StdRng::seed_from_u64(5));
        let jittered = schedule_with_faults(
            &g,
            100,
            &p.clone().with_backoff_jitter(0.0),
            &mut StdRng::seed_from_u64(5),
        );
        assert_eq!(base.runtime, jittered.runtime);
        assert_eq!(base.retries, jittered.retries);
    }

    #[test]
    fn backoff_jitter_desynchronizes_but_stays_seeded() {
        let g = chain_graph(10.0, 1000, 4);
        let mut p = FaultProfile::with_vertex_failures(0.05).with_backoff_jitter(0.5);
        p.max_retries = 10;
        let a = schedule_with_faults(&g, 100, &p, &mut StdRng::seed_from_u64(5));
        let b = schedule_with_faults(&g, 100, &p, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.runtime, b.runtime, "jitter must be seeded");
        assert!(a.retries > 0, "profile should force retries");
        // Two jobs with different RNG splits retry at different offsets
        // even with identical fault rolls elsewhere (overwhelmingly likely
        // with ±50% jitter on multi-retry schedules).
        let c = schedule_with_faults(&g, 100, &p, &mut StdRng::seed_from_u64(6));
        assert!(a.runtime != c.runtime || a.retries != c.retries);
        // Jitter is clamped into a sane range.
        assert_eq!(
            FaultProfile::none()
                .with_backoff_jitter(7.0)
                .backoff_jitter_frac,
            1.0
        );
    }

    #[test]
    fn serve_profiles_cover_the_matrix() {
        let all = ServeFaultProfile::all();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            [
                "none",
                "slow_lookups",
                "torn_swaps",
                "journal_stalls",
                "burst_overload"
            ]
        );
        assert_eq!(ServeFaultProfile::none(), ServeFaultProfile::default());
        assert!(ServeFaultProfile::torn_swaps().torn_swap.is_some());
        assert!(ServeFaultProfile::burst_overload().burst.is_some());
    }

    #[test]
    fn crash_plan_counts_down_tears_once_then_stays_dead() {
        let mut c = CrashPlan::after_ops(2, 7);
        assert_eq!(c.roll(), CrashRoll::Alive);
        assert!(!c.crashed());
        assert_eq!(c.roll(), CrashRoll::Alive);
        assert_eq!(c.roll(), CrashRoll::Torn(7));
        assert!(c.crashed());
        assert_eq!(c.roll(), CrashRoll::Dead);
        assert_eq!(c.roll(), CrashRoll::Dead);
    }

    #[test]
    fn crash_plan_with_zero_survivors_tears_immediately() {
        let mut c = CrashPlan::after_ops(0, 0);
        assert_eq!(c.roll(), CrashRoll::Torn(0));
        assert_eq!(c.roll(), CrashRoll::Dead);
    }

    #[test]
    fn outcome_helpers() {
        assert!(JobOutcome::Success.is_success());
        assert!(JobOutcome::SuccessWithRetries { retries: 2 }.is_success());
        assert_eq!(JobOutcome::SuccessWithRetries { retries: 2 }.retries(), 2);
        assert!(!JobOutcome::TimedOut.is_success());
        assert!(!JobOutcome::Failed { reason: "x".into() }.is_success());
        assert_eq!(JobOutcome::Success.retries(), 0);
    }
}
