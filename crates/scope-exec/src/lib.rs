//! # scope-exec
//!
//! The distributed execution simulator standing in for the paper's
//! production clusters, plus the A/B testing harness used for every
//! experiment.
//!
//! * [`truth`] — replays ground-truth cardinalities (correlated predicate
//!   selectivity, skewed join fanout, true UDO behaviour) and per-vertex
//!   data shares through a physical plan.
//! * [`work`] — the true per-operator work model (CPU / IO / network /
//!   busiest-vertex elapsed), including spill cliffs and per-vertex
//!   broadcast builds the optimizer's cost model never anticipates.
//! * [`simulate`] — stage cutting at exchanges, token-limited wave
//!   scheduling, critical-path makespan, and the paper's three metrics
//!   (runtime, CPU time, total IO time).
//! * [`abtest`] — §3.1.3's A/B infrastructure: re-execute any compiled plan
//!   under fixed resources (50 tokens) with seeded, reproducible noise,
//!   fault injection, and retry-with-backoff scheduling,
//! * [`faults`] — seeded, deterministic fault injection: transient vertex
//!   failures with bounded retries, stragglers with speculative
//!   re-execution, stage preemption, job timeouts, plan-targeted planted
//!   regressions, and a countdown crash fault for crash-safety tests,
//! * [`rollout`] — deterministic hash-split traffic assignment for staged
//!   canary rollouts (flighting),
//! * [`arrival`] — deterministic diurnal job-arrival streams (with burst
//!   overlays) for the online serving layer,
//! * [`mod@explain`] — `EXPLAIN ANALYZE`-style traces: per-operator estimated
//!   vs true cardinalities (q-errors), work breakdowns, stage assignment.

pub mod abtest;
pub mod arrival;
pub mod cluster;
pub mod explain;
pub mod faults;
pub mod rollout;
pub mod simulate;
pub mod truth;
pub mod work;

pub use abtest::{plan_fingerprint, ABTester, RetryPolicy};
pub use arrival::{ArrivalBurst, ArrivalCurve, DAY_US};
pub use cluster::ClusterConfig;
pub use explain::{explain, ExecutionTrace, NodeReport, StageReport};
pub use faults::{
    execute_with_faults, CrashPlan, CrashRoll, FaultProfile, FaultedRun, JobOutcome,
    ServeFaultProfile, TornSwap,
};
pub use rollout::in_rollout;
pub use simulate::{execute, execute_deterministic, Metric, RunMetrics};
pub use truth::{replay, result_fingerprint, semantic_fingerprint, NodeTruth, SemanticFingerprint};
pub use work::NodeWork;
