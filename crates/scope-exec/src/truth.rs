//! Ground-truth property replay: true cardinalities, byte volumes, and
//! per-vertex data shares for every node of a physical plan.
//!
//! This is the half of the world the optimizer never sees: correlated
//! predicate selectivities, true join fanout including key skew, true UDO
//! behaviour, and the partition share of the busiest vertex under each
//! partitioning scheme.

use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};

use scope_ir::ids::ColId;
use scope_ir::{AggFunc, JoinKind, TrueCatalog};
use scope_optimizer::{Partitioning, PhysOp, PhysPlan};

/// True runtime properties of one physical node's output.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTruth {
    /// True output rows.
    pub rows: f64,
    /// True output bytes.
    pub bytes: f64,
    /// Share of the output held by the busiest vertex (1.0 = everything on
    /// one vertex or replicated everywhere; 1/dop = perfectly uniform).
    pub share: f64,
    /// Parallelism this node actually runs with.
    pub dop: u32,
}

impl NodeTruth {
    /// Bytes per row (guarded).
    pub fn row_bytes(&self) -> f64 {
        if self.rows > 0.0 {
            self.bytes / self.rows
        } else {
            0.0
        }
    }
}

/// The busiest-vertex share after hash partitioning on `cols` at `dop`.
/// The partition holding a column's heaviest value carries at least that
/// value's share; compound keys distribute finer (take the smallest skew).
pub fn hash_share(cat: &TrueCatalog, cols: &[ColId], dop: u32) -> f64 {
    let uniform = 1.0 / dop.max(1) as f64;
    let key_skew = cols
        .iter()
        .map(|c| cat.columns.get(c.index()).map(|s| s.skew).unwrap_or(0.0))
        .fold(f64::INFINITY, f64::min);
    if key_skew.is_finite() {
        uniform.max(key_skew)
    } else {
        uniform
    }
}

/// True join output cardinality: uniform fanout plus the heavy-hitter term
/// the optimizer's uniformity assumption misses.
fn join_rows(
    cat: &TrueCatalog,
    kind: JoinKind,
    keys: &[(ColId, ColId)],
    l: &NodeTruth,
    r: &NodeTruth,
) -> f64 {
    let mut rows = match keys.first() {
        Some(&(lk, rk)) => {
            let ndv_l = cat.columns.get(lk.index()).map(|c| c.ndv).unwrap_or(1000);
            let ndv_r = cat.columns.get(rk.index()).map(|c| c.ndv).unwrap_or(1000);
            let skew_l = cat.columns.get(lk.index()).map(|c| c.skew).unwrap_or(0.0);
            let skew_r = cat.columns.get(rk.index()).map(|c| c.skew).unwrap_or(0.0);
            let uniform = l.rows * r.rows / ndv_l.max(ndv_r).max(1) as f64;
            let heavy = skew_l * l.rows * skew_r * r.rows;
            (uniform + heavy).min(l.rows * r.rows)
        }
        None => l.rows * r.rows,
    };
    for _ in keys.iter().skip(1) {
        rows *= 0.3;
    }
    match kind {
        JoinKind::Inner => rows,
        JoinKind::LeftOuter => rows.max(l.rows),
        JoinKind::Semi => (l.rows * 0.7).min(rows).max(0.0),
    }
    .max(0.0)
}

/// Derive the true properties of `op` from its children's true properties.
pub fn derive_truth(op: &PhysOp, children: &[&NodeTruth], cat: &TrueCatalog) -> NodeTruth {
    let child = |i: usize| -> &NodeTruth { children[i] };
    match op {
        PhysOp::Scan {
            table,
            pushed,
            parallel,
            ..
        } => {
            let t = cat.tables.get(table.index());
            let raw_rows = t.map(|t| t.rows as f64).unwrap_or(0.0);
            let row_bytes = t.map(|t| t.row_bytes as f64).unwrap_or(100.0);
            let sel = if pushed.is_true() {
                1.0
            } else {
                cat.true_conj_selectivity(&pushed.atoms)
            };
            let rows = raw_rows * sel;
            let dop = if *parallel {
                scope_optimizer::cost::dop_for_bytes(raw_rows * row_bytes)
            } else {
                1
            };
            NodeTruth {
                rows,
                bytes: rows * row_bytes,
                share: 1.0 / dop as f64,
                dop,
            }
        }
        PhysOp::Filter { predicate } => {
            let c = child(0);
            let sel = cat.true_conj_selectivity(&predicate.atoms);
            NodeTruth {
                rows: c.rows * sel,
                bytes: c.bytes * sel,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::Project { cols, computed } => {
            let c = child(0);
            let width = 12.0 + 8.0 * (cols.len() + *computed as usize) as f64;
            NodeTruth {
                rows: c.rows,
                bytes: c.rows * width,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::HashJoin { kind, keys, .. }
        | PhysOp::MergeJoin { kind, keys }
        | PhysOp::BroadcastJoin { kind, keys }
        | PhysOp::LoopJoin { kind, keys }
        | PhysOp::IndexJoin { kind, keys } => {
            let l = child(0);
            let r = child(1);
            let rows = join_rows(cat, *kind, keys, l, r);
            let width = match kind {
                JoinKind::Semi => l.row_bytes(),
                _ => l.row_bytes() + r.row_bytes(),
            };
            // The join runs where its (exchanged) inputs live; broadcast
            // joins inherit only the probe side's distribution.
            let (share, dop) = match op {
                PhysOp::BroadcastJoin { .. } | PhysOp::IndexJoin { .. } => (l.share, l.dop),
                PhysOp::LoopJoin { .. } => (1.0, 1),
                _ => (l.share.max(r.share), l.dop.max(r.dop)),
            };
            NodeTruth {
                rows,
                bytes: rows * width,
                share,
                dop,
            }
        }
        PhysOp::HashAgg {
            keys,
            aggs,
            partial,
        }
        | PhysOp::SortAgg {
            keys,
            aggs,
            partial,
        }
        | PhysOp::StreamAgg {
            keys,
            aggs,
            partial,
        } => {
            let c = child(0);
            let mut groups = 1.0_f64;
            for k in keys {
                groups *= cat.columns.get(k.index()).map(|s| s.ndv).unwrap_or(1000) as f64;
            }
            let rows = if *partial {
                (groups * c.dop as f64).min(c.rows)
            } else {
                groups.min(c.rows)
            };
            let width = 16.0 + 8.0 * (keys.len() + aggs.len()) as f64;
            // After a grouped aggregation the heaviest key collapses to one
            // row, so output skew dissolves; the busiest vertex still did
            // the skewed *work* (accounted in the work model).
            NodeTruth {
                rows: rows.max(1.0),
                bytes: rows.max(1.0) * width,
                share: 1.0 / c.dop.max(1) as f64,
                dop: c.dop,
            }
        }
        PhysOp::UnionAll { serial } => {
            let rows: f64 = children.iter().map(|c| c.rows).sum();
            let bytes: f64 = children.iter().map(|c| c.bytes).sum();
            if *serial {
                NodeTruth {
                    rows,
                    bytes,
                    share: 1.0,
                    dop: 1,
                }
            } else {
                // Streaming concat preserves whatever skew the inputs have.
                let share = children.iter().map(|c| c.share).fold(0.0, f64::max);
                let dop = children.iter().map(|c| c.dop).max().unwrap_or(1);
                NodeTruth {
                    rows,
                    bytes,
                    share,
                    dop,
                }
            }
        }
        PhysOp::VirtualDataset => {
            let rows: f64 = children.iter().map(|c| c.rows).sum();
            let bytes: f64 = children.iter().map(|c| c.bytes).sum();
            // Materialization rewrites the dataset uniformly: skew resets.
            let dop = scope_optimizer::cost::dop_for_bytes(bytes);
            NodeTruth {
                rows,
                bytes,
                share: 1.0 / dop as f64,
                dop,
            }
        }
        PhysOp::Top { k, .. } => {
            let c = child(0);
            let rows = (*k as f64).min(c.rows);
            NodeTruth {
                rows,
                bytes: rows * c.row_bytes(),
                share: 1.0,
                dop: 1,
            }
        }
        PhysOp::Sort { parallel, .. } => {
            let c = child(0);
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share: if *parallel { c.share } else { 1.0 },
                dop: if *parallel { c.dop } else { 1 },
            }
        }
        PhysOp::Window { .. } => {
            let c = child(0);
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::Process { udo, parallel } => {
            let c = child(0);
            let truth = cat.udo_truth(*udo);
            let rows = c.rows * truth.selectivity;
            NodeTruth {
                rows,
                bytes: rows * c.row_bytes() * 1.2,
                share: if *parallel { c.share } else { 1.0 },
                dop: if *parallel { c.dop } else { 1 },
            }
        }
        PhysOp::Output { .. } => {
            let c = child(0);
            c.clone()
        }
        PhysOp::Exchange { scheme, dop } => {
            let c = child(0);
            let share = match scheme {
                Partitioning::Hash(cols) => hash_share(cat, cols, *dop),
                Partitioning::Range(_) => 1.0 / (*dop).max(1) as f64,
                Partitioning::Broadcast => 1.0,
                Partitioning::Singleton => 1.0,
                Partitioning::Any => 1.0 / (*dop).max(1) as f64,
            };
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share,
                dop: (*dop).max(1),
            }
        }
    }
}

/// A deterministic fingerprint of a plan's *result semantics*: what is
/// scanned, filtered, joined, finally aggregated, processed, and emitted —
/// independent of operator order, physical implementation choices,
/// exchanges, and every other degree of freedom the rewrite rules exercise.
///
/// Two plans compiled from the same job under different rule configurations
/// must have equal fingerprints; a divergence means a rewrite changed what
/// the query *computes*, not merely how. The deployment guardrail uses this
/// as its differential correctness check: a steered plan whose fingerprint
/// diverges from the default plan's is quarantined.
///
/// Set semantics (not multisets) absorb legitimate duplications
/// (`JoinOnUnion` clones a join into every branch); canonically-ordered
/// join-key pairs absorb `JoinCommute`/`JoinAssoc` swaps; only *final*
/// (non-partial) aggregates count, since splitting rules insert partial
/// ones; `Top`/`Sort`/`Window`/`Project` are excluded because estimate-
/// trusting eliminations and window collapses legitimately drop them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemanticFingerprint {
    /// Scanned table ids.
    pub tables: BTreeSet<u32>,
    /// Predicate-atom hashes from filters and pushed scan predicates.
    pub atoms: BTreeSet<u64>,
    /// Join specs: kind plus the canonically-ordered key-pair set.
    pub joins: BTreeSet<u64>,
    /// Final (non-partial) aggregation specs.
    pub aggs: BTreeSet<u64>,
    /// User-defined operators applied.
    pub udos: BTreeSet<u32>,
    /// Output stream ids.
    pub outputs: BTreeSet<u64>,
}

impl SemanticFingerprint {
    /// Collapse to a single comparable/reportable hash.
    pub fn digest(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.tables.hash(&mut h);
        self.atoms.hash(&mut h);
        self.joins.hash(&mut h);
        self.aggs.hash(&mut h);
        self.udos.hash(&mut h);
        self.outputs.hash(&mut h);
        h.finish()
    }
}

fn atom_hash(atom: &scope_ir::PredAtom) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    atom.col.hash(&mut h);
    atom.op.hash(&mut h);
    atom.literal.value_hash().hash(&mut h);
    atom.pred.hash(&mut h);
    h.finish()
}

fn join_hash(kind: JoinKind, keys: &[(ColId, ColId)]) -> u64 {
    // Canonical (min, max) ordering survives commute/assoc key swaps.
    let pairs: BTreeSet<(u32, u32)> = keys
        .iter()
        .map(|&(l, r)| (l.0.min(r.0), l.0.max(r.0)))
        .collect();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    kind.hash(&mut h);
    pairs.hash(&mut h);
    h.finish()
}

fn agg_hash(keys: &[ColId], aggs: &[AggFunc]) -> u64 {
    let mut sorted_keys: Vec<ColId> = keys.to_vec();
    sorted_keys.sort_unstable();
    let mut agg_hashes: Vec<u64> = aggs
        .iter()
        .map(|a| {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            a.hash(&mut h);
            h.finish()
        })
        .collect();
    agg_hashes.sort_unstable();
    let mut h = std::collections::hash_map::DefaultHasher::new();
    sorted_keys.hash(&mut h);
    agg_hashes.hash(&mut h);
    h.finish()
}

/// Compute the semantic fingerprint of a physical plan (reachable nodes
/// only).
pub fn semantic_fingerprint(plan: &PhysPlan) -> SemanticFingerprint {
    let mut fp = SemanticFingerprint::default();
    for id in plan.reachable() {
        match &plan.node(id).op {
            PhysOp::Scan { table, pushed, .. } => {
                fp.tables.insert(table.0);
                for atom in &pushed.atoms {
                    fp.atoms.insert(atom_hash(atom));
                }
            }
            PhysOp::Filter { predicate } => {
                for atom in &predicate.atoms {
                    fp.atoms.insert(atom_hash(atom));
                }
            }
            PhysOp::HashJoin { kind, keys, .. }
            | PhysOp::MergeJoin { kind, keys }
            | PhysOp::BroadcastJoin { kind, keys }
            | PhysOp::LoopJoin { kind, keys }
            | PhysOp::IndexJoin { kind, keys } => {
                fp.joins.insert(join_hash(*kind, keys));
            }
            PhysOp::HashAgg {
                keys,
                aggs,
                partial: false,
            }
            | PhysOp::SortAgg {
                keys,
                aggs,
                partial: false,
            }
            | PhysOp::StreamAgg {
                keys,
                aggs,
                partial: false,
            } => {
                fp.aggs.insert(agg_hash(keys, aggs));
            }
            PhysOp::Process { udo, .. } => {
                fp.udos.insert(udo.0);
            }
            PhysOp::Output { stream } => {
                fp.outputs.insert(*stream);
            }
            _ => {}
        }
    }
    fp
}

/// The semantic fingerprint collapsed to one comparable hash — the
/// differential correctness check's currency.
pub fn result_fingerprint(plan: &PhysPlan) -> u64 {
    semantic_fingerprint(plan).digest()
}

/// Replay truth through an entire plan; returns per-node truths indexed by
/// node id (unreachable nodes get zeroed entries).
pub fn replay(plan: &PhysPlan, cat: &TrueCatalog) -> Vec<NodeTruth> {
    let zero = NodeTruth {
        rows: 0.0,
        bytes: 0.0,
        share: 1.0,
        dop: 1,
    };
    let mut truths = vec![zero; plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let children: Vec<&NodeTruth> = node.children.iter().map(|c| &truths[c.index()]).collect();
        truths[id.index()] = derive_truth(&node.op, &children, cat);
    }
    truths
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{DomainId, PredId, TableId};

    fn skewed_catalog() -> TrueCatalog {
        let mut cat = TrueCatalog::new();
        cat.add_column(10_000, 0.5, DomainId(0)); // heavily skewed join key
        cat.add_column(10_000, 0.0, DomainId(0)); // uniform join key
        cat.add_table(1_000_000, 100, 1, vec![ColId(0), ColId(1)]);
        cat
    }

    fn truth(rows: f64, share: f64, dop: u32) -> NodeTruth {
        NodeTruth {
            rows,
            bytes: rows * 100.0,
            share,
            dop,
        }
    }

    #[test]
    fn hash_share_respects_skew() {
        let cat = skewed_catalog();
        assert_eq!(hash_share(&cat, &[ColId(1)], 50), 1.0 / 50.0);
        assert_eq!(hash_share(&cat, &[ColId(0)], 50), 0.5);
        // Compound key takes the finer (smaller) skew.
        assert_eq!(hash_share(&cat, &[ColId(0), ColId(1)], 50), 1.0 / 50.0);
    }

    #[test]
    fn skewed_join_produces_heavy_hitter_rows() {
        let cat = skewed_catalog();
        let l = truth(100_000.0, 0.02, 50);
        let r = truth(100_000.0, 0.02, 50);
        let skewed = join_rows(&cat, JoinKind::Inner, &[(ColId(0), ColId(0))], &l, &r);
        let uniform = join_rows(&cat, JoinKind::Inner, &[(ColId(1), ColId(1))], &l, &r);
        assert!(skewed > uniform * 100.0, "{skewed} vs {uniform}");
    }

    #[test]
    fn correlated_filter_truth_differs_from_estimate() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1000, 0.0, DomainId(0));
        let g = cat.add_corr_group(1.0);
        let p1 = cat.add_pred(0.1, Some(g));
        let p2 = cat.add_pred(0.1, Some(g));
        cat.add_table(1_000_000, 100, 1, vec![col]);
        let atoms = vec![
            PredAtom {
                col,
                op: CmpOp::Like,
                literal: Literal::Int(0),
                pred: p1,
            },
            PredAtom {
                col,
                op: CmpOp::Like,
                literal: Literal::Int(1),
                pred: p2,
            },
        ];
        let c = truth(1_000_000.0, 0.02, 50);
        let out = derive_truth(
            &PhysOp::Filter {
                predicate: Predicate { atoms },
            },
            &[&c],
            &cat,
        );
        // Fully correlated: min(0.1, 0.1) = 0.1 → 100k rows, not 10k.
        assert!((out.rows - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_pred_truth_matches_shape_heuristic() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(1000, 100, 1, vec![col]);
        let atom = PredAtom {
            col,
            op: CmpOp::Range,
            literal: Literal::Int(0),
            pred: PredId::UNKNOWN,
        };
        let c = truth(900.0, 0.1, 10);
        let out = derive_truth(
            &PhysOp::Filter {
                predicate: Predicate { atoms: vec![atom] },
            },
            &[&c],
            &cat,
        );
        assert!((out.rows - 300.0).abs() < 1.0);
    }

    #[test]
    fn virtual_dataset_resets_skew() {
        let cat = skewed_catalog();
        let skewed_in = truth(1e8, 0.5, 50);
        let out = derive_truth(&PhysOp::VirtualDataset, &[&skewed_in, &skewed_in], &cat);
        assert!(out.share < 0.5);
        assert_eq!(out.rows, 2e8);
    }

    #[test]
    fn exploding_udo_truth() {
        let mut cat = TrueCatalog::new();
        let udo = cat.add_udo(25.0, 3.0);
        let c = truth(1000.0, 0.1, 10);
        let out = derive_truth(
            &PhysOp::Process {
                udo,
                parallel: true,
            },
            &[&c],
            &cat,
        );
        assert_eq!(out.rows, 3000.0);
    }

    mod fingerprint {
        use super::super::*;
        use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
        use scope_ir::ids::{NodeId, TableId};
        use scope_optimizer::PhysNode;

        fn node(op: PhysOp, children: Vec<NodeId>) -> PhysNode {
            PhysNode {
                op,
                children,
                est_rows: 10.0,
                est_bytes: 100.0,
                est_cost: 1.0,
                est_cost_vec: Default::default(),
                partitioning: Partitioning::Singleton,
                dop: 1,
                created_by: None,
                logical_rule: None,
            }
        }

        fn scan(table: u32, pushed: Predicate) -> PhysOp {
            PhysOp::Scan {
                table: TableId(table),
                pushed,
                parallel: false,
                indexed: false,
            }
        }

        fn atom(col: u32, lit: i64) -> PredAtom {
            PredAtom::unknown(ColId(col), CmpOp::Eq, Literal::Int(lit))
        }

        /// Filter-above-scan joined left×right as a hash join.
        fn filtered_join_plan() -> PhysPlan {
            let mut p = PhysPlan::new();
            let l = p.add(node(scan(0, Predicate::true_pred()), vec![]));
            let f = p.add(node(
                PhysOp::Filter {
                    predicate: Predicate::atom(atom(0, 7)),
                },
                vec![l],
            ));
            let r = p.add(node(scan(1, Predicate::true_pred()), vec![]));
            let j = p.add(node(
                PhysOp::HashJoin {
                    kind: JoinKind::Inner,
                    keys: vec![(ColId(0), ColId(2))],
                    variant: 1,
                },
                vec![f, r],
            ));
            let o = p.add(node(PhysOp::Output { stream: 5 }, vec![j]));
            p.set_root(o);
            p
        }

        /// Same semantics, different physics: predicate pushed into the
        /// scan, sides commuted into a merge join, an exchange and a sort
        /// inserted.
        fn rewritten_equivalent_plan() -> PhysPlan {
            let mut p = PhysPlan::new();
            let r = p.add(node(scan(1, Predicate::true_pred()), vec![]));
            let l = p.add(node(scan(0, Predicate::atom(atom(0, 7))), vec![]));
            let ex = p.add(node(
                PhysOp::Exchange {
                    scheme: Partitioning::Singleton,
                    dop: 1,
                },
                vec![l],
            ));
            let j = p.add(node(
                PhysOp::MergeJoin {
                    kind: JoinKind::Inner,
                    // Commuted: key pair order swapped.
                    keys: vec![(ColId(2), ColId(0))],
                },
                vec![r, ex],
            ));
            let s = p.add(node(
                PhysOp::Sort {
                    keys: vec![ColId(0)],
                    parallel: false,
                },
                vec![j],
            ));
            let o = p.add(node(PhysOp::Output { stream: 5 }, vec![s]));
            p.set_root(o);
            p
        }

        #[test]
        fn fingerprint_is_invariant_under_physical_rewrites() {
            let a = semantic_fingerprint(&filtered_join_plan());
            let b = semantic_fingerprint(&rewritten_equivalent_plan());
            assert_eq!(a, b);
            assert_eq!(a.digest(), b.digest());
        }

        #[test]
        fn fingerprint_catches_a_changed_literal() {
            let base = result_fingerprint(&filtered_join_plan());
            let mut p = PhysPlan::new();
            let l = p.add(node(scan(0, Predicate::true_pred()), vec![]));
            let f = p.add(node(
                PhysOp::Filter {
                    predicate: Predicate::atom(atom(0, 8)), // 7 → 8
                },
                vec![l],
            ));
            let r = p.add(node(scan(1, Predicate::true_pred()), vec![]));
            let j = p.add(node(
                PhysOp::HashJoin {
                    kind: JoinKind::Inner,
                    keys: vec![(ColId(0), ColId(2))],
                    variant: 1,
                },
                vec![f, r],
            ));
            let o = p.add(node(PhysOp::Output { stream: 5 }, vec![j]));
            p.set_root(o);
            assert_ne!(base, result_fingerprint(&p));
        }

        #[test]
        fn fingerprint_catches_a_dropped_input() {
            // The "dangling input" corruption: the join and one scan vanish,
            // the job silently computes over half its inputs.
            let base = result_fingerprint(&filtered_join_plan());
            let mut p = PhysPlan::new();
            let l = p.add(node(scan(0, Predicate::true_pred()), vec![]));
            let f = p.add(node(
                PhysOp::Filter {
                    predicate: Predicate::atom(atom(0, 7)),
                },
                vec![l],
            ));
            let o = p.add(node(PhysOp::Output { stream: 5 }, vec![f]));
            p.set_root(o);
            assert_ne!(base, result_fingerprint(&p));
        }

        #[test]
        fn partial_aggregates_are_erased_final_ones_kept() {
            let agg = |partial: bool, child: NodeId| {
                node(
                    PhysOp::HashAgg {
                        keys: vec![ColId(0)],
                        aggs: vec![AggFunc::Count],
                        partial,
                    },
                    vec![child],
                )
            };
            // Unsplit aggregation.
            let mut a = PhysPlan::new();
            let s = a.add(node(scan(0, Predicate::true_pred()), vec![]));
            let g = a.add(agg(false, s));
            let o = a.add(node(PhysOp::Output { stream: 5 }, vec![g]));
            a.set_root(o);
            // Split into partial + final (a SortAgg, for good measure).
            let mut b = PhysPlan::new();
            let s = b.add(node(scan(0, Predicate::true_pred()), vec![]));
            let pa = b.add(agg(true, s));
            let fin = b.add(node(
                PhysOp::SortAgg {
                    keys: vec![ColId(0)],
                    aggs: vec![AggFunc::Count],
                    partial: false,
                },
                vec![pa],
            ));
            let o = b.add(node(PhysOp::Output { stream: 5 }, vec![fin]));
            b.set_root(o);
            assert_eq!(result_fingerprint(&a), result_fingerprint(&b));
        }
    }

    #[test]
    fn scan_replays_pushed_predicate_truth() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1_000, 0.0, DomainId(0));
        let p = cat.add_pred(0.001, None);
        cat.add_table(1_000_000, 100, 1, vec![col]);
        let op = PhysOp::Scan {
            table: TableId(0),
            pushed: Predicate::atom(PredAtom {
                col,
                op: CmpOp::Eq,
                literal: Literal::Int(0),
                pred: p,
            }),
            parallel: true,
            indexed: false,
        };
        let out = derive_truth(&op, &[], &cat);
        assert!((out.rows - 1000.0).abs() < 1e-6);
    }
}
