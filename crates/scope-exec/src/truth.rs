//! Ground-truth property replay: true cardinalities, byte volumes, and
//! per-vertex data shares for every node of a physical plan.
//!
//! This is the half of the world the optimizer never sees: correlated
//! predicate selectivities, true join fanout including key skew, true UDO
//! behaviour, and the partition share of the busiest vertex under each
//! partitioning scheme.

use scope_ir::ids::ColId;
use scope_ir::{JoinKind, TrueCatalog};
use scope_optimizer::{Partitioning, PhysOp, PhysPlan};

/// True runtime properties of one physical node's output.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeTruth {
    /// True output rows.
    pub rows: f64,
    /// True output bytes.
    pub bytes: f64,
    /// Share of the output held by the busiest vertex (1.0 = everything on
    /// one vertex or replicated everywhere; 1/dop = perfectly uniform).
    pub share: f64,
    /// Parallelism this node actually runs with.
    pub dop: u32,
}

impl NodeTruth {
    /// Bytes per row (guarded).
    pub fn row_bytes(&self) -> f64 {
        if self.rows > 0.0 {
            self.bytes / self.rows
        } else {
            0.0
        }
    }
}

/// The busiest-vertex share after hash partitioning on `cols` at `dop`.
/// The partition holding a column's heaviest value carries at least that
/// value's share; compound keys distribute finer (take the smallest skew).
pub fn hash_share(cat: &TrueCatalog, cols: &[ColId], dop: u32) -> f64 {
    let uniform = 1.0 / dop.max(1) as f64;
    let key_skew = cols
        .iter()
        .map(|c| cat.columns.get(c.index()).map(|s| s.skew).unwrap_or(0.0))
        .fold(f64::INFINITY, f64::min);
    if key_skew.is_finite() {
        uniform.max(key_skew)
    } else {
        uniform
    }
}

/// True join output cardinality: uniform fanout plus the heavy-hitter term
/// the optimizer's uniformity assumption misses.
fn join_rows(
    cat: &TrueCatalog,
    kind: JoinKind,
    keys: &[(ColId, ColId)],
    l: &NodeTruth,
    r: &NodeTruth,
) -> f64 {
    let mut rows = match keys.first() {
        Some(&(lk, rk)) => {
            let ndv_l = cat.columns.get(lk.index()).map(|c| c.ndv).unwrap_or(1000);
            let ndv_r = cat.columns.get(rk.index()).map(|c| c.ndv).unwrap_or(1000);
            let skew_l = cat.columns.get(lk.index()).map(|c| c.skew).unwrap_or(0.0);
            let skew_r = cat.columns.get(rk.index()).map(|c| c.skew).unwrap_or(0.0);
            let uniform = l.rows * r.rows / ndv_l.max(ndv_r).max(1) as f64;
            let heavy = skew_l * l.rows * skew_r * r.rows;
            (uniform + heavy).min(l.rows * r.rows)
        }
        None => l.rows * r.rows,
    };
    for _ in keys.iter().skip(1) {
        rows *= 0.3;
    }
    match kind {
        JoinKind::Inner => rows,
        JoinKind::LeftOuter => rows.max(l.rows),
        JoinKind::Semi => (l.rows * 0.7).min(rows).max(0.0),
    }
    .max(0.0)
}

/// Derive the true properties of `op` from its children's true properties.
pub fn derive_truth(op: &PhysOp, children: &[&NodeTruth], cat: &TrueCatalog) -> NodeTruth {
    let child = |i: usize| -> &NodeTruth { children[i] };
    match op {
        PhysOp::Scan {
            table,
            pushed,
            parallel,
            ..
        } => {
            let t = cat.tables.get(table.index());
            let raw_rows = t.map(|t| t.rows as f64).unwrap_or(0.0);
            let row_bytes = t.map(|t| t.row_bytes as f64).unwrap_or(100.0);
            let sel = if pushed.is_true() {
                1.0
            } else {
                cat.true_conj_selectivity(&pushed.atoms)
            };
            let rows = raw_rows * sel;
            let dop = if *parallel {
                scope_optimizer::cost::dop_for_bytes(raw_rows * row_bytes)
            } else {
                1
            };
            NodeTruth {
                rows,
                bytes: rows * row_bytes,
                share: 1.0 / dop as f64,
                dop,
            }
        }
        PhysOp::Filter { predicate } => {
            let c = child(0);
            let sel = cat.true_conj_selectivity(&predicate.atoms);
            NodeTruth {
                rows: c.rows * sel,
                bytes: c.bytes * sel,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::Project { cols, computed } => {
            let c = child(0);
            let width = 12.0 + 8.0 * (cols.len() + *computed as usize) as f64;
            NodeTruth {
                rows: c.rows,
                bytes: c.rows * width,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::HashJoin { kind, keys, .. }
        | PhysOp::MergeJoin { kind, keys }
        | PhysOp::BroadcastJoin { kind, keys }
        | PhysOp::LoopJoin { kind, keys }
        | PhysOp::IndexJoin { kind, keys } => {
            let l = child(0);
            let r = child(1);
            let rows = join_rows(cat, *kind, keys, l, r);
            let width = match kind {
                JoinKind::Semi => l.row_bytes(),
                _ => l.row_bytes() + r.row_bytes(),
            };
            // The join runs where its (exchanged) inputs live; broadcast
            // joins inherit only the probe side's distribution.
            let (share, dop) = match op {
                PhysOp::BroadcastJoin { .. } | PhysOp::IndexJoin { .. } => (l.share, l.dop),
                PhysOp::LoopJoin { .. } => (1.0, 1),
                _ => (l.share.max(r.share), l.dop.max(r.dop)),
            };
            NodeTruth {
                rows,
                bytes: rows * width,
                share,
                dop,
            }
        }
        PhysOp::HashAgg {
            keys,
            aggs,
            partial,
        }
        | PhysOp::SortAgg {
            keys,
            aggs,
            partial,
        }
        | PhysOp::StreamAgg {
            keys,
            aggs,
            partial,
        } => {
            let c = child(0);
            let mut groups = 1.0_f64;
            for k in keys {
                groups *= cat.columns.get(k.index()).map(|s| s.ndv).unwrap_or(1000) as f64;
            }
            let rows = if *partial {
                (groups * c.dop as f64).min(c.rows)
            } else {
                groups.min(c.rows)
            };
            let width = 16.0 + 8.0 * (keys.len() + aggs.len()) as f64;
            // After a grouped aggregation the heaviest key collapses to one
            // row, so output skew dissolves; the busiest vertex still did
            // the skewed *work* (accounted in the work model).
            NodeTruth {
                rows: rows.max(1.0),
                bytes: rows.max(1.0) * width,
                share: 1.0 / c.dop.max(1) as f64,
                dop: c.dop,
            }
        }
        PhysOp::UnionAll { serial } => {
            let rows: f64 = children.iter().map(|c| c.rows).sum();
            let bytes: f64 = children.iter().map(|c| c.bytes).sum();
            if *serial {
                NodeTruth {
                    rows,
                    bytes,
                    share: 1.0,
                    dop: 1,
                }
            } else {
                // Streaming concat preserves whatever skew the inputs have.
                let share = children.iter().map(|c| c.share).fold(0.0, f64::max);
                let dop = children.iter().map(|c| c.dop).max().unwrap_or(1);
                NodeTruth {
                    rows,
                    bytes,
                    share,
                    dop,
                }
            }
        }
        PhysOp::VirtualDataset => {
            let rows: f64 = children.iter().map(|c| c.rows).sum();
            let bytes: f64 = children.iter().map(|c| c.bytes).sum();
            // Materialization rewrites the dataset uniformly: skew resets.
            let dop = scope_optimizer::cost::dop_for_bytes(bytes);
            NodeTruth {
                rows,
                bytes,
                share: 1.0 / dop as f64,
                dop,
            }
        }
        PhysOp::Top { k, .. } => {
            let c = child(0);
            let rows = (*k as f64).min(c.rows);
            NodeTruth {
                rows,
                bytes: rows * c.row_bytes(),
                share: 1.0,
                dop: 1,
            }
        }
        PhysOp::Sort { parallel, .. } => {
            let c = child(0);
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share: if *parallel { c.share } else { 1.0 },
                dop: if *parallel { c.dop } else { 1 },
            }
        }
        PhysOp::Window { .. } => {
            let c = child(0);
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share: c.share,
                dop: c.dop,
            }
        }
        PhysOp::Process { udo, parallel } => {
            let c = child(0);
            let truth = cat.udo_truth(*udo);
            let rows = c.rows * truth.selectivity;
            NodeTruth {
                rows,
                bytes: rows * c.row_bytes() * 1.2,
                share: if *parallel { c.share } else { 1.0 },
                dop: if *parallel { c.dop } else { 1 },
            }
        }
        PhysOp::Output { .. } => {
            let c = child(0);
            c.clone()
        }
        PhysOp::Exchange { scheme, dop } => {
            let c = child(0);
            let share = match scheme {
                Partitioning::Hash(cols) => hash_share(cat, cols, *dop),
                Partitioning::Range(_) => 1.0 / (*dop).max(1) as f64,
                Partitioning::Broadcast => 1.0,
                Partitioning::Singleton => 1.0,
                Partitioning::Any => 1.0 / (*dop).max(1) as f64,
            };
            NodeTruth {
                rows: c.rows,
                bytes: c.bytes,
                share,
                dop: (*dop).max(1),
            }
        }
    }
}

/// Replay truth through an entire plan; returns per-node truths indexed by
/// node id (unreachable nodes get zeroed entries).
pub fn replay(plan: &PhysPlan, cat: &TrueCatalog) -> Vec<NodeTruth> {
    let zero = NodeTruth {
        rows: 0.0,
        bytes: 0.0,
        share: 1.0,
        dop: 1,
    };
    let mut truths = vec![zero; plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let children: Vec<&NodeTruth> = node.children.iter().map(|c| &truths[c.index()]).collect();
        truths[id.index()] = derive_truth(&node.op, &children, cat);
    }
    truths
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{DomainId, PredId, TableId};

    fn skewed_catalog() -> TrueCatalog {
        let mut cat = TrueCatalog::new();
        cat.add_column(10_000, 0.5, DomainId(0)); // heavily skewed join key
        cat.add_column(10_000, 0.0, DomainId(0)); // uniform join key
        cat.add_table(1_000_000, 100, 1, vec![ColId(0), ColId(1)]);
        cat
    }

    fn truth(rows: f64, share: f64, dop: u32) -> NodeTruth {
        NodeTruth {
            rows,
            bytes: rows * 100.0,
            share,
            dop,
        }
    }

    #[test]
    fn hash_share_respects_skew() {
        let cat = skewed_catalog();
        assert_eq!(hash_share(&cat, &[ColId(1)], 50), 1.0 / 50.0);
        assert_eq!(hash_share(&cat, &[ColId(0)], 50), 0.5);
        // Compound key takes the finer (smaller) skew.
        assert_eq!(hash_share(&cat, &[ColId(0), ColId(1)], 50), 1.0 / 50.0);
    }

    #[test]
    fn skewed_join_produces_heavy_hitter_rows() {
        let cat = skewed_catalog();
        let l = truth(100_000.0, 0.02, 50);
        let r = truth(100_000.0, 0.02, 50);
        let skewed = join_rows(&cat, JoinKind::Inner, &[(ColId(0), ColId(0))], &l, &r);
        let uniform = join_rows(&cat, JoinKind::Inner, &[(ColId(1), ColId(1))], &l, &r);
        assert!(skewed > uniform * 100.0, "{skewed} vs {uniform}");
    }

    #[test]
    fn correlated_filter_truth_differs_from_estimate() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1000, 0.0, DomainId(0));
        let g = cat.add_corr_group(1.0);
        let p1 = cat.add_pred(0.1, Some(g));
        let p2 = cat.add_pred(0.1, Some(g));
        cat.add_table(1_000_000, 100, 1, vec![col]);
        let atoms = vec![
            PredAtom {
                col,
                op: CmpOp::Like,
                literal: Literal::Int(0),
                pred: p1,
            },
            PredAtom {
                col,
                op: CmpOp::Like,
                literal: Literal::Int(1),
                pred: p2,
            },
        ];
        let c = truth(1_000_000.0, 0.02, 50);
        let out = derive_truth(
            &PhysOp::Filter {
                predicate: Predicate { atoms },
            },
            &[&c],
            &cat,
        );
        // Fully correlated: min(0.1, 0.1) = 0.1 → 100k rows, not 10k.
        assert!((out.rows - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn unknown_pred_truth_matches_shape_heuristic() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(1000, 100, 1, vec![col]);
        let atom = PredAtom {
            col,
            op: CmpOp::Range,
            literal: Literal::Int(0),
            pred: PredId::UNKNOWN,
        };
        let c = truth(900.0, 0.1, 10);
        let out = derive_truth(
            &PhysOp::Filter {
                predicate: Predicate { atoms: vec![atom] },
            },
            &[&c],
            &cat,
        );
        assert!((out.rows - 300.0).abs() < 1.0);
    }

    #[test]
    fn virtual_dataset_resets_skew() {
        let cat = skewed_catalog();
        let skewed_in = truth(1e8, 0.5, 50);
        let out = derive_truth(&PhysOp::VirtualDataset, &[&skewed_in, &skewed_in], &cat);
        assert!(out.share < 0.5);
        assert_eq!(out.rows, 2e8);
    }

    #[test]
    fn exploding_udo_truth() {
        let mut cat = TrueCatalog::new();
        let udo = cat.add_udo(25.0, 3.0);
        let c = truth(1000.0, 0.1, 10);
        let out = derive_truth(
            &PhysOp::Process {
                udo,
                parallel: true,
            },
            &[&c],
            &cat,
        );
        assert_eq!(out.rows, 3000.0);
    }

    #[test]
    fn scan_replays_pushed_predicate_truth() {
        let mut cat = TrueCatalog::new();
        let col = cat.add_column(1_000, 0.0, DomainId(0));
        let p = cat.add_pred(0.001, None);
        cat.add_table(1_000_000, 100, 1, vec![col]);
        let op = PhysOp::Scan {
            table: TableId(0),
            pushed: Predicate::atom(PredAtom {
                col,
                op: CmpOp::Eq,
                literal: Literal::Int(0),
                pred: p,
            }),
            parallel: true,
            indexed: false,
        };
        let out = derive_truth(&op, &[], &cat);
        assert!((out.rows - 1000.0).abs() < 1e-6);
    }
}
