//! The *true* per-operator work model: CPU, IO, network, and busiest-vertex
//! elapsed time, computed from ground-truth properties.
//!
//! The constants match the optimizer's cost model — the divergence between
//! estimate and truth comes from cardinalities (correlation), skew (busiest
//! vertex), spills (memory cliffs) and true UDO cost, not from different
//! unit prices.

use scope_ir::TrueCatalog;
use scope_optimizer::cost::{C_CPU_ROW, C_HASH_ROW, C_IO, C_NET, C_SORT_ROW, C_UDO_ROW};
use scope_optimizer::{Partitioning, PhysOp};

use crate::cluster::ClusterConfig;
use crate::truth::NodeTruth;

/// Work done by one physical node, aggregated over all its vertices.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeWork {
    /// Total CPU seconds across vertices.
    pub cpu: f64,
    /// Total IO seconds (reads, writes, spills).
    pub io: f64,
    /// Total network seconds (shuffles, broadcasts, gathers).
    pub net: f64,
    /// Wall-clock seconds on the busiest vertex (the stage critical path
    /// contribution of this node).
    pub elapsed: f64,
    /// Peak per-vertex working-set bytes (hash builds, sort buffers,
    /// broadcast copies). Zero for streaming operators.
    pub mem: f64,
}

fn log2(rows: f64) -> f64 {
    rows.max(2.0).log2()
}

/// Spill factor for a per-vertex build of `build_pv` bytes: `0` when it
/// fits, growing linearly beyond the memory budget.
fn spill_ratio(build_pv: f64, mem: f64) -> f64 {
    ((build_pv - mem) / mem).max(0.0)
}

/// Compute the true work of `op`.
pub fn node_work(
    op: &PhysOp,
    own: &NodeTruth,
    children: &[&NodeTruth],
    cat: &TrueCatalog,
    cluster: &ClusterConfig,
) -> NodeWork {
    let c0 = children.first();
    let in_rows: f64 = children.iter().map(|c| c.rows).sum();
    let in_bytes: f64 = children.iter().map(|c| c.bytes).sum();
    let share = c0.map(|c| c.share).unwrap_or(1.0);
    match op {
        PhysOp::Scan {
            table,
            pushed,
            parallel,
            indexed,
        } => {
            let t = cat.tables.get(table.index());
            let raw_rows = t.map(|t| t.rows as f64).unwrap_or(0.0);
            let raw_bytes = raw_rows * t.map(|t| t.row_bytes as f64).unwrap_or(100.0);
            let read_bytes = if *indexed && !pushed.is_true() {
                (own.bytes * 2.0).min(raw_bytes)
            } else {
                raw_bytes
            };
            let io = read_bytes * C_IO;
            let cpu = raw_rows * C_CPU_ROW * (1.0 + pushed.len() as f64 * 0.2);
            let per_vertex = if *parallel { 1.0 / own.dop as f64 } else { 1.0 };
            NodeWork {
                cpu,
                io,
                net: 0.0,
                elapsed: (io + cpu) * per_vertex,
                mem: 0.0,
            }
        }
        PhysOp::Filter { predicate } => {
            let cpu = in_rows * C_CPU_ROW * (1.0 + predicate.len() as f64 * 0.2);
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * share,
                mem: 0.0,
            }
        }
        PhysOp::Project { computed, .. } => {
            let cpu = in_rows * C_CPU_ROW * (1.0 + *computed as f64);
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * share,
                mem: 0.0,
            }
        }
        PhysOp::HashJoin { .. } => {
            let l = children[0];
            let r = children[1];
            let join_share = l.share.max(r.share);
            let build_pv = r.bytes * r.share;
            let spill = spill_ratio(build_pv, cluster.mem_per_vertex);
            let cpu = (l.rows + r.rows) * C_HASH_ROW * (1.0 + 0.3 * spill);
            let spill_io = 2.0 * (build_pv - cluster.mem_per_vertex).max(0.0) * C_IO;
            NodeWork {
                cpu,
                io: spill_io,
                net: 0.0,
                elapsed: cpu * join_share + spill_io,
                mem: build_pv,
            }
        }
        PhysOp::MergeJoin { .. } => {
            let l = children[0];
            let r = children[1];
            let join_share = l.share.max(r.share);
            let cpu = l.rows * log2(l.rows * l.share) * C_SORT_ROW
                + r.rows * log2(r.rows * r.share) * C_SORT_ROW
                + (l.rows + r.rows) * C_CPU_ROW;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * join_share,
                mem: l.bytes * l.share + r.bytes * r.share,
            }
        }
        PhysOp::BroadcastJoin { .. } => {
            let l = children[0];
            let r = children[1];
            // Every probe vertex builds the full right side.
            let build_each = r.rows * C_HASH_ROW;
            let spill = spill_ratio(r.bytes, cluster.mem_per_vertex);
            let probe = l.rows * C_HASH_ROW;
            let spill_io_each = 2.0 * (r.bytes - cluster.mem_per_vertex).max(0.0) * C_IO;
            let dop = l.dop.max(1) as f64;
            NodeWork {
                cpu: probe + build_each * dop * (1.0 + 0.3 * spill),
                io: spill_io_each * dop,
                net: 0.0,
                elapsed: probe * l.share + build_each * (1.0 + 0.3 * spill) + spill_io_each,
                mem: r.bytes,
            }
        }
        PhysOp::LoopJoin { .. } => {
            let l = children[0];
            let r = children[1];
            let cpu = l.rows * r.rows * 0.02e-6;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu,
                mem: r.bytes * r.share,
            }
        }
        PhysOp::IndexJoin { .. } => {
            let l = children[0];
            let r = children[1];
            let cpu = l.rows * log2(r.rows) * 0.8e-6 + r.rows * C_CPU_ROW * 0.1;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * l.share.max(1.0 / l.dop.max(1) as f64),
                mem: 0.0,
            }
        }
        PhysOp::HashAgg { .. }
        | PhysOp::Window {
            hash_based: true, ..
        } => {
            let build_pv = in_bytes * share;
            let spill = spill_ratio(build_pv, cluster.mem_per_vertex);
            let cpu = in_rows * C_HASH_ROW * (1.0 + 0.3 * spill);
            let spill_io = 2.0 * (build_pv - cluster.mem_per_vertex).max(0.0) * C_IO;
            NodeWork {
                cpu,
                io: spill_io,
                net: 0.0,
                elapsed: cpu * share + spill_io,
                mem: build_pv,
            }
        }
        PhysOp::SortAgg { .. }
        | PhysOp::Window {
            hash_based: false, ..
        } => {
            let cpu = in_rows * log2(in_rows * share) * C_SORT_ROW;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * share,
                mem: in_bytes * share,
            }
        }
        PhysOp::StreamAgg { .. } => {
            let cpu = in_rows * C_CPU_ROW * 0.8;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * share,
                mem: 0.0,
            }
        }
        PhysOp::UnionAll { serial } => {
            let cpu = in_rows * C_CPU_ROW * 0.1;
            let s = if *serial {
                1.0
            } else {
                children.iter().map(|c| c.share).fold(0.0, f64::max)
            };
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: cpu * s,
                mem: 0.0,
            }
        }
        PhysOp::VirtualDataset => {
            // Write by producers (at their skew), read back uniformly.
            let write = in_bytes * C_IO;
            let read = in_bytes * C_IO;
            let in_share = children.iter().map(|c| c.share).fold(0.0, f64::max);
            NodeWork {
                cpu: in_rows * C_CPU_ROW * 0.1,
                io: write + read,
                net: 0.0,
                elapsed: write * in_share + read / own.dop.max(1) as f64,
                mem: 0.0,
            }
        }
        PhysOp::Top { k, heap } => {
            let kf = *k as f64;
            if *heap {
                let cpu = in_rows * C_CPU_ROW + kf * log2(kf) * C_SORT_ROW;
                let row_bytes = in_bytes / in_rows.max(1.0);
                NodeWork {
                    cpu,
                    io: 0.0,
                    net: 0.0,
                    elapsed: in_rows * C_CPU_ROW * share + kf * log2(kf) * C_SORT_ROW,
                    mem: kf * row_bytes,
                }
            } else {
                let cpu = in_rows * log2(in_rows) * C_SORT_ROW;
                NodeWork {
                    cpu,
                    io: 0.0,
                    net: 0.0,
                    elapsed: cpu,
                    mem: in_bytes,
                }
            }
        }
        PhysOp::Sort { parallel, .. } => {
            let cpu = in_rows * log2(in_rows * if *parallel { share } else { 1.0 }) * C_SORT_ROW;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: if *parallel { cpu * share } else { cpu },
                mem: in_bytes * if *parallel { share } else { 1.0 },
            }
        }
        PhysOp::Process { udo, parallel } => {
            let truth = cat.udo_truth(*udo);
            let cpu = in_rows * truth.cpu_per_row * C_UDO_ROW;
            NodeWork {
                cpu,
                io: 0.0,
                net: 0.0,
                elapsed: if *parallel { cpu * share } else { cpu },
                mem: 0.0,
            }
        }
        PhysOp::Output { .. } => {
            let io = in_bytes * C_IO;
            NodeWork {
                cpu: 0.0,
                io,
                net: 0.0,
                elapsed: io * share,
                mem: 0.0,
            }
        }
        PhysOp::Exchange { scheme, dop } => {
            let volume = match scheme {
                Partitioning::Broadcast => in_bytes * (*dop).max(1) as f64,
                _ => in_bytes,
            };
            let net = volume * C_NET;
            let recv_share = own.share;
            let send_share = share;
            NodeWork {
                cpu: in_rows * C_CPU_ROW * 0.2,
                io: 0.0,
                net,
                elapsed: net * send_share.max(recv_share).max(1.0 / (*dop).max(1) as f64),
                mem: 0.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::ColId;
    use scope_ir::JoinKind;

    fn t(rows: f64, bytes: f64, share: f64, dop: u32) -> NodeTruth {
        NodeTruth {
            rows,
            bytes,
            share,
            dop,
        }
    }

    fn hj() -> PhysOp {
        PhysOp::HashJoin {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
            variant: 1,
        }
    }

    #[test]
    fn skew_inflates_elapsed_not_cpu() {
        let cat = TrueCatalog::new();
        let cluster = ClusterConfig::ab_testing();
        let own = t(1e6, 1e8, 0.02, 50);
        let uniform_l = t(1e7, 1e9, 0.02, 50);
        let uniform_r = t(1e6, 1e8, 0.02, 50);
        let skewed_l = t(1e7, 1e9, 0.5, 50);
        let w_uniform = node_work(&hj(), &own, &[&uniform_l, &uniform_r], &cat, &cluster);
        let w_skewed = node_work(&hj(), &own, &[&skewed_l, &uniform_r], &cat, &cluster);
        assert!((w_uniform.cpu - w_skewed.cpu).abs() < 1e-9);
        assert!(w_skewed.elapsed > w_uniform.elapsed * 10.0);
    }

    #[test]
    fn hash_join_spills_beyond_memory() {
        let cat = TrueCatalog::new();
        let cluster = ClusterConfig::ab_testing();
        let own = t(1e6, 1e8, 0.02, 50);
        let l = t(1e6, 1e8, 0.02, 50);
        let fits = t(1e6, 1e8, 0.02, 50); // 2 MB per vertex
        let too_big = t(1e9, 4e11, 0.02, 50); // 8 GB per vertex
        let w_fit = node_work(&hj(), &own, &[&l, &fits], &cat, &cluster);
        let w_spill = node_work(&hj(), &own, &[&l, &too_big], &cat, &cluster);
        assert_eq!(w_fit.io, 0.0);
        assert!(w_spill.io > 0.0);
    }

    #[test]
    fn broadcast_join_pays_per_vertex_build() {
        let cat = TrueCatalog::new();
        let cluster = ClusterConfig::ab_testing();
        let own = t(1e6, 1e8, 0.02, 50);
        let l = t(1e7, 1e9, 0.02, 50);
        let small_r = t(1e3, 1e5, 1.0, 1);
        let big_r = t(1e8, 1e10, 1.0, 1);
        let op = PhysOp::BroadcastJoin {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(1))],
        };
        let w_small = node_work(&op, &own, &[&l, &small_r], &cat, &cluster);
        let w_big = node_work(&op, &own, &[&l, &big_r], &cat, &cluster);
        assert!(w_big.cpu > w_small.cpu * 100.0);
        assert!(w_big.io > 0.0, "oversized broadcast build must spill");
    }

    #[test]
    fn broadcast_exchange_moves_dop_copies() {
        let cat = TrueCatalog::new();
        let cluster = ClusterConfig::ab_testing();
        let own = t(1e6, 1e8, 1.0, 50);
        let child = t(1e6, 1e8, 0.02, 50);
        let bcast = PhysOp::Exchange {
            scheme: Partitioning::Broadcast,
            dop: 50,
        };
        let hash = PhysOp::Exchange {
            scheme: Partitioning::Hash(vec![ColId(0)]),
            dop: 50,
        };
        let w_b = node_work(&bcast, &own, &[&child], &cat, &cluster);
        let w_h = node_work(&hash, &own, &[&child], &cat, &cluster);
        assert!(w_b.net > w_h.net * 10.0);
    }

    #[test]
    fn true_udo_cost_differs_from_default() {
        let mut cat = TrueCatalog::new();
        let heavy = cat.add_udo(40.0, 1.0);
        let cluster = ClusterConfig::ab_testing();
        let own = t(1e6, 1e8, 0.02, 50);
        let child = t(1e6, 1e8, 0.02, 50);
        let w = node_work(
            &PhysOp::Process {
                udo: heavy,
                parallel: true,
            },
            &own,
            &[&child],
            &cat,
            &cluster,
        );
        let w_default = node_work(
            &PhysOp::Process {
                udo: scope_ir::ids::UdoId(99),
                parallel: true,
            },
            &own,
            &[&child],
            &cat,
            &cluster,
        );
        assert!((w.cpu / w_default.cpu - 40.0).abs() < 1e-6);
    }
}
