//! Cluster configuration for the execution simulator.

/// Configuration of the (simulated) cluster a job runs on.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Concurrent containers available to the job (SCOPE "tokens"). The
    /// paper's A/B runs fix this at 50.
    pub tokens: u32,
    /// Memory per vertex in bytes; hash builds beyond this spill.
    pub mem_per_vertex: f64,
    /// Baseline multiplicative runtime noise (σ of the underlying normal)
    /// for long jobs.
    pub noise_sigma_long: f64,
    /// Extra noise for short jobs (the paper reports ≈10% variance for
    /// short-running jobs); decays with runtime.
    pub noise_sigma_short: f64,
    /// Runtime (seconds) at which "short-job" noise has decayed by 1/e.
    pub noise_decay_s: f64,
}

impl ClusterConfig {
    /// The A/B testing environment of the paper: every job re-executed with
    /// the same 50 tokens.
    pub fn ab_testing() -> ClusterConfig {
        ClusterConfig {
            tokens: 50,
            mem_per_vertex: 1.0 * 1024.0 * 1024.0 * 1024.0,
            noise_sigma_long: 0.025,
            noise_sigma_short: 0.10,
            noise_decay_s: 400.0,
        }
    }

    /// A noise-free variant for deterministic tests.
    pub fn noiseless() -> ClusterConfig {
        ClusterConfig {
            noise_sigma_long: 0.0,
            noise_sigma_short: 0.0,
            ..Self::ab_testing()
        }
    }

    /// Effective noise σ for a job of the given true runtime.
    pub fn sigma_for_runtime(&self, runtime_s: f64) -> f64 {
        self.noise_sigma_long
            + self.noise_sigma_short * (-runtime_s / self.noise_decay_s.max(1.0)).exp()
    }

    /// Vertex waves a stage of the given parallelism needs under this
    /// cluster's token limit.
    pub fn waves_for(&self, dop: u32) -> f64 {
        crate::simulate::waves_for_tokens(dop, self.tokens)
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::ab_testing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_cluster_has_paper_tokens() {
        assert_eq!(ClusterConfig::ab_testing().tokens, 50);
    }

    #[test]
    fn short_jobs_are_noisier() {
        let c = ClusterConfig::ab_testing();
        assert!(c.sigma_for_runtime(30.0) > c.sigma_for_runtime(3600.0));
        assert!(c.sigma_for_runtime(30.0) > 0.09);
        assert!(c.sigma_for_runtime(36_000.0) < 0.03);
    }

    #[test]
    fn noiseless_cluster_has_zero_sigma() {
        let c = ClusterConfig::noiseless();
        assert_eq!(c.sigma_for_runtime(10.0), 0.0);
    }

    #[test]
    fn wave_counts_follow_token_limit() {
        let c = ClusterConfig::ab_testing();
        assert_eq!(c.waves_for(1), 1.0);
        assert_eq!(c.waves_for(50), 1.0);
        assert_eq!(c.waves_for(51), 2.0);
        assert_eq!(c.waves_for(500), 10.0);
    }
}
