//! Stage construction, token-limited scheduling, and job-level metrics.
//!
//! A physical plan is cut into *stages* at exchange/materialization
//! boundaries. Stage wall time is the sum of its nodes' busiest-vertex
//! elapsed times, multiplied by the wave factor when the stage's
//! parallelism exceeds the job's tokens. Job runtime is the critical-path
//! finish time of the output stage; CPU time and IO time aggregate over all
//! vertices, mirroring the paper's three metrics (§3.1.2).

use rand::Rng;

use scope_ir::stats::lognormal;
use scope_ir::TrueCatalog;
use scope_optimizer::PhysPlan;

use crate::cluster::ClusterConfig;
use crate::truth::{replay, NodeTruth};
use crate::work::{node_work, NodeWork};

/// Fixed scheduling overhead per stage (seconds).
pub(crate) const STAGE_OVERHEAD_S: f64 = 2.0;
/// Additional scheduling overhead per vertex wave.
pub(crate) const WAVE_OVERHEAD_S: f64 = 0.8;

/// Vertex waves a stage of the given parallelism needs under a token
/// limit (shared by the fault-free and faulted schedulers).
pub(crate) fn waves_for_tokens(dop: u32, tokens: u32) -> f64 {
    (dop as f64 / tokens.max(1) as f64).ceil().max(1.0)
}

/// The paper's three metrics (§3.1.2) in seconds, plus the peak per-vertex
/// working set in bytes (the feedback loop's memory signal).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Wall-clock latency of the job.
    pub runtime: f64,
    /// Total CPU time across all vertices.
    pub cpu_time: f64,
    /// Total IO time (reads, writes, spills, shuffles).
    pub io_time: f64,
    /// Peak per-vertex working-set bytes across all operators. Not a time:
    /// it gets no lognormal noise (working sets are a property of the data,
    /// not of cluster weather), and timeout-truncated runs report the peak
    /// reached, unscaled.
    pub memory: f64,
}

impl RunMetrics {
    /// Fetch one metric. The match arms, [`RunMetrics::as_array`], and
    /// [`Metric::ALL`] must all list components in the same order — the
    /// `metric_selector_roundtrip` test checks every variant mechanically.
    pub fn get(&self, metric: Metric) -> f64 {
        match metric {
            Metric::Runtime => self.runtime,
            Metric::CpuTime => self.cpu_time,
            Metric::IoTime => self.io_time,
            Metric::Memory => self.memory,
        }
    }

    /// All components in [`Metric::ALL`] order.
    pub fn as_array(&self) -> [f64; Metric::ALL.len()] {
        [self.runtime, self.cpu_time, self.io_time, self.memory]
    }

    /// All metrics are finite and non-negative. Every simulator path
    /// must uphold this — downstream ranking code orders by these values
    /// and must never see NaN.
    pub fn is_valid(&self) -> bool {
        self.as_array().iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

/// Metric selector used by the multi-metric experiments (Figure 7).
/// `Memory` is appended after the paper's three so positional consumers of
/// the original triple keep their indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    Runtime,
    CpuTime,
    IoTime,
    Memory,
}

impl Metric {
    pub const ALL: [Metric; 4] = [
        Metric::Runtime,
        Metric::CpuTime,
        Metric::IoTime,
        Metric::Memory,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Metric::Runtime => "runtime",
            Metric::CpuTime => "cpu_time",
            Metric::IoTime => "io_time",
            Metric::Memory => "memory",
        }
    }
}

/// One execution stage.
#[derive(Clone, Debug, Default)]
pub struct Stage {
    /// Sum of member nodes' busiest-vertex elapsed seconds.
    pub elapsed: f64,
    /// Maximum parallelism among member nodes.
    pub dop: u32,
    /// Stages that must finish before this one starts.
    pub deps: Vec<usize>,
}

/// The stage decomposition of a plan (exposed for tests and diagnostics).
pub struct StageGraph {
    pub stages: Vec<Stage>,
    /// Stage of each plan node (by node id index; unreachable nodes get 0).
    pub node_stage: Vec<usize>,
    /// Stage containing the root.
    pub root_stage: usize,
}

/// Build the stage graph and accumulate per-node work into stages.
pub fn build_stages(plan: &PhysPlan, truths: &[NodeTruth], works: &[NodeWork]) -> StageGraph {
    let mut stages: Vec<Stage> = Vec::new();
    let mut node_stage = vec![0usize; plan.len()];
    let reachable = plan.reachable();
    for &id in &reachable {
        let node = plan.node(id);
        let mut chosen: Option<usize> = None;
        let mut deps: Vec<usize> = Vec::new();
        for &c in &node.children {
            let cs = node_stage[c.index()];
            if plan.node(c).op.is_stage_boundary() {
                // Consumers of a boundary run in a fresh stage that depends
                // on the producer's stage.
                deps.push(cs);
            } else if let Some(s) = chosen {
                if s != cs {
                    // Two pipelines meet without an exchange (e.g. a
                    // streaming union): treat the other as a dependency.
                    deps.push(cs);
                }
            } else {
                chosen = Some(cs);
            }
        }
        let sid = match chosen {
            Some(s) => {
                // Several nodes of one stage can consume the same producer
                // stage; record each dependency once.
                for d in deps {
                    if d != s && !stages[s].deps.contains(&d) {
                        stages[s].deps.push(d);
                    }
                }
                s
            }
            None => {
                deps.sort_unstable();
                deps.dedup();
                let sid = stages.len();
                stages.push(Stage {
                    elapsed: 0.0,
                    dop: 1,
                    deps,
                });
                sid
            }
        };
        node_stage[id.index()] = sid;
        let stage = &mut stages[sid];
        stage.elapsed += works[id.index()].elapsed;
        stage.dop = stage.dop.max(truths[id.index()].dop);
    }
    let root_stage = plan.root().map(|r| node_stage[r.index()]).unwrap_or(0);
    // Producer-side enforcement of the RunMetrics contract: stage elapsed
    // times are built from NodeWork and must already be finite and
    // non-negative here, so a poisoned work model is caught where it enters
    // the scheduler instead of panicking a downstream comparator.
    debug_assert!(
        stages
            .iter()
            .all(|s| s.elapsed.is_finite() && s.elapsed >= 0.0),
        "stage elapsed times must be finite and non-negative"
    );
    StageGraph {
        stages,
        node_stage,
        root_stage,
    }
}

/// Critical-path makespan under the token limit.
pub fn makespan(stages: &StageGraph, tokens: u32) -> f64 {
    let n = stages.stages.len();
    let mut finish = vec![0.0_f64; n];
    // Stages were created in topological order (children before parents).
    for (i, stage) in stages.stages.iter().enumerate() {
        let start = stage
            .deps
            .iter()
            .map(|&d| finish[d])
            .fold(0.0_f64, f64::max);
        let waves = waves_for_tokens(stage.dop, tokens);
        let time = stage.elapsed * waves + STAGE_OVERHEAD_S + WAVE_OVERHEAD_S * waves;
        finish[i] = start + time;
    }
    let runtime = finish
        .get(stages.root_stage)
        .copied()
        .unwrap_or(STAGE_OVERHEAD_S);
    debug_assert!(
        runtime.is_finite() && runtime >= 0.0,
        "makespan must be finite and non-negative: {runtime}"
    );
    runtime
}

/// Execute a plan deterministically (no noise).
pub fn execute_deterministic(
    plan: &PhysPlan,
    cat: &TrueCatalog,
    cluster: &ClusterConfig,
) -> RunMetrics {
    let truths = replay(plan, cat);
    let mut works = vec![NodeWork::default(); plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let children: Vec<&NodeTruth> = node.children.iter().map(|c| &truths[c.index()]).collect();
        works[id.index()] = node_work(&node.op, &truths[id.index()], &children, cat, cluster);
    }
    let stages = build_stages(plan, &truths, &works);
    let runtime = makespan(&stages, cluster.tokens);
    let mut cpu = 0.0;
    let mut io = 0.0;
    let mut mem = 0.0_f64;
    for id in plan.reachable() {
        cpu += works[id.index()].cpu;
        io += works[id.index()].io + works[id.index()].net;
        mem = mem.max(works[id.index()].mem);
    }
    let metrics = RunMetrics {
        runtime,
        cpu_time: cpu,
        io_time: io,
        memory: mem,
    };
    debug_assert!(
        metrics.is_valid(),
        "deterministic metrics must stay finite and non-negative: {metrics:?}"
    );
    scope_trace::count(scope_trace::Counter::ExecRuns, 1);
    if scope_trace::enabled() {
        scope_trace::record(
            scope_trace::Histogram::ExecSimulatedMillis,
            (metrics.runtime * 1000.0) as u64,
        );
        for stage in &stages.stages {
            scope_trace::record(
                scope_trace::Histogram::StageSimulatedMillis,
                (stage.elapsed * 1000.0) as u64,
            );
        }
    }
    metrics
}

/// Execute with multiplicative lognormal noise (mean-one), modelling the
/// cluster variance described in §3.1.1.
pub fn execute<R: Rng + ?Sized>(
    plan: &PhysPlan,
    cat: &TrueCatalog,
    cluster: &ClusterConfig,
    rng: &mut R,
) -> RunMetrics {
    let base = execute_deterministic(plan, cat, cluster);
    let sigma = cluster.sigma_for_runtime(base.runtime);
    if sigma == 0.0 {
        return base;
    }
    let mean_one = |rng: &mut R, s: f64| lognormal(rng, -s * s / 2.0, s);
    // Exactly three draws, same order as before the memory metric was
    // added: the RNG stream feeding every seed-stable test must not shift.
    let metrics = RunMetrics {
        runtime: base.runtime * mean_one(rng, sigma),
        cpu_time: base.cpu_time * mean_one(rng, sigma * 0.5),
        io_time: base.io_time * mean_one(rng, sigma * 0.5),
        memory: base.memory,
    };
    debug_assert!(
        metrics.is_valid(),
        "noisy metrics must stay finite and non-negative: {metrics:?}"
    );
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_ir::expr::Predicate;
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_optimizer::{Partitioning, PhysNode, PhysOp};

    fn node(op: PhysOp, children: Vec<scope_ir::ids::NodeId>) -> PhysNode {
        PhysNode {
            op,
            children,
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            est_cost_vec: Default::default(),
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        }
    }

    fn two_stage_plan() -> (PhysPlan, TrueCatalog) {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(10_000_000, 100, 1, vec![c]);
        let mut p = PhysPlan::new();
        let scan = p.add(node(
            PhysOp::Scan {
                table: TableId(0),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            vec![],
        ));
        let ex = p.add(node(
            PhysOp::Exchange {
                scheme: Partitioning::Hash(vec![ColId(0)]),
                dop: 50,
            },
            vec![scan],
        ));
        let agg = p.add(node(
            PhysOp::HashAgg {
                keys: vec![ColId(0)],
                aggs: vec![],
                partial: false,
            },
            vec![ex],
        ));
        let out = p.add(node(PhysOp::Output { stream: 0 }, vec![agg]));
        p.set_root(out);
        (p, cat)
    }

    #[test]
    fn stage_cut_at_exchange() {
        let (plan, cat) = two_stage_plan();
        let cluster = ClusterConfig::noiseless();
        let truths = replay(&plan, &cat);
        let mut works = vec![NodeWork::default(); plan.len()];
        for id in plan.reachable() {
            let n = plan.node(id);
            let ch: Vec<&NodeTruth> = n.children.iter().map(|c| &truths[c.index()]).collect();
            works[id.index()] = node_work(&n.op, &truths[id.index()], &ch, &cat, &cluster);
        }
        let stages = build_stages(&plan, &truths, &works);
        // Stage 0: scan + exchange (producer side). Stage 1: agg + output.
        assert_eq!(stages.stages.len(), 2);
        assert_eq!(stages.node_stage[0], 0);
        assert_eq!(stages.node_stage[1], 0);
        assert_eq!(stages.node_stage[2], 1);
        assert_eq!(stages.node_stage[3], 1);
        assert_eq!(stages.stages[1].deps, vec![0]);
        assert_eq!(stages.root_stage, 1);
    }

    #[test]
    fn makespan_respects_dependencies_and_waves() {
        let g = StageGraph {
            stages: vec![
                Stage {
                    elapsed: 10.0,
                    dop: 50,
                    deps: vec![],
                },
                Stage {
                    elapsed: 5.0,
                    dop: 100,
                    deps: vec![0],
                },
            ],
            node_stage: vec![],
            root_stage: 1,
        };
        let m50 = makespan(&g, 50);
        // Stage 1 at dop 100 with 50 tokens runs in 2 waves.
        let expected = (10.0 + STAGE_OVERHEAD_S + WAVE_OVERHEAD_S)
            + (5.0 * 2.0 + STAGE_OVERHEAD_S + 2.0 * WAVE_OVERHEAD_S);
        assert!((m50 - expected).abs() < 1e-9);
        // More tokens → no waves → faster.
        assert!(makespan(&g, 100) < m50);
    }

    #[test]
    fn execution_is_deterministic_without_noise() {
        let (plan, cat) = two_stage_plan();
        let cluster = ClusterConfig::noiseless();
        let a = execute_deterministic(&plan, &cat, &cluster);
        let b = execute_deterministic(&plan, &cat, &cluster);
        assert_eq!(a, b);
        assert!(a.runtime > 0.0);
        assert!(a.cpu_time > 0.0);
        assert!(a.io_time > 0.0);
    }

    #[test]
    fn noise_is_seed_stable_and_mean_one_ish() {
        let (plan, cat) = two_stage_plan();
        let cluster = ClusterConfig::ab_testing();
        let base = execute_deterministic(&plan, &cat, &cluster);
        let mut rng = StdRng::seed_from_u64(42);
        let a = execute(&plan, &cat, &cluster, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(42);
        let b = execute(&plan, &cat, &cluster, &mut rng2);
        assert_eq!(a, b);
        // Mean-one noise: across many trials the average is close to base.
        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..500)
            .map(|_| execute(&plan, &cat, &cluster, &mut rng).runtime)
            .sum::<f64>()
            / 500.0;
        assert!((mean / base.runtime - 1.0).abs() < 0.05);
    }

    #[test]
    fn metric_selector_roundtrip() {
        // Distinct value per field so any ordering mix-up between the
        // struct, `get`, `as_array`, and `Metric::ALL` fails loudly.
        let m = RunMetrics {
            runtime: 1.0,
            cpu_time: 2.0,
            io_time: 3.0,
            memory: 4.0,
        };
        assert_eq!(m.get(Metric::Runtime), 1.0);
        assert_eq!(m.get(Metric::CpuTime), 2.0);
        assert_eq!(m.get(Metric::IoTime), 3.0);
        assert_eq!(m.get(Metric::Memory), 4.0);
        assert_eq!(Metric::ALL.len(), 4);
        // Exhaustive per-variant consistency: as_array's slot i IS
        // get(ALL[i]), and names stay unique.
        let arr = m.as_array();
        for (i, metric) in Metric::ALL.into_iter().enumerate() {
            assert_eq!(arr[i], m.get(metric), "slot {i} ({})", metric.name());
        }
        let names: std::collections::BTreeSet<&str> =
            Metric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    #[test]
    fn memory_metric_tracks_peak_working_set_without_noise() {
        let (plan, cat) = two_stage_plan();
        let det = execute_deterministic(&plan, &cat, &ClusterConfig::noiseless());
        assert!(det.memory > 0.0, "hash agg build must report a working set");
        // Noise perturbs the three time metrics but never the byte peak.
        let cluster = ClusterConfig::ab_testing();
        let base = execute_deterministic(&plan, &cat, &cluster);
        let mut rng = StdRng::seed_from_u64(9);
        let noisy = execute(&plan, &cat, &cluster, &mut rng);
        assert_ne!(noisy.runtime, base.runtime);
        assert_eq!(noisy.memory, base.memory);
    }
}
