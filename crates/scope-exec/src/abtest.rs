//! The A/B testing harness (§3.1.3): re-execute production plans in a
//! pre-production environment with a fixed resource allocation (50 tokens)
//! and outputs redirected — here, a deterministic simulator with seeded
//! noise.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use scope_ir::{Job, TrueCatalog};
use scope_optimizer::{PhysOp, PhysPlan};

use crate::cluster::ClusterConfig;
use crate::simulate::{execute, execute_deterministic, RunMetrics};

/// Stable fingerprint of a physical plan's structure (used to seed
/// per-plan noise so that re-running the same plan in the same trial is
/// reproducible).
pub fn plan_fingerprint(plan: &PhysPlan) -> u64 {
    let mut h = DefaultHasher::new();
    for id in plan.reachable() {
        let node = plan.node(id);
        node.op.name().hash(&mut h);
        node.dop.hash(&mut h);
        for c in &node.children {
            c.index().hash(&mut h);
        }
        if let PhysOp::Exchange { dop, .. } = &node.op {
            dop.hash(&mut h);
        }
    }
    h.finish()
}

/// The pre-production A/B runner.
#[derive(Clone, Debug)]
pub struct ABTester {
    pub cluster: ClusterConfig,
    /// Base seed; combined with job, plan, and trial for noise.
    pub seed: u64,
}

impl ABTester {
    /// The paper's setup: 50 tokens for every job.
    pub fn new(seed: u64) -> ABTester {
        ABTester {
            cluster: ClusterConfig::ab_testing(),
            seed,
        }
    }

    /// Noise-free runner for invariance tests.
    pub fn noiseless(seed: u64) -> ABTester {
        ABTester {
            cluster: ClusterConfig::noiseless(),
            seed,
        }
    }

    /// Re-execute `plan` for `job` (trial index distinguishes repeated
    /// runs of the same plan).
    pub fn run(&self, job: &Job, plan: &PhysPlan, trial: u32) -> RunMetrics {
        self.run_with_catalog(job.id.0, &job.catalog, plan, trial)
    }

    /// Re-execute with an explicit catalog (for plans not tied to a job).
    pub fn run_with_catalog(
        &self,
        tag: u64,
        cat: &TrueCatalog,
        plan: &PhysPlan,
        trial: u32,
    ) -> RunMetrics {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        tag.hash(&mut h);
        plan_fingerprint(plan).hash(&mut h);
        trial.hash(&mut h);
        let mut rng = StdRng::seed_from_u64(h.finish());
        execute(plan, cat, &self.cluster, &mut rng)
    }

    /// The noise-free ground truth for a plan.
    pub fn run_true(&self, cat: &TrueCatalog, plan: &PhysPlan) -> RunMetrics {
        execute_deterministic(plan, cat, &self.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::Predicate;
    use scope_ir::ids::{DomainId, TableId};
    use scope_optimizer::{Partitioning, PhysNode};

    fn tiny_plan() -> (PhysPlan, TrueCatalog) {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(100, 0.0, DomainId(0));
        cat.add_table(1_000_000, 100, 1, vec![c]);
        let mut p = PhysPlan::new();
        let scan = p.add(PhysNode {
            op: PhysOp::Scan {
                table: TableId(0),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            children: vec![],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        let out = p.add(PhysNode {
            op: PhysOp::Output { stream: 0 },
            children: vec![scan],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        p.set_root(out);
        (p, cat)
    }

    #[test]
    fn same_trial_same_metrics() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let b = ab.run_with_catalog(1, &cat, &plan, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ_under_noise() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let b = ab.run_with_catalog(1, &cat, &plan, 1);
        assert_ne!(a.runtime, b.runtime);
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let (plan, cat) = tiny_plan();
        let mut p2 = plan.clone();
        let extra = p2.add(PhysNode {
            op: PhysOp::Filter {
                predicate: Predicate::true_pred(),
            },
            children: vec![scope_ir::ids::NodeId(0)],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        let _ = extra;
        let out2 = p2.add(PhysNode {
            op: PhysOp::Output { stream: 0 },
            children: vec![extra],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        p2.set_root(out2);
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&p2));
        let _ = cat;
    }

    #[test]
    fn noiseless_runner_matches_ground_truth() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::noiseless(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let t = ab.run_true(&cat, &plan);
        assert_eq!(a, t);
    }
}
