//! The A/B testing harness (§3.1.3): re-execute production plans in a
//! pre-production environment with a fixed resource allocation (50 tokens)
//! and outputs redirected — here, a deterministic simulator with seeded
//! noise.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

use scope_ir::{Job, TrueCatalog};
use scope_optimizer::{PhysOp, PhysPlan};

use crate::cluster::ClusterConfig;
use crate::faults::{execute_with_faults, FaultProfile, FaultedRun, JobOutcome};
use crate::simulate::{execute_deterministic, RunMetrics};

/// Stable fingerprint of a physical plan's structure (used to seed
/// per-plan noise so that re-running the same plan in the same trial is
/// reproducible).
pub fn plan_fingerprint(plan: &PhysPlan) -> u64 {
    let mut h = DefaultHasher::new();
    for id in plan.reachable() {
        let node = plan.node(id);
        node.op.name().hash(&mut h);
        node.dop.hash(&mut h);
        for c in &node.children {
            c.index().hash(&mut h);
        }
        if let PhysOp::Exchange { dop, .. } = &node.op {
            dop.hash(&mut h);
        }
    }
    h.finish()
}

/// How the A/B harness retries failed or timed-out trials.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Wait before the first re-attempt (seconds); doubles per attempt.
    /// The wait is billed to the reported wall-clock runtime.
    pub backoff_base_s: f64,
    /// Per-trial wall-clock cap: a single attempt running past this is
    /// treated as timed out (and retried, budget permitting).
    pub trial_timeout_s: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 30.0,
            trial_timeout_s: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out (one bare attempt).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_s: 0.0,
            trial_timeout_s: None,
        }
    }
}

/// The pre-production A/B runner.
#[derive(Clone, Debug)]
pub struct ABTester {
    pub cluster: ClusterConfig,
    /// Base seed; combined with job, plan, and trial for noise.
    pub seed: u64,
    /// Faults injected into every run ([`FaultProfile::none`] keeps the
    /// harness bit-identical to the noise-only simulator).
    pub faults: FaultProfile,
}

impl ABTester {
    /// The paper's setup: 50 tokens for every job.
    pub fn new(seed: u64) -> ABTester {
        ABTester {
            cluster: ClusterConfig::ab_testing(),
            seed,
            faults: FaultProfile::none(),
        }
    }

    /// Noise-free runner for invariance tests.
    pub fn noiseless(seed: u64) -> ABTester {
        ABTester {
            cluster: ClusterConfig::noiseless(),
            seed,
            faults: FaultProfile::none(),
        }
    }

    /// Same harness with faults injected into every run.
    pub fn with_faults(mut self, faults: FaultProfile) -> ABTester {
        self.faults = faults;
        self
    }

    /// The per-run RNG: seeded from (base seed, job tag, plan fingerprint,
    /// trial). The attempt index participates only for re-attempts, so
    /// attempt 0 reproduces the historical single-attempt stream exactly.
    fn rng_for(&self, tag: u64, fingerprint: u64, trial: u32, attempt: u32) -> StdRng {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        tag.hash(&mut h);
        fingerprint.hash(&mut h);
        trial.hash(&mut h);
        if attempt > 0 {
            attempt.hash(&mut h);
        }
        StdRng::seed_from_u64(h.finish())
    }

    fn attempt(
        &self,
        tag: u64,
        cat: &TrueCatalog,
        plan: &PhysPlan,
        trial: u32,
        attempt: u32,
    ) -> FaultedRun {
        let mut rng = self.rng_for(tag, plan_fingerprint(plan), trial, attempt);
        execute_with_faults(plan, cat, &self.cluster, &self.faults, &mut rng)
    }

    /// Re-execute `plan` for `job` (trial index distinguishes repeated
    /// runs of the same plan).
    pub fn run(&self, job: &Job, plan: &PhysPlan, trial: u32) -> RunMetrics {
        self.run_with_catalog(job.id.0, &job.catalog, plan, trial)
    }

    /// Re-execute with an explicit catalog (for plans not tied to a job).
    pub fn run_with_catalog(
        &self,
        tag: u64,
        cat: &TrueCatalog,
        plan: &PhysPlan,
        trial: u32,
    ) -> RunMetrics {
        self.attempt(tag, cat, plan, trial, 0).metrics
    }

    /// Like [`Self::run`], but also reports how the run ended. Callers
    /// that rank configurations should discard non-successful runs.
    pub fn run_outcome(&self, job: &Job, plan: &PhysPlan, trial: u32) -> FaultedRun {
        self.run_outcome_with_catalog(job.id.0, &job.catalog, plan, trial)
    }

    /// [`Self::run_outcome`] with an explicit catalog.
    pub fn run_outcome_with_catalog(
        &self,
        tag: u64,
        cat: &TrueCatalog,
        plan: &PhysPlan,
        trial: u32,
    ) -> FaultedRun {
        self.attempt(tag, cat, plan, trial, 0)
    }

    /// Re-execute with retry-with-backoff scheduling: failed or timed-out
    /// attempts are re-submitted (each with a fresh fault roll) up to the
    /// policy's budget, and backoff waits are billed to the reported
    /// runtime. Returns the first successful attempt, or the last failing
    /// one when the budget runs out.
    pub fn run_with_retry(
        &self,
        job: &Job,
        plan: &PhysPlan,
        trial: u32,
        policy: &RetryPolicy,
    ) -> FaultedRun {
        self.run_with_retry_with_catalog(job.id.0, &job.catalog, plan, trial, policy)
    }

    /// [`Self::run_with_retry`] with an explicit catalog.
    pub fn run_with_retry_with_catalog(
        &self,
        tag: u64,
        cat: &TrueCatalog,
        plan: &PhysPlan,
        trial: u32,
        policy: &RetryPolicy,
    ) -> FaultedRun {
        let attempts = policy.max_attempts.max(1);
        // Wall time already burnt by earlier failed attempts and backoffs.
        let mut elapsed_before = 0.0;
        let mut last = None;
        for attempt in 0..attempts {
            let mut run = self.attempt(tag, cat, plan, trial, attempt);
            if let Some(t) = policy.trial_timeout_s {
                if run.metrics.runtime > t {
                    let done_frac = (t / run.metrics.runtime).clamp(0.0, 1.0);
                    run.metrics.runtime = t;
                    run.metrics.cpu_time *= done_frac;
                    run.metrics.io_time *= done_frac;
                    run.outcome = JobOutcome::TimedOut;
                    // The clamp is a metrics producer: enforce the contract
                    // here rather than in whoever ranks these runs.
                    debug_assert!(
                        run.metrics.is_valid(),
                        "timeout clamp must keep metrics finite: {:?}",
                        run.metrics
                    );
                }
            }
            let attempt_runtime = run.metrics.runtime;
            run.metrics.runtime += elapsed_before;
            if run.outcome.is_success() {
                if attempt > 0 {
                    let retries = run.outcome.retries() + attempt;
                    run.outcome = JobOutcome::SuccessWithRetries { retries };
                    run.retries += attempt;
                }
                return run;
            }
            elapsed_before += attempt_runtime
                + policy.backoff_base_s.max(0.0) * f64::powi(2.0, attempt.min(6) as i32);
            last = Some(run);
        }
        last.expect("max_attempts >= 1 always produces a run")
    }

    /// The noise-free ground truth for a plan.
    pub fn run_true(&self, cat: &TrueCatalog, plan: &PhysPlan) -> RunMetrics {
        execute_deterministic(plan, cat, &self.cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::Predicate;
    use scope_ir::ids::{DomainId, TableId};
    use scope_optimizer::{Partitioning, PhysNode};

    fn tiny_plan() -> (PhysPlan, TrueCatalog) {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(100, 0.0, DomainId(0));
        cat.add_table(1_000_000, 100, 1, vec![c]);
        let mut p = PhysPlan::new();
        let scan = p.add(PhysNode {
            op: PhysOp::Scan {
                table: TableId(0),
                pushed: Predicate::true_pred(),
                parallel: true,
                indexed: false,
            },
            children: vec![],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            est_cost_vec: Default::default(),
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        let out = p.add(PhysNode {
            op: PhysOp::Output { stream: 0 },
            children: vec![scan],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            est_cost_vec: Default::default(),
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        p.set_root(out);
        (p, cat)
    }

    #[test]
    fn same_trial_same_metrics() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let b = ab.run_with_catalog(1, &cat, &plan, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_trials_differ_under_noise() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let b = ab.run_with_catalog(1, &cat, &plan, 1);
        assert_ne!(a.runtime, b.runtime);
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let (plan, cat) = tiny_plan();
        let mut p2 = plan.clone();
        let extra = p2.add(PhysNode {
            op: PhysOp::Filter {
                predicate: Predicate::true_pred(),
            },
            children: vec![scope_ir::ids::NodeId(0)],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            est_cost_vec: Default::default(),
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        let _ = extra;
        let out2 = p2.add(PhysNode {
            op: PhysOp::Output { stream: 0 },
            children: vec![extra],
            est_rows: 0.0,
            est_bytes: 0.0,
            est_cost: 0.0,
            est_cost_vec: Default::default(),
            partitioning: Partitioning::Any,
            dop: 1,
            created_by: None,
            logical_rule: None,
        });
        p2.set_root(out2);
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&p2));
        let _ = cat;
    }

    #[test]
    fn noiseless_runner_matches_ground_truth() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::noiseless(7);
        let a = ab.run_with_catalog(1, &cat, &plan, 0);
        let t = ab.run_true(&cat, &plan);
        assert_eq!(a, t);
    }

    #[test]
    fn faultless_harness_is_bit_identical_to_noise_only() {
        let (plan, cat) = tiny_plan();
        let plain = ABTester::new(7);
        let faulted = ABTester::new(7).with_faults(FaultProfile::none());
        for trial in 0..5 {
            assert_eq!(
                plain.run_with_catalog(1, &cat, &plan, trial),
                faulted.run_with_catalog(1, &cat, &plan, trial)
            );
        }
        let run = faulted.run_outcome_with_catalog(1, &cat, &plan, 0);
        assert_eq!(run.outcome, JobOutcome::Success);
        assert_eq!(run.metrics, plain.run_with_catalog(1, &cat, &plan, 0));
        assert_eq!(run.retries, 0);
    }

    #[test]
    fn faulted_outcomes_are_deterministic_per_seed() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7).with_faults(FaultProfile::heavy());
        for trial in 0..10 {
            let a = ab.run_outcome_with_catalog(1, &cat, &plan, trial);
            let b = ab.run_outcome_with_catalog(1, &cat, &plan, trial);
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.retries, b.retries);
            assert!(a.metrics.is_valid());
        }
    }

    #[test]
    fn job_timeout_clamps_runtime_and_reports_timed_out() {
        let (plan, cat) = tiny_plan();
        let base = ABTester::new(7).run_with_catalog(1, &cat, &plan, 0);
        let cap = base.runtime / 2.0;
        let ab = ABTester::new(7).with_faults(FaultProfile::none().with_timeout(cap));
        let run = ab.run_outcome_with_catalog(1, &cat, &plan, 0);
        assert_eq!(run.outcome, JobOutcome::TimedOut);
        assert!((run.metrics.runtime - cap).abs() < 1e-9);
        assert!(run.metrics.is_valid());
    }

    #[test]
    fn trial_timeout_in_policy_retries_then_gives_up() {
        let (plan, cat) = tiny_plan();
        let ab = ABTester::new(7);
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 10.0,
            trial_timeout_s: Some(1e-3), // nothing finishes this fast
        };
        let run = ab.run_with_retry_with_catalog(1, &cat, &plan, 0, &policy);
        assert_eq!(run.outcome, JobOutcome::TimedOut);
        // Two failed attempts (1e-3 each) plus their backoffs (10 + 20)
        // precede the final capped attempt.
        assert!((run.metrics.runtime - (30.0 + 3e-3)).abs() < 1e-6);
    }

    #[test]
    fn retries_rescue_flaky_runs() {
        let (plan, cat) = tiny_plan();
        // A very flaky cluster with no in-run retry budget: individual
        // attempts often fail outright.
        let mut profile = FaultProfile::with_vertex_failures(0.5);
        profile.max_retries = 0;
        let ab = ABTester::new(7).with_faults(profile);
        let bare = RetryPolicy::no_retries();
        let patient = RetryPolicy {
            max_attempts: 5,
            backoff_base_s: 1.0,
            trial_timeout_s: None,
        };
        let trials = 40;
        let bare_ok = (0..trials)
            .filter(|&t| {
                ab.run_with_retry_with_catalog(1, &cat, &plan, t, &bare)
                    .outcome
                    .is_success()
            })
            .count();
        let patient_ok = (0..trials)
            .filter(|&t| {
                ab.run_with_retry_with_catalog(1, &cat, &plan, t, &patient)
                    .outcome
                    .is_success()
            })
            .count();
        assert!(
            patient_ok > bare_ok,
            "retries must rescue some trials: {patient_ok} vs {bare_ok}"
        );
        // A rescued run reports the attempts it consumed.
        let rescued = (0..trials)
            .map(|t| ab.run_with_retry_with_catalog(1, &cat, &plan, t, &patient))
            .find(|r| matches!(r.outcome, JobOutcome::SuccessWithRetries { .. }));
        if let Some(r) = rescued {
            assert!(r.outcome.retries() > 0);
        }
    }
}
