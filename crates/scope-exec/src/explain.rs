//! `EXPLAIN ANALYZE`-style execution traces: per-operator estimated vs
//! true cardinalities, work breakdown, and stage assignment — the
//! debugging view an engineer would use to understand *why* a plan is slow
//! and which estimates the optimizer got wrong.

use std::fmt::Write as _;

use scope_ir::ids::NodeId;
use scope_ir::TrueCatalog;
use scope_optimizer::PhysPlan;

use crate::cluster::ClusterConfig;
use crate::simulate::{build_stages, makespan, RunMetrics};
use crate::truth::{replay, NodeTruth};
use crate::work::{node_work, NodeWork};

/// Per-operator row of the trace.
#[derive(Clone, Debug)]
pub struct NodeReport {
    pub node: NodeId,
    pub op: &'static str,
    /// The optimizer's estimated output rows.
    pub est_rows: f64,
    /// The true output rows.
    pub true_rows: f64,
    /// Estimated per-operator cost.
    pub est_cost: f64,
    /// True work breakdown.
    pub work: NodeWork,
    /// Busiest-vertex data share.
    pub share: f64,
    pub dop: u32,
    /// Execution stage this operator runs in.
    pub stage: usize,
}

impl NodeReport {
    /// The cardinality q-error: `max(est/true, true/est)` (≥ 1; large
    /// values mark the estimates steering decisions went wrong on).
    pub fn q_error(&self) -> f64 {
        let est = self.est_rows.max(1.0);
        let truth = self.true_rows.max(1.0);
        (est / truth).max(truth / est)
    }
}

/// Per-stage summary.
#[derive(Clone, Debug)]
pub struct StageReport {
    pub stage: usize,
    pub elapsed: f64,
    pub dop: u32,
    pub deps: Vec<usize>,
}

/// The full trace of one simulated execution.
#[derive(Clone, Debug)]
pub struct ExecutionTrace {
    pub nodes: Vec<NodeReport>,
    pub stages: Vec<StageReport>,
    pub metrics: RunMetrics,
}

impl ExecutionTrace {
    /// Nodes sorted by cardinality q-error, worst first. Descending
    /// NaN-last (`nan_first_cmp` with swapped operands), so a corrupted
    /// row drops to the bottom instead of panicking the sort.
    pub fn worst_estimates(&self, n: usize) -> Vec<&NodeReport> {
        let mut refs: Vec<&NodeReport> = self.nodes.iter().collect();
        refs.sort_by(|a, b| scope_ir::stats::nan_first_cmp(b.q_error(), a.q_error()));
        refs.truncate(n);
        refs
    }

    /// Nodes sorted by elapsed contribution, hottest first (descending
    /// NaN-last, like [`Self::worst_estimates`]).
    pub fn hottest_nodes(&self, n: usize) -> Vec<&NodeReport> {
        let mut refs: Vec<&NodeReport> = self.nodes.iter().collect();
        refs.sort_by(|a, b| scope_ir::stats::nan_first_cmp(b.work.elapsed, a.work.elapsed));
        refs.truncate(n);
        refs
    }

    /// Render as an aligned table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>5} {:<14} {:>12} {:>12} {:>8} {:>9} {:>9} {:>9} {:>8} {:>5}",
            "node",
            "stage",
            "op",
            "est rows",
            "true rows",
            "q-err",
            "cpu s",
            "io s",
            "elapsed",
            "share",
            "dop"
        );
        for r in &self.nodes {
            let _ = writeln!(
                out,
                "{:>4} {:>5} {:<14} {:>12.0} {:>12.0} {:>8.1} {:>9.2} {:>9.2} {:>9.2} {:>8.3} {:>5}",
                r.node.index(),
                r.stage,
                r.op,
                r.est_rows,
                r.true_rows,
                r.q_error(),
                r.work.cpu,
                r.work.io + r.work.net,
                r.work.elapsed,
                r.share,
                r.dop
            );
        }
        let _ = writeln!(
            out,
            "-- {} stages; runtime {:.1}s, cpu {:.1}s, io {:.1}s",
            self.stages.len(),
            self.metrics.runtime,
            self.metrics.cpu_time,
            self.metrics.io_time
        );
        out
    }
}

/// Produce the trace of a (noise-free) execution.
pub fn explain(plan: &PhysPlan, cat: &TrueCatalog, cluster: &ClusterConfig) -> ExecutionTrace {
    let truths = replay(plan, cat);
    let mut works = vec![NodeWork::default(); plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let children: Vec<&NodeTruth> = node.children.iter().map(|c| &truths[c.index()]).collect();
        works[id.index()] = node_work(&node.op, &truths[id.index()], &children, cat, cluster);
    }
    let stages = build_stages(plan, &truths, &works);
    let runtime = makespan(&stages, cluster.tokens);

    let mut cpu = 0.0;
    let mut io = 0.0;
    let mut mem = 0.0_f64;
    let mut nodes = Vec::new();
    for id in plan.reachable() {
        let n = plan.node(id);
        let w = works[id.index()];
        cpu += w.cpu;
        io += w.io + w.net;
        mem = mem.max(w.mem);
        nodes.push(NodeReport {
            node: id,
            op: n.op.name(),
            est_rows: n.est_rows,
            true_rows: truths[id.index()].rows,
            est_cost: n.est_cost,
            work: w,
            share: truths[id.index()].share,
            dop: truths[id.index()].dop,
            stage: stages.node_stage[id.index()],
        });
    }
    let stage_reports = stages
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| StageReport {
            stage: i,
            elapsed: s.elapsed,
            dop: s.dop,
            deps: s.deps.clone(),
        })
        .collect();
    ExecutionTrace {
        nodes,
        stages: stage_reports,
        metrics: RunMetrics {
            runtime,
            cpu_time: cpu,
            io_time: io,
            memory: mem,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::execute_deterministic;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::DomainId;
    use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
    use scope_ir::{PlanGraph, TrueCatalog};
    use scope_optimizer::{compile, RuleConfig};

    fn compiled_job() -> (PhysPlan, TrueCatalog) {
        let mut cat = TrueCatalog::new();
        let k0 = cat.add_column(50_000, 0.3, DomainId(0));
        let a = cat.add_column(200, 0.0, DomainId(1));
        let k1 = cat.add_column(50_000, 0.0, DomainId(0));
        let b = cat.add_column(1_000, 0.0, DomainId(2));
        // A predicate whose truth diverges sharply from the Eq heuristic.
        let p = cat.add_pred(0.3, None);
        cat.add_table(50_000_000, 120, 11, vec![k0, a]);
        cat.add_table(800_000, 80, 22, vec![k1, b]);
        let mut g = PlanGraph::new();
        let s0 = g.add_unchecked(
            LogicalOp::Get {
                table: scope_ir::ids::TableId(0),
            },
            vec![],
        );
        let f = g.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate::atom(PredAtom {
                    col: a,
                    op: CmpOp::Eq,
                    literal: Literal::Int(1),
                    pred: p,
                }),
            },
            vec![s0],
        );
        let s1 = g.add_unchecked(
            LogicalOp::Get {
                table: scope_ir::ids::TableId(1),
            },
            vec![],
        );
        let j = g.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(k0, k1)],
            },
            vec![f, s1],
        );
        let agg = g.add_unchecked(
            LogicalOp::GroupBy {
                keys: vec![b],
                aggs: vec![AggFunc::Count],
                partial: false,
            },
            vec![j],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
        g.set_root(o);
        let obs = cat.observe();
        let compiled = compile(&g, &obs, &RuleConfig::default_config()).unwrap();
        (compiled.plan, cat)
    }

    #[test]
    fn trace_metrics_match_execution() {
        let (plan, cat) = compiled_job();
        let cluster = ClusterConfig::noiseless();
        let trace = explain(&plan, &cat, &cluster);
        let direct = execute_deterministic(&plan, &cat, &cluster);
        assert!((trace.metrics.runtime - direct.runtime).abs() < 1e-9);
        assert!((trace.metrics.cpu_time - direct.cpu_time).abs() < 1e-9);
        assert!((trace.metrics.io_time - direct.io_time).abs() < 1e-9);
        assert_eq!(trace.nodes.len(), plan.reachable().len());
    }

    #[test]
    fn worst_estimates_surface_the_planted_misestimate() {
        let (plan, cat) = compiled_job();
        let trace = explain(&plan, &cat, &ClusterConfig::noiseless());
        let worst = trace.worst_estimates(3);
        // The Eq-heuristic vs 0.3-truth gap is ~77x and must rank first or
        // second (the join inherits it).
        assert!(worst[0].q_error() > 20.0, "q-error {}", worst[0].q_error());
        // Sorted descending.
        assert!(worst[0].q_error() >= worst[1].q_error());
    }

    #[test]
    fn hottest_nodes_and_render() {
        let (plan, cat) = compiled_job();
        let trace = explain(&plan, &cat, &ClusterConfig::noiseless());
        let hottest = trace.hottest_nodes(2);
        assert!(hottest[0].work.elapsed >= hottest[1].work.elapsed);
        let text = trace.render();
        assert!(text.contains("est rows"));
        assert!(text.contains("runtime"));
        assert!(text.lines().count() >= trace.nodes.len() + 2);
    }

    #[test]
    fn rankings_tolerate_nan_rows() {
        let (plan, cat) = compiled_job();
        let mut trace = explain(&plan, &cat, &ClusterConfig::noiseless());
        // A corrupted row: NaN elapsed poisons the hot-node ranking key.
        trace.nodes[0].work.elapsed = f64::NAN;
        let n = trace.nodes.len();
        let hottest = trace.hottest_nodes(n);
        assert_eq!(hottest.len(), n);
        // The poisoned row sinks to the bottom; the top stays finite and
        // descending.
        assert!(hottest[n - 1].work.elapsed.is_nan());
        assert!(hottest[0].work.elapsed.is_finite());
        for w in hottest[..n - 1].windows(2) {
            assert!(w[0].work.elapsed >= w[1].work.elapsed);
        }
        // worst_estimates stays total even with the corrupted row present.
        let worst = trace.worst_estimates(n);
        assert_eq!(worst.len(), n);
        for w in worst.windows(2) {
            assert!(w[0].q_error() >= w[1].q_error());
        }
    }

    #[test]
    fn stage_assignment_is_consistent() {
        let (plan, cat) = compiled_job();
        let trace = explain(&plan, &cat, &ClusterConfig::noiseless());
        for r in &trace.nodes {
            assert!(r.stage < trace.stages.len());
        }
        // At least two stages (there is a join with exchanges).
        assert!(trace.stages.len() >= 2);
    }
}
