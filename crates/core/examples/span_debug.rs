//! Developer tool: print the full-configuration signature, winning plan,
//! and Algorithm-1 span of a reference join-aggregate job.
//!
//! Run: `cargo run -p steer-core --release --example span_debug`

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::{compile, RuleCatalog, RuleConfig};
use steer_core::approximate_span;

fn main() {
    let mut cat = TrueCatalog::new();
    let k0 = cat.add_column(50_000, 0.0, DomainId(0));
    let a = cat.add_column(200, 0.0, DomainId(1));
    let k1 = cat.add_column(50_000, 0.0, DomainId(0));
    let b = cat.add_column(1_000, 0.0, DomainId(2));
    cat.add_table(2_000_000, 120, 11, vec![k0, a]);
    cat.add_table(800_000, 80, 22, vec![k1, b]);
    let mut g = PlanGraph::new();
    let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom::unknown(a, CmpOp::Eq, Literal::Int(7))),
        },
        vec![s0],
    );
    let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
    let j = g.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(k0, k1)],
        },
        vec![f, s1],
    );
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![b],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![j],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
    g.set_root(o);
    let obs = cat.observe();
    let catg = RuleCatalog::global();

    let full = RuleConfig::from_enabled(catg.non_required());
    let c = compile(&g, &obs, &full).unwrap();
    println!("full-config signature:");
    for id in c.signature.on_rules() {
        println!("  {} [{:?}]", catg.rule(id).name, catg.rule(id).category);
    }
    println!("plan:\n{}", c.plan.render());

    let span = approximate_span(&g, &obs);
    println!(
        "span ({} rules, {} iters, fail={}):",
        span.len(),
        span.iterations,
        span.hit_compile_failure
    );
    for id in span.rules.iter() {
        println!("  {} [{:?}]", catg.rule(id).name, catg.rule(id).category);
    }
}
