//! Bit-identity acceptance tests for the arena/interner compile path.
//!
//! `scope_optimizer::classic` is a byte-for-byte snapshot of the compile
//! path before the arena-memo rework. Every test here holds the live
//! (arena + interner + bitset-mask) path to that frozen oracle via
//! [`CompiledPlan::fingerprint`], which covers the rendered physical plan,
//! the estimated cost bits, the rule signature, memo shape, and task
//! counts — everything except wall-clock timing. Random jobs come from the
//! workload generator and random configurations from a seeded PRNG, so a
//! regression anywhere in the rework (dedup keys, rule iteration order,
//! winner selection, scratch reuse) shows up as a fingerprint mismatch
//! with a reproducible seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_ir::Job;
use scope_optimizer::classic::{compile_classic, compile_classic_with_budget};
use scope_optimizer::optimizer::{compile_with_scratch, CompileScratch};
use scope_optimizer::{
    compile, compile_with_budget, effective_config, CompileBudget, RuleCatalog, RuleConfig, RuleId,
    NUM_RULES,
};
use scope_workload::{Workload, WorkloadProfile};

fn jobs() -> Vec<Job> {
    Workload::generate(WorkloadProfile::workload_a(0.08)).day(0)
}

/// A randomized configuration: start from the default and disable a random
/// subset of non-required rules. Required rules cannot be disabled, so the
/// result is always a *valid* configuration — some of them still fail to
/// compile specific jobs (that is the point of the paper), and the test
/// then asserts both paths fail identically.
fn random_config(seed: u64) -> RuleConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let required = RuleCatalog::global().required();
    let mut config = RuleConfig::default_config();
    let n_disables = rng.gen_range(0..48usize);
    for _ in 0..n_disables {
        let rid = RuleId(rng.gen_range(0..NUM_RULES as u16));
        if !required.contains(rid) {
            config.disable(rid);
        }
    }
    config
}

/// Fingerprint-or-error for one job under one config on the live path.
fn live(job: &Job, config: &RuleConfig) -> Result<u64, String> {
    let obs = job.catalog.observe();
    compile(&job.plan, &obs, &effective_config(job, config))
        .map(|p| p.fingerprint())
        .map_err(|e| e.to_string())
}

/// Fingerprint-or-error for one job under one config on the frozen oracle.
fn oracle(job: &Job, config: &RuleConfig) -> Result<u64, String> {
    let obs = job.catalog.observe();
    compile_classic(&job.plan, &obs, &effective_config(job, config))
        .map(|p| p.fingerprint())
        .map_err(|e| e.to_string())
}

#[test]
fn arena_path_matches_classic_on_a_full_workload_day() {
    let jobs = jobs();
    assert!(jobs.len() > 50, "workload day should be non-trivial");
    let config = RuleConfig::default_config();
    let mut compiled = 0usize;
    for job in &jobs {
        assert_eq!(
            live(job, &config),
            oracle(job, &config),
            "fingerprint diverged on job {}",
            job.id
        );
        if live(job, &config).is_ok() {
            compiled += 1;
        }
    }
    assert!(
        compiled > 0,
        "vacuous: no job compiled under the default config"
    );
}

#[test]
fn arena_path_matches_classic_under_randomized_configs() {
    let jobs = jobs();
    let mut failures_seen = 0usize;
    for seed in 0..24u64 {
        let config = random_config(seed);
        // Sample a deterministic slice of jobs per config to keep runtime sane.
        for job in jobs.iter().skip((seed as usize * 7) % 11).step_by(17) {
            let l = live(job, &config);
            let o = oracle(job, &config);
            assert_eq!(l, o, "diverged: seed {seed}, job {}", job.id);
            if l.is_err() {
                failures_seen += 1;
            }
        }
    }
    // The configs above disable up to 47 rules; some compiles must fail,
    // and those failures must have matched the oracle too.
    assert!(
        failures_seen > 0,
        "vacuous: no config ever failed a compile"
    );
}

#[test]
fn tight_budgets_fail_identically() {
    let jobs = jobs();
    let config = RuleConfig::default_config();
    let budget = CompileBudget::with_max_tasks(40);
    let mut budget_errors = 0usize;
    for job in jobs.iter().take(40) {
        let obs = job.catalog.observe();
        let cfg = effective_config(job, &config);
        let l = compile_with_budget(&job.plan, &obs, &cfg, &budget)
            .map(|p| p.fingerprint())
            .map_err(|e| e.to_string());
        let o = compile_classic_with_budget(&job.plan, &obs, &cfg, &budget)
            .map(|p| p.fingerprint())
            .map_err(|e| e.to_string());
        assert_eq!(l, o, "budget behaviour diverged on job {}", job.id);
        if l.is_err() {
            budget_errors += 1;
        }
    }
    assert!(budget_errors > 0, "vacuous: the tight budget never fired");
}

#[test]
fn scratch_reuse_is_invisible_in_results() {
    // The thread-local scratch is a cache of capacity, never of values: a
    // compile through dirty reused scratch must equal a compile through
    // fresh scratch, job after job, in both orders.
    let jobs = jobs();
    let config = RuleConfig::default_config();
    let mut reused = CompileScratch::new();
    for job in jobs.iter().take(60) {
        let obs = job.catalog.observe();
        let cfg = effective_config(job, &config);
        let budget = CompileBudget::default();
        let with_reuse = compile_with_scratch(&job.plan, &obs, &cfg, &budget, &mut reused)
            .map(|p| p.fingerprint())
            .map_err(|e| e.to_string());
        let fresh =
            compile_with_scratch(&job.plan, &obs, &cfg, &budget, &mut CompileScratch::new())
                .map(|p| p.fingerprint())
                .map_err(|e| e.to_string());
        assert_eq!(
            with_reuse, fresh,
            "scratch reuse leaked into job {}",
            job.id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random (config seed, job index) pairs: the live path and the frozen
    /// oracle agree bit-exactly — same fingerprint on success, same error
    /// on failure.
    #[test]
    fn prop_arena_fingerprints_match_classic(seed in 0u64..10_000, pick in 0usize..10_000) {
        let jobs = jobs();
        let job = &jobs[pick % jobs.len()];
        let config = random_config(seed);
        prop_assert_eq!(live(job, &config), oracle(job, &config));
    }
}
