//! Property tests for the guardrail stack: over generated workloads and
//! *random* rule configurations, a guarded compile must always end in a
//! valid plan or a typed `CompileError` — never a panic, never an invariant
//! violation, and never a plan that computes a different result than the
//! default plan for the same job.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_ir::validate_logical;
use scope_optimizer::{
    compile_job, compile_job_guarded, validate_physical, CompileBudget, CompileError, RuleCatalog,
    RuleConfig,
};
use scope_workload::{Workload, WorkloadProfile};
use steer_core::guard::vet_candidate;

/// A uniformly random configuration: each non-required rule's state is
/// flipped with probability ~1/8. This roams far outside the span-guided
/// configurations the discovery pipeline would propose — exactly the kind
/// of input a buggy steering client could feed the compiler.
fn random_config(rng: &mut StdRng) -> RuleConfig {
    let mut config = RuleConfig::default_config();
    for id in RuleCatalog::global().non_required().iter() {
        if rng.gen_range(0u8..8) == 0 {
            if config.is_enabled(id) {
                config.disable(id);
            } else {
                config.enable(id);
            }
        }
    }
    config
}

fn small_workload() -> Workload {
    Workload::generate(WorkloadProfile::workload_a(0.02))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarded compilation of an arbitrary configuration either produces a
    /// plan that passes the physical validator *and* the differential
    /// fingerprint check, or a typed non-panic error.
    #[test]
    fn random_configs_never_panic_and_winners_pass_vetting(seed in any::<u64>()) {
        let w = small_workload();
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = w.day(0);
        let job = &jobs[rng.gen_range(0..jobs.len())];
        let default = compile_job(job, &RuleConfig::default_config()).unwrap();
        let config = random_config(&mut rng);
        match compile_job_guarded(job, &config, &CompileBudget::default()) {
            Ok(c) => {
                prop_assert!(validate_physical(&c.plan).is_empty(),
                    "steered plan violates physical invariants");
                prop_assert!(vet_candidate(&default, &c).is_ok(),
                    "steered plan failed vetting against the default");
            }
            Err(e) => {
                prop_assert!(!matches!(e, CompileError::Panicked { .. }),
                    "compile panicked: {e}");
            }
        }
    }

    /// The task budget is deterministic: recompiling with a budget equal to
    /// the observed task count succeeds with the identical plan, and any
    /// smaller budget fails with a typed `BudgetExhausted` — never a panic,
    /// never a truncated plan.
    #[test]
    fn task_budget_is_a_deterministic_cliff(seed in any::<u64>()) {
        let w = small_workload();
        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = w.day(0);
        let job = &jobs[rng.gen_range(0..jobs.len())];
        let config = random_config(&mut rng);
        let Ok(full) = compile_job_guarded(job, &config, &CompileBudget::UNLIMITED) else {
            return Ok(()); // config legitimately infeasible for this job
        };
        let exact = CompileBudget::with_max_tasks(full.stats.tasks);
        let again = compile_job_guarded(job, &config, &exact).unwrap();
        prop_assert_eq!(again.est_cost, full.est_cost);
        prop_assert_eq!(again.stats.tasks, full.stats.tasks);
        if full.stats.tasks > 0 {
            let short = CompileBudget::with_max_tasks(full.stats.tasks - 1);
            match compile_job_guarded(job, &config, &short) {
                Err(CompileError::BudgetExhausted { wall_clock, .. }) => {
                    prop_assert!(!wall_clock);
                }
                other => prop_assert!(false, "expected BudgetExhausted, got {:?}", other.map(|c| c.est_cost)),
            }
        }
    }

    /// Every plan the workload generator emits satisfies the logical
    /// invariants — the validator's baseline is clean, so anything it
    /// reports during steering is a real defect.
    #[test]
    fn generated_job_plans_are_logically_valid(seed in any::<u64>()) {
        let w = small_workload();
        let day = (seed % 3) as u32;
        for job in &w.day(day) {
            let obs = job.catalog.observe();
            let violations = validate_logical(&job.plan, &obs);
            prop_assert!(violations.is_empty(), "job {:?}: {:?}", job.id, violations);
        }
    }
}
