//! End-to-end acceptance tests for the flighting subsystem: rollback
//! determinism across worker counts, crash-safe recovery of real serving
//! history, and the probation path out of quarantine.
//!
//! These tests drive the public API only. Discovery is replicated from the
//! in-crate test helper: whether a given RNG seed surfaces winners on the
//! tiny test workload is statistical, so we scan a few (A/B seed, search
//! seed) pairs and additionally require the winning group to recur on the
//! serving days the scenario needs.

use rand::rngs::StdRng;
use rand::SeedableRng;

use scope_exec::{plan_fingerprint, ABTester, CrashPlan, FaultProfile, RetryPolicy};
use scope_optimizer::{
    compile_job, compile_job_guarded, effective_config, CompileBudget, RuleConfig,
};
use scope_workload::{Workload, WorkloadProfile};
use steer_core::{
    winning_configs, FlightConfig, FlightController, FlightStage, GroupConfig, HintStatus,
    Pipeline, PipelineParams,
};

const SERVE_DAYS: u32 = 6;

struct Discovered {
    workload: Workload,
    ab_seed: u64,
    winners: Vec<GroupConfig>,
}

/// How many of `jobs` compile to `group` under the default configuration.
fn matching_jobs(workload: &Workload, day: u32, group: &str) -> usize {
    workload
        .day(day)
        .iter()
        .filter(|job| {
            compile_job(job, &RuleConfig::default_config())
                .is_ok_and(|c| c.signature.to_bit_string() == group)
        })
        .count()
}

/// Scan (A/B seed, search seed) pairs until discovery over day 0 of a small
/// Workload A yields a winner whose group also recurs on days 1 and 2 —
/// the flighting scenarios need traffic to canary against.
fn discover(n_threads: usize) -> Discovered {
    for ab_seed in [11u64, 5, 7, 13] {
        let ab = ABTester::new(ab_seed);
        let pipeline = Pipeline::new(
            ab.clone(),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                n_threads,
                ..PipelineParams::default()
            },
        );
        for seed in 1..=6u64 {
            let workload = Workload::generate(WorkloadProfile::workload_a(0.08));
            let mut rng = StdRng::seed_from_u64(seed);
            let report = pipeline.discover(&workload.day(0), &mut rng);
            let winners = winning_configs(&report.outcomes, 5.0);
            let recurs = winners.iter().any(|w| {
                let key = w.group.to_bit_string();
                matching_jobs(&workload, 1, &key) >= 1 && matching_jobs(&workload, 2, &key) >= 1
            });
            if recurs {
                return Discovered {
                    workload,
                    ab_seed,
                    winners,
                };
            }
        }
    }
    panic!("no (ab, search) seed pair produced a recurring winner");
}

/// The winner whose group recurs on days 1 and 2 (guaranteed by
/// [`discover`]'s acceptance condition).
fn recurring_winner(d: &Discovered) -> GroupConfig {
    d.winners
        .iter()
        .find(|w| {
            let key = w.group.to_bit_string();
            matching_jobs(&d.workload, 1, &key) >= 1 && matching_jobs(&d.workload, 2, &key) >= 1
        })
        .expect("discover() guarantees a recurring winner")
        .clone()
}

/// Fingerprints of every plan the hint would steer the victim group's jobs
/// onto over the serving window — the targets for a planted regression.
fn steered_fingerprints(workload: &Workload, victim: &GroupConfig) -> Vec<(u64, f64)> {
    let key = victim.group.to_bit_string();
    let mut fps = Vec::new();
    for day in 1..=SERVE_DAYS {
        for job in &workload.day(day) {
            let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                continue;
            };
            if default.signature.to_bit_string() != key {
                continue;
            }
            if let Ok(steered) = compile_job_guarded(job, &victim.config, &CompileBudget::default())
            {
                // Only plans that actually differ from the default regress:
                // if steered == default the shadow baseline is slowed too
                // and the comparison washes out.
                // 2× on the steered plan nets a large regression even
                // after the hint's genuine improvement is subtracted.
                let fp = plan_fingerprint(&steered.plan);
                if fp != plan_fingerprint(&default.plan) && !fps.iter().any(|&(f, _)| f == fp) {
                    fps.push((fp, 2.0));
                }
            }
            // Keep the static-gate view consistent with serve_day.
            let _ = effective_config(job, &victim.config);
        }
    }
    fps
}

struct PipelineRun {
    rollback_day: Option<u32>,
    snapshot: String,
    journal: String,
}

/// Drive the day-by-day flighting pipeline: serve, background-revalidate,
/// advance. Returns the day the victim rolled back (if it did) plus the
/// final durable state.
fn run_pipeline(
    d: &Discovered,
    ab: &ABTester,
    config: FlightConfig,
    crash: Option<CrashPlan>,
) -> PipelineRun {
    let mut c = FlightController::new(config);
    c.ingest(&d.winners, 0);
    if let Some(plan) = crash {
        c.arm_crash(plan);
    }
    c.advance(0);
    let policy = RetryPolicy::no_retries();
    let mut rollback_day = None;
    for day in 1..=SERVE_DAYS {
        let jobs = d.workload.day(day);
        c.serve_day(&jobs, ab, &policy, day);
        c.revalidate_background(&jobs, ab, day);
        let report = c.advance(day);
        if rollback_day.is_none() && !report.rollbacks.is_empty() {
            rollback_day = Some(day);
        }
    }
    PipelineRun {
        rollback_day,
        snapshot: c.snapshot_text(),
        journal: c.journal_text(),
    }
}

#[test]
fn rollback_is_deterministic_across_worker_counts() {
    let serial = discover(1);
    let parallel = discover(4);
    // Parallel discovery is bit-identical to serial, so both runs flight
    // the same winners.
    assert_eq!(
        format!("{:?}", serial.winners),
        format!("{:?}", parallel.winners)
    );
    assert_eq!(serial.ab_seed, parallel.ab_seed);

    let victim = recurring_winner(&serial);
    let faults = FaultProfile::with_slowdown_plans(steered_fingerprints(&serial.workload, &victim));
    assert!(!faults.is_none(), "victim must have distinct steered plans");
    // Wide canary + short hysteresis so the planted regression is observed
    // and tripped well inside the serving window.
    let config = FlightConfig {
        canary_pct: 80,
        ramp_pcts: vec![90],
        n_strikes: 2,
        ..FlightConfig::default()
    };

    let runs: Vec<PipelineRun> = [&serial, &parallel]
        .iter()
        .map(|d| {
            let ab = ABTester::new(d.ab_seed).with_faults(faults.clone());
            run_pipeline(d, &ab, config.clone(), None)
        })
        .collect();
    let day = runs[0].rollback_day.expect("planted regression rolls back");
    assert_eq!(runs[1].rollback_day, Some(day), "rollback day diverged");
    assert_eq!(
        runs[0].snapshot, runs[1].snapshot,
        "final durable state diverged across worker counts"
    );
    let key = victim.group.to_bit_string();
    assert!(
        runs[0].snapshot.contains(&format!("rolledback:{day}")),
        "victim {key} should be rolled back in the snapshot"
    );
}

#[test]
fn crash_recovery_reconstructs_serving_history_bit_identically() {
    let d = discover(1);
    let ab = ABTester::new(d.ab_seed);
    let healthy = run_pipeline(&d, &ab, FlightConfig::default(), None);

    // Recovery from the full journal reproduces the live state exactly.
    let (rec, report) = FlightController::recover(None, &healthy.journal, FlightConfig::default())
        .expect("healthy journal recovers");
    assert_eq!(report.discarded_lines, 0);
    assert_eq!(rec.snapshot_text(), healthy.snapshot);

    // A snapshot plus the journal replays only the suffix, to the same
    // state: events below the snapshot's sequence watermark are skipped.
    let (from_snap, snap_report) = FlightController::recover(
        Some(&healthy.snapshot),
        &healthy.journal,
        FlightConfig::default(),
    )
    .expect("snapshot + journal recovers");
    assert_eq!(snap_report.replayed_events, 0);
    assert_eq!(from_snap.snapshot_text(), healthy.snapshot);

    // A crash mid-run tears one journal write; recovery truncates to the
    // durable prefix and equals a replay of that prefix of the healthy
    // journal — the torn write never happened, durably.
    let crashed = run_pipeline(
        &d,
        &ab,
        FlightConfig::default(),
        Some(CrashPlan::after_ops(5, 7)),
    );
    // Pre-crash installs (one per ingested winner) plus 5 durable writes
    // plus the single torn line.
    let surviving_lines = crashed.journal.lines().count();
    assert!(surviving_lines > 6);
    let durable = surviving_lines - 1;
    let (rec_crash, crash_report) =
        FlightController::recover(None, &crashed.journal, FlightConfig::default())
            .expect("torn journal recovers");
    assert_eq!(crash_report.discarded_lines, 1);
    assert_eq!(crash_report.replayed_events, durable);
    let prefix = healthy
        .journal
        .lines()
        .take(durable)
        .collect::<Vec<_>>()
        .join("\n");
    let (rec_prefix, _) =
        FlightController::recover(None, &prefix, FlightConfig::default()).expect("prefix recovers");
    assert_eq!(rec_crash.snapshot_text(), rec_prefix.snapshot_text());
    assert_eq!(rec_crash.store, rec_prefix.store);
}

#[test]
fn quarantined_hint_recovers_through_probation() {
    let d = discover(1);
    let victim = recurring_winner(&d);
    let key = victim.group.to_bit_string();
    let ab = ABTester::new(d.ab_seed);
    let policy = RetryPolicy::no_retries();

    let mut c = FlightController::new(FlightConfig::default());
    c.ingest_deployed(&[victim], 0);
    assert_eq!(c.flight(&key).unwrap().stage, FlightStage::Deployed);

    // A transient environment fault: the compile budget collapses, so the
    // first steered compile dies fatally and quarantines the hint.
    c.store.compile_budget = CompileBudget::with_max_tasks(1);
    c.serve_day(&d.workload.day(1), &ab, &policy, 1);
    assert_eq!(c.store.hint(&key).unwrap().status, HintStatus::Quarantined);

    // The fault clears. Background sweeps now probe the quarantined hint;
    // after `probation_clean_required` consecutive clean probes it re-enters
    // the rollout at Canary rather than staying dead forever.
    c.store.compile_budget = CompileBudget::default();
    let required = c.config.probation_clean_required;
    let mut restored_on = None;
    for day in 2..=(2 + 2 * required) {
        let report = c.revalidate_background(&d.workload.day(day), &ab, day);
        assert!(
            report.probed.contains(&key) || report.absent > 0,
            "day {day}: quarantined hint must be probed when its group recurs"
        );
        if report.restored.contains(&key) {
            restored_on = Some(day);
            break;
        }
    }
    let day = restored_on.expect("hint never released from probation");
    assert!(
        day >= 2 + required - 1,
        "released before {required} clean probes"
    );
    assert_eq!(c.store.hint(&key).unwrap().status, HintStatus::Active);
    assert_eq!(c.flight(&key).unwrap().stage, FlightStage::Canary);
}
