//! Determinism acceptance tests for the parallel discovery scheduler: the
//! same caller seed must produce the same `DiscoveryReport` at any worker
//! count and any compile-cache size, because per-job RNGs are split from
//! one seed (`seed ⊕ job.id`), results are collected in item order, and a
//! cached compile is bit-identical to a fresh one.

use rand::rngs::StdRng;
use rand::SeedableRng;
use scope_exec::ABTester;
use scope_workload::{Workload, WorkloadProfile};
use steer_core::{DiscoveryReport, Pipeline, PipelineParams};

fn params() -> PipelineParams {
    PipelineParams {
        m_candidates: 120,
        execute_top_k: 5,
        sample_frac: 1.0,
        ..PipelineParams::default()
    }
}

fn run(n_threads: usize, cache_capacity: usize, seed: u64) -> DiscoveryReport {
    let w = Workload::generate(WorkloadProfile::workload_a(0.06));
    let jobs = w.day(0);
    let p = Pipeline::new(
        ABTester::new(11),
        PipelineParams {
            n_threads,
            cache_capacity,
            ..params()
        },
    );
    let mut rng = StdRng::seed_from_u64(seed);
    p.discover(&jobs, &mut rng)
}

/// Everything result-bearing in a report, rendered bit-exactly. Timings and
/// cache stats are deliberately excluded: they are the only fields allowed
/// to vary across worker counts and cache sizes.
fn result_fingerprint(r: &DiscoveryReport) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}|{:?}",
        r.outcomes,
        r.not_selected,
        r.out_of_window,
        r.failed_defaults,
        r.failed_candidates,
        r.duplicate_plans,
        r.vetting,
    )
}

#[test]
fn parallel_discovery_is_bit_identical_to_serial() {
    let serial = result_fingerprint(&run(1, 4096, 42));
    for n in [2, 4, 7] {
        assert_eq!(
            result_fingerprint(&run(n, 4096, 42)),
            serial,
            "report diverged at {n} workers"
        );
    }
}

#[test]
fn cache_size_cannot_change_results() {
    // Capacity 0 disables the cache entirely; 8 forces heavy eviction
    // churn; 4096 holds everything. All three must agree bit-exactly.
    let uncached = result_fingerprint(&run(4, 0, 7));
    assert_eq!(result_fingerprint(&run(4, 8, 7)), uncached);
    assert_eq!(result_fingerprint(&run(4, 4096, 7)), uncached);
}

#[test]
fn different_seeds_differ() {
    // Sanity for the fingerprint itself: the determinism assertions above
    // would pass vacuously if the fingerprint ignored the interesting state.
    assert_ne!(
        result_fingerprint(&run(4, 4096, 42)),
        result_fingerprint(&run(4, 4096, 43))
    );
}

#[test]
fn discovery_reports_cache_activity_and_timings() {
    let r = run(4, 4096, 42);
    assert!(!r.outcomes.is_empty());
    // Algorithm 1's pinning recovery and repeated default compiles
    // guarantee hits on any real workload day.
    assert!(r.cache.hits > 0, "expected cache hits, got {:?}", r.cache);
    assert!(r.cache.misses > 0);
    assert!(r.timings.total_s > 0.0);
    assert!(r.timings.default_runs_s > 0.0);
    assert!(r.timings.analyze_s > 0.0);
    assert!(r.timings.total_s >= r.timings.default_runs_s);
}

#[test]
fn replaying_a_day_on_a_warm_cache_is_identical_and_mostly_hits() {
    let w = Workload::generate(WorkloadProfile::workload_a(0.06));
    let jobs = w.day(0);
    let p = Pipeline::new(ABTester::new(11), params());
    let mut rng = StdRng::seed_from_u64(1);
    let cold = p.discover(&jobs, &mut rng);
    // Replay the day from the same seed on the now-warm cache: every
    // successful compile of the cold run (defaults, span probes, candidate
    // recompiles) is served from cache — only failing compiles, which are
    // never cached, re-run. Results must be bit-identical regardless.
    let mut rng = StdRng::seed_from_u64(1);
    let warm = p.discover(&jobs, &mut rng);
    assert_eq!(result_fingerprint(&warm), result_fingerprint(&cold));
    assert!(
        warm.cache.hit_rate() > 10.0 * cold.cache.hit_rate().max(1e-9),
        "warm {:?} should dwarf cold {:?}",
        warm.cache,
        cold.cache
    );
    assert_eq!(warm.cache.insertions, 0, "warm run must insert nothing new");
}
