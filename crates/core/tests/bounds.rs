//! Acceptance tests for branch-and-bound implementation pruning
//! (`CompileBudget::branch_and_bound`): across a workload day and random
//! rule configurations, the pruned search must pick the bit-identical
//! final plan, cost, and rule signature as the exhaustive search — the
//! incumbent-vs-child-winner-sum comparison can only skip alternatives
//! that lose the strict `<` winner comparison anyway — while charging
//! measurably fewer optimizer tasks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_ir::Job;
use scope_optimizer::{
    compile_job_with_budget, CompileBudget, RuleConfig, RuleId, RuleSet, NUM_RULES,
};
use scope_workload::{Workload, WorkloadProfile};

fn jobs() -> Vec<Job> {
    Workload::generate(WorkloadProfile::workload_a(0.06)).day(0)
}

/// A random config: every non-required rule kept with probability `keep`.
fn random_config(seed: u64, keep: f64) -> RuleConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enabled = RuleSet::EMPTY;
    for id in 0..NUM_RULES as u16 {
        if rng.gen_bool(keep) {
            enabled.insert(RuleId(id));
        }
    }
    RuleConfig::normalized(enabled).0
}

#[test]
fn branch_and_bound_picks_identical_plans_with_fewer_tasks() {
    let jobs = jobs();
    let exhaustive = CompileBudget::UNLIMITED;
    let pruned = CompileBudget::UNLIMITED.with_branch_and_bound();
    let mut tasks_exhaustive = 0u64;
    let mut tasks_pruned = 0u64;
    let mut compared = 0usize;
    for (i, job) in jobs.iter().enumerate() {
        // The default config plus a few random configs per job: pruning
        // must be invisible across the whole configuration space, not just
        // the default's.
        let mut configs = vec![RuleConfig::default_config()];
        for s in 0..3u64 {
            configs.push(random_config(i as u64 * 31 + s, 0.7 + 0.08 * s as f64));
        }
        for config in &configs {
            let off = compile_job_with_budget(job, config, &exhaustive);
            let on = compile_job_with_budget(job, config, &pruned);
            match (off, on) {
                (Ok(a), Ok(b)) => {
                    // Identity is on the observable outcome: the physical
                    // plan, its cost bits, and the rule signature — not on
                    // `fingerprint()`, which hashes the task count the
                    // pruning exists to change.
                    assert_eq!(
                        format!("{:?}", a.plan),
                        format!("{:?}", b.plan),
                        "job {} diverged under branch-and-bound",
                        job.id.0
                    );
                    assert_eq!(a.est_cost.to_bits(), b.est_cost.to_bits());
                    assert_eq!(a.signature, b.signature);
                    assert!(
                        b.stats.tasks <= a.stats.tasks,
                        "pruning increased tasks on job {}",
                        job.id.0
                    );
                    tasks_exhaustive += a.stats.tasks;
                    tasks_pruned += b.stats.tasks;
                    compared += 1;
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "error changed on job {}", job.id.0),
                (a, b) => panic!(
                    "branch-and-bound changed compilability on job {}: {:?} vs {:?}",
                    job.id.0,
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }
    assert!(compared > 0, "no compile pairs compared");
    assert!(
        tasks_pruned < tasks_exhaustive,
        "branch-and-bound never skipped a task ({tasks_pruned} vs {tasks_exhaustive})"
    );
}
