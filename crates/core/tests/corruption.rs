//! Acceptance tests for the guardrail stack against a *deliberately
//! corrupted optimizer*: a buggy transformation is emulated by injecting
//! bogus alternatives straight into the memo (exactly what a broken rewrite
//! rule would do), the corrupted search is driven through the real
//! `implement`/extract machinery, and the resulting plan must be caught by
//! the physical validator or the differential fingerprint check — never
//! silently executed.

use std::collections::BTreeSet;

use scope_ir::ops::LogicalOp;
use scope_optimizer::estimate::Estimator;
use scope_optimizer::memo::{GroupId, Memo};
use scope_optimizer::normalize::normalize;
use scope_optimizer::optimizer::effective_config;
use scope_optimizer::search::BudgetTracker;
use scope_optimizer::search::{explore, implement};
use scope_optimizer::transform::{referenced_cols, TransformCtx};
use scope_optimizer::{
    compile_job, validate_physical, CompileBudget, CompileStats, CompiledPlan, PhysPlan, RuleConfig,
};
use scope_workload::{Workload, WorkloadProfile};
use steer_core::guard::{vet_candidate, CandidateFilterStats, CandidateRejection};

/// Compile a job the way `compile` does, but hand the memo to `corrupt`
/// between exploration and implementation. Returns the (possibly corrupt)
/// winning plan as a `CompiledPlan` suitable for vetting.
fn compile_with_corruption(
    job: &scope_ir::Job,
    corrupt: impl FnOnce(&mut Memo, GroupId, &Estimator<'_>) -> bool,
) -> Option<CompiledPlan> {
    let config = effective_config(job, &RuleConfig::default_config());
    let obs = job.catalog.observe();
    let est = Estimator::new(&obs);
    let normalized = normalize(&job.plan);
    let mut referenced = BTreeSet::new();
    for (_, node) in normalized.plan.iter() {
        referenced_cols(&node.op, &mut referenced);
    }
    let ctx = TransformCtx {
        est: &est,
        referenced: &referenced,
    };
    let (mut memo, root) = Memo::from_plan(&normalized.plan, &est).unwrap();
    let mut tracker = BudgetTracker::new(&CompileBudget::UNLIMITED);
    explore(&mut memo, &config, &ctx, &mut tracker).unwrap();
    if !corrupt(&mut memo, root, &est) {
        return None; // nothing to corrupt in this job
    }
    let outcome = implement(&memo, root, &config, &obs, &mut tracker).ok()?;
    Some(CompiledPlan {
        est_cost: outcome.est_cost,
        est_cost_vec: outcome.est_cost_vec,
        plan: outcome.plan,
        signature: scope_optimizer::RuleSignature::default(),
        memo_groups: memo.num_groups(),
        memo_exprs: memo.num_exprs(),
        stats: CompileStats::default(),
    })
}

/// A broken rewrite that claims "the left input alone is equivalent to the
/// join": it copies the left child's canonical expression into the join's
/// group. The alternative is cheaper (it skips the join and the whole right
/// subtree), so the corrupted optimizer *prefers* it — and the extracted
/// plan silently computes the wrong result. The physical validator cannot
/// object (the plan is structurally fine); only the differential
/// fingerprint check can.
#[test]
fn join_bypass_corruption_is_caught_by_the_fingerprint_check() {
    let w = Workload::generate(WorkloadProfile::workload_a(0.08));
    let mut caught = 0usize;
    let mut stats = CandidateFilterStats::default();
    for job in &w.day(0) {
        let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
            continue;
        };
        let Some(corrupted) = compile_with_corruption(job, |memo, _root, est| {
            let join = (0..memo.num_exprs())
                .map(|i| scope_optimizer::memo::MExprId(i as u32))
                .find(|&id| matches!(memo.op(id), LogicalOp::Join { .. }));
            let Some(join_id) = join else {
                return false;
            };
            let join_group = memo.expr(join_id).group;
            let left = memo.children(join_id)[0];
            let bypass = memo.canonical(left);
            memo.insert_existing(bypass, Some(join_group), None, est);
            true
        }) else {
            continue;
        };
        // The corruption is structural sabotage of the *result*, not of the
        // plan shape: the validator must stay silent so that this test
        // proves the fingerprint check is the layer that catches it.
        assert!(validate_physical(&corrupted.plan).is_empty());
        match vet_candidate(&default, &corrupted) {
            Err(rejection @ CandidateRejection::Diverged { .. }) => {
                stats.note_rejection(&rejection);
                caught += 1;
            }
            Err(other) => panic!("expected Diverged, got {other}"),
            // A plan where the bypass lost the cost race is legitimately
            // identical to the default — not a guardrail failure.
            Ok(()) => {}
        }
    }
    assert!(caught > 0, "no join-bypass corruption was ever caught");
    assert_eq!(stats.diverged, caught);
    assert_eq!(stats.total(), caught);
}

/// A broken extraction that emits a join node with a dangling input (one
/// child edge lost). This corruption *is* structural, and the physical
/// validator must reject the plan before any fingerprint comparison runs.
#[test]
fn dropped_join_input_is_caught_by_the_validator() {
    let w = Workload::generate(WorkloadProfile::workload_a(0.08));
    let mut caught = 0usize;
    for job in &w.day(0) {
        let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
            continue;
        };
        // Rebuild the default plan, truncating the first join's children.
        let mut truncated = false;
        let mut plan = PhysPlan::new();
        for (_, node) in default.plan.iter() {
            let mut node = node.clone();
            if !truncated && node.children.len() == 2 {
                node.children.pop();
                truncated = true;
            }
            plan.add(node);
        }
        if !truncated {
            continue;
        }
        if let Some(root) = default.plan.root() {
            plan.set_root(root);
        }
        let corrupted = CompiledPlan {
            plan,
            est_cost: default.est_cost,
            est_cost_vec: default.est_cost_vec,
            signature: default.signature,
            memo_groups: default.memo_groups,
            memo_exprs: default.memo_exprs,
            stats: default.stats,
        };
        let err = vet_candidate(&default, &corrupted).unwrap_err();
        assert!(matches!(err, CandidateRejection::Invalid(_)));
        caught += 1;
    }
    assert!(caught > 0, "no two-input node found in any day-0 plan");
}
