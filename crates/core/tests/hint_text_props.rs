//! Property tests for the hint-text persistence format: `to_hint_text` /
//! `from_hint_text` must be a lossless round trip for *any* store — every
//! status variant, any rule-config delta, any finite float (runtimes are
//! serialized as IEEE-754 bit patterns, so even `-0.0` and subnormals must
//! survive), any validation history. The flighting snapshot embeds these
//! lines verbatim, so a single lossy field here would silently break the
//! bit-identical crash-recovery guarantee.

use proptest::collection;
use proptest::prelude::*;
use scope_optimizer::{RuleCatalog, RuleConfig};
use steer_core::{HintStatus, HintStore, StoredHint, ValidationRecord};

fn status_strategy() -> impl Strategy<Value = HintStatus> {
    (0u32..3).prop_map(|pick| match pick {
        0 => HintStatus::Active,
        1 => HintStatus::Suspended,
        _ => HintStatus::Quarantined,
    })
}

/// A finite f64 with full bit-pattern variety: the format stores the raw
/// bits, so sign, subnormals, and extreme exponents all matter. Non-finite
/// patterns (would break store equality via `NaN != NaN`) keep their
/// mantissa entropy but get a finite exponent.
fn finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            f64::from_bits(bits & !(0x7ff << 52) | (0x3fe << 52))
        }
    })
}

fn record_strategy() -> impl Strategy<Value = ValidationRecord> {
    (
        any::<u32>(),
        0usize..10_000,
        0usize..10_000,
        finite_f64(),
        0usize..10_000,
    )
        .prop_map(
            |(day, jobs, improved, mean_change_pct, failures)| ValidationRecord {
                day,
                jobs,
                improved,
                mean_change_pct,
                failures,
            },
        )
}

/// A config whose delta from the default toggles an arbitrary subset of the
/// non-required rules (required rules cannot move, so toggling them would
/// produce a config `from_hint_text` can never reconstruct).
fn config_strategy() -> impl Strategy<Value = RuleConfig> {
    collection::vec(any::<u32>(), 0..8).prop_map(|picks| {
        let ids: Vec<_> = RuleCatalog::global().non_required().iter().collect();
        let mut config = RuleConfig::default_config();
        for pick in picks {
            let id = ids[pick as usize % ids.len()];
            if config.is_enabled(id) {
                config.disable(id);
            } else {
                config.enable(id);
            }
        }
        config
    })
}

fn hint_strategy() -> impl Strategy<Value = StoredHint> {
    (
        (
            collection::vec(any::<bool>(), 1..12),
            config_strategy(),
            finite_f64(),
        ),
        (
            any::<u32>(),
            status_strategy(),
            collection::vec(record_strategy(), 0..5),
            any::<u32>(),
        ),
    )
        .prop_map(
            |((bits, config, base_change_pct), (discovered_day, status, validations, failed))| {
                StoredHint {
                    group: bits.iter().map(|&b| if b { '1' } else { '0' }).collect(),
                    config,
                    base_change_pct,
                    discovered_day,
                    status,
                    validations,
                    failed_validations: failed,
                }
            },
        )
}

/// Printable-ish text with tabs and newlines — the format's own structural
/// characters, where a lazy parser would slice past the end.
fn arbitrary_text() -> impl Strategy<Value = String> {
    collection::vec(0u32..98, 0..400).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                96 => '\t',
                97 => '\n',
                c => char::from(b' ' + c as u8),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hint_text_round_trip_is_lossless(hints in collection::vec(hint_strategy(), 0..6)) {
        let mut store = HintStore::new();
        for hint in hints {
            // Later duplicates of a group replace earlier ones, exactly as
            // repeated ingestion would.
            store.insert_hint(hint);
        }
        let text = store.to_hint_text();
        let parsed = HintStore::from_hint_text(&text).expect("own output must parse");
        prop_assert_eq!(&parsed, &store);
        prop_assert_eq!(parsed.to_hint_text(), text);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_text(text in arbitrary_text()) {
        // Corrupt or adversarial input must come back as a typed error (or
        // an empty store), never a panic.
        let _ = HintStore::from_hint_text(&text);
    }
}
