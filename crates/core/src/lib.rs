//! # steer-core
//!
//! The paper's contribution, on top of the `scope-*` substrates:
//!
//! * [`span`] — job-span approximation (Algorithm 1): which non-required
//!   rules can affect a job's final plan,
//! * [`search`] — randomized candidate-configuration generation under the
//!   category-independence assumption (§5.2),
//! * [`pipeline`] — the offline discovery pipeline (§6.1): job selection,
//!   recompilation, cheap-plan / low-cost-high-runtime heuristics, and
//!   A/B execution of the ten cheapest alternatives,
//! * [`groups`] — rule-signature job groups (Definition 6.2) and
//!   extrapolation of winning configurations to unseen jobs (§6.4),
//! * [`report`] — Table 3-style summaries,
//! * [`deploy`] — the §3.3 "plan hint" deployment story: a per-group hint
//!   store with §6.4's weekly re-validation and regression suspension,
//! * [`feedback`] — runtime feedback into the cost model: per-template
//!   observed/estimated correction factors, banded and smoothed, promoted
//!   only at day boundaries behind a vetting gate,
//! * [`flight`] — staged canary rollout over the hint store (QO-Advisor's
//!   flighting): deterministic traffic splits, N-strike/CUSUM rollback
//!   monitors, background revalidation with a probation path out of
//!   quarantine, and a checksummed journal + snapshot for crash recovery,
//! * [`serve`] — the failure-hardened online serving layer: a sharded
//!   copy-on-write serving table over the flight controller's state,
//!   fronted by per-request deadlines, a circuit breaker, admission
//!   control with load shedding, and a typed degraded-mode ladder —
//!   every failure path serves the default config, never an error,
//! * [`independence`] — §8 future work: empirical discovery of independent
//!   rule subsets that shrink the configuration search space,
//! * [`minimize`] — shrink winning configurations to the smallest
//!   plan-preserving delta before surfacing them as hints,
//! * [`par`] — the scoped-thread fan-out harness the pipeline parallelizes
//!   over (order-preserving, panic-isolated).
//!
//! `RuleDiff` (Definition 6.1) lives in `scope_optimizer::config` next to
//! the signature type it compares.

pub mod deploy;
pub mod feedback;
pub mod flight;
pub mod groups;
pub mod guard;
pub mod independence;
pub mod minimize;
pub mod par;
pub mod pipeline;
pub mod report;
pub mod search;
pub mod serve;
pub mod span;

#[cfg(test)]
pub(crate) mod testutil;

pub use deploy::{
    GuardrailRun, HintParseError, HintParseErrorKind, HintStatus, HintStore, RevalidationReport,
    StoredHint, ValidationRecord,
};
pub use feedback::{safe_ratio, CorrectionBand, CorrectionStore};
pub use flight::{
    AdvanceReport, BackgroundReport, FlightConfig, FlightController, FlightDayReport, FlightEvent,
    FlightStage, FlightState, GroupDayStats, RecoveryError, RecoveryReport,
};
pub use groups::{
    extrapolate, group_jobs, group_of, winning_configs, ExtrapolatedRun, GroupConfig,
};
pub use guard::{vet_candidate, CandidateFilterStats, CandidateRejection};
pub use independence::{discover_independent_groups, IndependentGroups};
pub use minimize::{minimize_config, MinimizedConfig};
pub use par::{available_threads, run_chunked, run_chunked_on};
pub use pipeline::{
    CandidateOutcome, DiscoveryReport, DiscoveryTimings, JobOutcome, Pipeline, PipelineParams,
    SelectionReason,
};
pub use report::{best_known_summary, improved_fraction, BestKnownSummary};
pub use search::{candidate_configs, candidate_configs_effective, DEFAULT_M};
pub use serve::{
    build_entries, decisions_fingerprint, BreakerState, CircuitBreaker, DayServeReport, Decision,
    DecisionReason, DegradedMode, Lookup, ServeRequest, ServiceConfig, ServingEntry, ServingTable,
    SteeringService,
};
pub use span::{approximate_span, approximate_span_cached, JobSpan};
