//! Rule-signature job groups (Definition 6.2) and extrapolation of winning
//! configurations to unseen jobs (§6.4).

use std::collections::HashMap;

use scope_exec::ABTester;
use scope_ir::ids::JobId;
use scope_ir::stats::pct_change;
use scope_ir::Job;
use scope_optimizer::{compile_job, RuleConfig, RuleSignature};

use crate::pipeline::JobOutcome;

/// A job group key: the default rule signature.
pub type GroupKey = RuleSignature;

/// Compute a job's group (compile under the default configuration).
pub fn group_of(job: &Job) -> Option<GroupKey> {
    compile_job(job, &RuleConfig::default_config())
        .ok()
        .map(|c| c.signature)
}

/// Partition jobs by their default rule signature.
pub fn group_jobs(jobs: &[Job]) -> HashMap<GroupKey, Vec<&Job>> {
    let mut map: HashMap<GroupKey, Vec<&Job>> = HashMap::new();
    for job in jobs {
        if let Some(g) = group_of(job) {
            map.entry(g).or_default().push(job);
        }
    }
    map
}

/// A configuration discovered on base jobs, keyed by their group.
#[derive(Clone, Debug)]
pub struct GroupConfig {
    pub group: GroupKey,
    pub config: RuleConfig,
    /// The runtime improvement observed on the base job (negative %).
    pub base_change_pct: f64,
    pub base_job: JobId,
}

/// Collect the winning configurations per group from pipeline outcomes:
/// for each improved base job, its best alternative configuration.
pub fn winning_configs(outcomes: &[JobOutcome], min_improvement_pct: f64) -> Vec<GroupConfig> {
    let mut out = Vec::new();
    for o in outcomes {
        let change = o.best_runtime_change_pct();
        if change >= -min_improvement_pct {
            continue;
        }
        if let Some(best) = o.best_by(scope_exec::Metric::Runtime) {
            out.push(GroupConfig {
                group: o.group,
                config: best.config.clone(),
                base_change_pct: change,
                base_job: o.job_id,
            });
        }
    }
    out
}

/// One extrapolated application of a group config to an unseen job.
#[derive(Clone, Debug)]
pub struct ExtrapolatedRun {
    pub job_id: JobId,
    pub day: u32,
    pub group: GroupKey,
    /// Runtime change vs the unseen job's own default plan (negative =
    /// improvement).
    pub change_pct: f64,
    pub default_runtime: f64,
    pub steered_runtime: f64,
}

/// Apply group configurations to unseen jobs across days (Figure 1, §6.4).
/// Jobs whose default signature matches no group config are skipped, as are
/// jobs whose steered compilation fails.
pub fn extrapolate(
    group_configs: &[GroupConfig],
    jobs: &[&Job],
    ab: &ABTester,
) -> Vec<ExtrapolatedRun> {
    // Several base jobs can share a group; apply the strongest winner
    // (mirroring `HintStore::install`) rather than an arbitrary one.
    let mut by_group: HashMap<&GroupKey, &GroupConfig> = HashMap::new();
    for g in group_configs {
        by_group
            .entry(&g.group)
            .and_modify(|cur| {
                if g.base_change_pct < cur.base_change_pct {
                    *cur = g;
                }
            })
            .or_insert(g);
    }
    let mut runs = Vec::new();
    for job in jobs {
        let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
            continue;
        };
        let Some(gc) = by_group.get(&default.signature) else {
            continue;
        };
        let Ok(steered) = compile_job(job, &gc.config) else {
            continue;
        };
        let default_m = ab.run(job, &default.plan, 0);
        let steered_m = ab.run(job, &steered.plan, 0);
        runs.push(ExtrapolatedRun {
            job_id: job.id,
            day: job.day,
            group: default.signature,
            change_pct: pct_change(default_m.runtime, steered_m.runtime),
            default_runtime: default_m.runtime,
            steered_runtime: steered_m.runtime,
        });
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_workload::{Workload, WorkloadProfile};

    #[test]
    fn groups_partition_jobs() {
        let w = Workload::generate(WorkloadProfile::workload_b(0.3));
        let jobs = w.day(0);
        let groups = group_jobs(&jobs);
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, jobs.len());
        assert!(groups.len() > 1);
        assert!(groups.len() < jobs.len(), "some group has several jobs");
    }

    #[test]
    fn same_template_jobs_share_group() {
        let w = Workload::generate(WorkloadProfile::workload_b(0.3));
        let d0 = w.day(0);
        let d1 = w.day(1);
        // Find a template present on both days.
        let j0 = &d0[0];
        let j1 = d1.iter().find(|j| j.template == j0.template);
        if let Some(j1) = j1 {
            assert_eq!(group_of(j0), group_of(j1));
        }
    }

    #[test]
    fn extrapolation_applies_winning_configs_across_days() {
        // Require a discovery whose winning groups recur on day 1 and whose
        // improvements are not pure A/B-noise flukes (a majority of the
        // same-group day-1 jobs must improve too).
        let d = crate::testutil::discover_winners_where(5.0, |d| {
            let d1 = d.workload.day(1);
            let refs: Vec<&Job> = d1.iter().collect();
            let runs = extrapolate(&d.winners, &refs, &d.ab);
            !runs.is_empty() && runs.iter().filter(|r| r.change_pct < 0.0).count() * 2 >= runs.len()
        });
        let winners = d.winners;
        assert!(!winners.is_empty(), "no winning configs discovered");

        let d1 = d.workload.day(1);
        let refs: Vec<&Job> = d1.iter().collect();
        let runs = extrapolate(&winners, &refs, &d.ab);
        assert!(!runs.is_empty(), "no same-group jobs on the next day");
        // Most extrapolated applications of the planted motifs improve.
        let improved = runs.iter().filter(|r| r.change_pct < 0.0).count();
        assert!(
            improved * 2 >= runs.len(),
            "improved {improved} of {}",
            runs.len()
        );
    }
}
