//! Deployment as "plan hints" (§3.3) with weekly re-validation (§6.4).
//!
//! The paper's deployment story: surface discovered rule configurations to
//! customers as hints keyed by job group, and mitigate drift ("this
//! behaviour could change in the future as the predicates and input
//! streams … evolve") by re-running the pipeline every week and dropping
//! configurations that start regressing. [`HintStore`] implements that
//! lifecycle: install winners, recommend per group, re-validate against a
//! fresh day, suspend regressors, and persist to a plain-text hint file.

use std::collections::HashMap;
use std::fmt;

use scope_exec::{ABTester, JobOutcome as ExecOutcome, RetryPolicy, RunMetrics};
use scope_ir::stats::{mean, pct_change};
use scope_ir::Job;
use scope_lint::{catalog_invalid, ConfigVerdict, JobLint};
use scope_optimizer::{
    compile_job, compile_job_guarded, effective_config, CompileBudget, RuleConfig, RuleId, RuleSet,
    NUM_RULES,
};

use crate::groups::GroupConfig;
use crate::guard::vet_candidate;

/// Lifecycle state of a stored hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintStatus {
    /// Recommended for the group.
    Active,
    /// Regressed during re-validation; no longer recommended.
    Suspended,
    /// Tripped a correctness or resource guardrail (compile panic, budget
    /// exhaustion, invalid plan, or result-fingerprint divergence). Unlike
    /// a performance regression, this is never re-tried automatically.
    Quarantined,
}

/// One record of applying a hint to a day's same-group jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationRecord {
    pub day: u32,
    pub jobs: usize,
    pub improved: usize,
    pub mean_change_pct: f64,
    /// Steered validation runs that failed or timed out this day. These
    /// are first-class evidence against the hint, not missing data.
    pub failures: usize,
}

/// A stored hint for one job group.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredHint {
    /// The group key (default-signature bit string).
    pub group: String,
    pub config: RuleConfig,
    /// Improvement observed on the base job at discovery time.
    pub base_change_pct: f64,
    pub discovered_day: u32,
    pub status: HintStatus,
    pub validations: Vec<ValidationRecord>,
    /// Cumulative failed/timed-out steered validation runs across all
    /// re-validation sweeps.
    pub failed_validations: u32,
}

/// Outcome of a re-validation sweep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RevalidationReport {
    pub groups_checked: usize,
    pub groups_suspended: usize,
    /// Hints quarantined this sweep because the steered compile panicked,
    /// blew the compile budget, produced an invalid plan, or produced a
    /// plan whose result fingerprint diverged from the default's.
    pub groups_quarantined: usize,
    pub jobs_executed: usize,
    pub mean_change_pct: f64,
    /// Steered validation runs that failed or timed out this sweep.
    pub failed_runs: usize,
    /// Job/hint pairs skipped without compiling because the static
    /// analyzer proved the hint cannot compile for that job (the dynamic
    /// path would have hit a benign, non-fatal compile error and skipped
    /// the pair anyway).
    pub statically_skipped: usize,
}

/// One production-style run through the deployment guardrail.
#[derive(Clone, Debug)]
pub struct GuardrailRun {
    /// Wall-clock/CPU/IO as the customer would observe them, including any
    /// wasted steered attempt that had to be re-run on the default plan.
    pub metrics: RunMetrics,
    /// Whether a stored hint was applied to this job.
    pub steered: bool,
    /// Whether the steered run died and the default plan was re-run.
    pub used_fallback: bool,
    /// Whether a stored hint existed for this job's group but was vetoed
    /// before execution — its compile panicked or ran over budget, or the
    /// plan it produced failed validation / fingerprint equivalence. The
    /// job ran on the default plan with nothing billed for the veto.
    pub vetoed: bool,
    /// How the run that produced the output (steered or fallback) ended.
    pub outcome: ExecOutcome,
}

/// The per-group hint store.
#[derive(Clone, Debug, PartialEq)]
pub struct HintStore {
    entries: HashMap<String, StoredHint>,
    /// Suspend a hint once this many of its steered validation runs have
    /// failed or timed out, regardless of the runtimes it produced when it
    /// did finish.
    pub max_validation_failures: u32,
    /// Budget applied to every steered compile performed by the store
    /// (re-validation and guardrail runs). Exhaustion quarantines the hint
    /// rather than blocking the job.
    pub compile_budget: CompileBudget,
}

impl Default for HintStore {
    fn default() -> HintStore {
        HintStore {
            entries: HashMap::new(),
            max_validation_failures: 3,
            compile_budget: CompileBudget::default(),
        }
    }
}

impl HintStore {
    pub fn new() -> HintStore {
        HintStore::default()
    }

    /// Install discovery winners (keeping, per group, the one with the
    /// largest base improvement). A winner whose configuration is
    /// plan-independently broken (see [`scope_lint::catalog_invalid`]; it
    /// can compile no job at all) is stored directly as `Quarantined` so it
    /// is never recommended — the static-analysis arm of the quarantine
    /// guardrail, applied at ingestion instead of first failure.
    pub fn install(&mut self, winners: &[GroupConfig], day: u32) {
        for w in winners {
            self.install_one(w, day);
        }
    }

    /// Install a single winner. Returns the stored hint when the winner
    /// was kept (it beat any incumbent for its group), `None` when a
    /// better incumbent survives.
    pub fn install_one(&mut self, w: &GroupConfig, day: u32) -> Option<&StoredHint> {
        let key = w.group.to_bit_string();
        let replace = self
            .entries
            .get(&key)
            .map(|e| w.base_change_pct < e.base_change_pct)
            .unwrap_or(true);
        if !replace {
            return None;
        }
        let status = if catalog_invalid(&w.config).is_empty() {
            HintStatus::Active
        } else {
            HintStatus::Quarantined
        };
        let hint = StoredHint {
            group: key.clone(),
            config: w.config.clone(),
            base_change_pct: w.base_change_pct,
            discovered_day: day,
            status,
            validations: Vec::new(),
            failed_validations: 0,
        };
        self.entries.insert(key.clone(), hint);
        self.entries.get(&key)
    }

    /// Insert a fully-specified hint verbatim (no best-per-group logic, no
    /// catalog vetting). This is persistence plumbing — journal replay and
    /// snapshot loading must reconstruct *exactly* what was recorded, not
    /// re-decide it.
    pub fn insert_hint(&mut self, hint: StoredHint) {
        self.entries.insert(hint.group.clone(), hint);
    }

    /// The stored hint for a group key (any status).
    pub fn hint(&self, group: &str) -> Option<&StoredHint> {
        self.entries.get(group)
    }

    /// Set the lifecycle status of a group's hint. Returns `false` when
    /// the group has no stored hint.
    pub fn set_status(&mut self, group: &str, status: HintStatus) -> bool {
        match self.entries.get_mut(group) {
            Some(e) => {
                e.status = status;
                true
            }
            None => false,
        }
    }

    /// Number of stored hints (any status).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active recommendation for a group, if any.
    pub fn recommend(&self, group: &scope_optimizer::RuleSignature) -> Option<&RuleConfig> {
        self.entries
            .get(&group.to_bit_string())
            .filter(|e| e.status == HintStatus::Active)
            .map(|e| &e.config)
    }

    /// Iterate stored hints.
    pub fn hints(&self) -> impl Iterator<Item = &StoredHint> {
        self.entries.values()
    }

    /// Re-validate every active hint against a fresh day's jobs: execute
    /// default vs steered for each same-group job, record the outcome, and
    /// suspend hints whose mean change exceeds `regression_threshold_pct`
    /// (e.g. `2.0` = suspend when jobs get >2 % slower on average).
    ///
    /// Failed or timed-out *steered* runs count as evidence against the
    /// hint: they accumulate in `failed_validations` and suspend it once
    /// they reach [`Self::max_validation_failures`], even if the runs that
    /// did finish looked fine. A failed *default* run says nothing about
    /// the hint (the cluster was having a bad day), so the pair is skipped.
    pub fn revalidate(
        &mut self,
        jobs: &[Job],
        ab: &ABTester,
        day: u32,
        regression_threshold_pct: f64,
    ) -> RevalidationReport {
        // Group the day's jobs by default signature once.
        let mut by_group: HashMap<String, Vec<&Job>> = HashMap::new();
        for job in jobs {
            if let Ok(compiled) = compile_job(job, &RuleConfig::default_config()) {
                by_group
                    .entry(compiled.signature.to_bit_string())
                    .or_default()
                    .push(job);
            }
        }

        let mut report = RevalidationReport::default();
        let mut all_changes = Vec::new();
        for entry in self.entries.values_mut() {
            if entry.status != HintStatus::Active {
                continue;
            }
            let Some(group_jobs) = by_group.get(&entry.group) else {
                continue; // group absent today; nothing to learn
            };
            report.groups_checked += 1;
            let mut changes = Vec::new();
            let mut failures = 0usize;
            let mut quarantine = false;
            for job in group_jobs {
                let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                    continue;
                };
                // Static gate: if the analyzer proves the (hint + customer
                // hints) config cannot compile this job, skip the pair with
                // zero compiles. The dynamic path below would have hit a
                // benign non-fatal compile error and `continue`d anyway.
                let effective = effective_config(job, &entry.config);
                if matches!(
                    JobLint::new(&job.plan).classify(&effective),
                    ConfigVerdict::Invalid { .. }
                ) {
                    report.statically_skipped += 1;
                    continue;
                }
                let steered = match compile_job_guarded(job, &entry.config, &self.compile_budget) {
                    Ok(s) => s,
                    // A panic or budget blow-out is a guardrail trip, not a
                    // benign "this config doesn't compile here".
                    Err(e) if e.is_fatal() => {
                        quarantine = true;
                        break;
                    }
                    Err(_) => continue,
                };
                if vet_candidate(&default, &steered).is_err() {
                    quarantine = true;
                    break;
                }
                let sm = ab.run_outcome(job, &steered.plan, 0);
                if !sm.outcome.is_success() {
                    failures += 1;
                    continue;
                }
                let dm = ab.run_outcome(job, &default.plan, 0);
                if !dm.outcome.is_success() {
                    continue; // no trustworthy baseline for this pair
                }
                changes.push(pct_change(dm.metrics.runtime, sm.metrics.runtime));
            }
            if quarantine {
                entry.status = HintStatus::Quarantined;
                report.groups_quarantined += 1;
                report.jobs_executed += changes.len() + failures;
                report.failed_runs += failures;
                all_changes.extend(changes);
                continue;
            }
            if changes.is_empty() && failures == 0 {
                continue;
            }
            report.jobs_executed += changes.len() + failures;
            report.failed_runs += failures;
            entry.failed_validations += failures as u32;
            let mean_change = if changes.is_empty() {
                0.0
            } else {
                mean(&changes)
            };
            entry.validations.push(ValidationRecord {
                day,
                jobs: changes.len() + failures,
                improved: changes.iter().filter(|&&c| c < 0.0).count(),
                mean_change_pct: mean_change,
                failures,
            });
            let regressed = !changes.is_empty() && mean_change > regression_threshold_pct;
            all_changes.extend(changes);
            if regressed || entry.failed_validations >= self.max_validation_failures {
                entry.status = HintStatus::Suspended;
                report.groups_suspended += 1;
            }
        }
        if !all_changes.is_empty() {
            report.mean_change_pct = mean(&all_changes);
        }
        report
    }

    /// Run one job the way a steered production cluster would (§3.3's
    /// guardrail): apply the stored hint for the job's group when there is
    /// one, and if the steered run fails or times out, fall back to the
    /// default plan — a steering mishap must never lose the job. The
    /// wasted steered attempt is billed to the reported metrics.
    pub fn run_with_guardrail(
        &self,
        job: &Job,
        ab: &ABTester,
        policy: &RetryPolicy,
    ) -> Option<GuardrailRun> {
        let default = compile_job(job, &RuleConfig::default_config()).ok()?;
        let mut vetoed = false;
        let steered_plan = self.recommend(&default.signature).and_then(|cfg| {
            // Static gate: a hint the analyzer proves cannot compile this
            // job is skipped without a compile attempt. Not a veto — the
            // dynamic path treats the resulting non-fatal compile error as
            // a benign "doesn't compile here" too (`vetoed` stays false).
            let effective = effective_config(job, cfg);
            if matches!(
                JobLint::new(&job.plan).classify(&effective),
                ConfigVerdict::Invalid { .. }
            ) {
                return None;
            }
            match compile_job_guarded(job, cfg, &self.compile_budget) {
                Ok(steered) => {
                    if vet_candidate(&default, &steered).is_ok() {
                        Some(steered)
                    } else {
                        vetoed = true;
                        None
                    }
                }
                Err(e) => {
                    vetoed = e.is_fatal();
                    None
                }
            }
        });

        let Some(steered) = steered_plan else {
            let run = ab.run_with_retry(job, &default.plan, 0, policy);
            return Some(GuardrailRun {
                metrics: run.metrics,
                steered: false,
                used_fallback: false,
                vetoed,
                outcome: run.outcome,
            });
        };

        let run = ab.run_with_retry(job, &steered.plan, 0, policy);
        if run.outcome.is_success() {
            return Some(GuardrailRun {
                metrics: run.metrics,
                steered: true,
                used_fallback: false,
                vetoed: false,
                outcome: run.outcome,
            });
        }
        let fallback = ab.run_with_retry(job, &default.plan, 0, policy);
        let metrics = RunMetrics {
            runtime: fallback.metrics.runtime + run.metrics.runtime,
            cpu_time: fallback.metrics.cpu_time + run.metrics.cpu_time,
            io_time: fallback.metrics.io_time + run.metrics.io_time,
            // Peaks don't add across the abandoned and fallback runs.
            memory: fallback.metrics.memory.max(run.metrics.memory),
        };
        Some(GuardrailRun {
            metrics,
            steered: true,
            used_fallback: true,
            vetoed: false,
            outcome: fallback.outcome,
        })
    }

    /// Serialize to the plain-text hint format customers would check in:
    /// one tab-separated line per group, sorted —
    ///
    /// ```text
    /// bits  status  -[ids]  +[ids]  base:<hex64>  day:<n>  failed:<n>  vals:[day:jobs:improved:<hex64>:failures;...]
    /// ```
    ///
    /// Rule ids are relative to the default config. Floats are serialized
    /// as their IEEE-754 bit pattern in hex, so
    /// [`Self::from_hint_text`] round-trips *bit-identically* — a
    /// requirement for crash-recovery equivalence checks, and immune to
    /// decimal-formatting drift.
    pub fn to_hint_text(&self) -> String {
        let mut lines: Vec<String> = self.entries.values().map(hint_line).collect();
        lines.sort();
        lines.join("\n")
    }

    /// Parse the format produced by [`Self::to_hint_text`].
    ///
    /// Strict: a malformed, truncated, or duplicated line is a typed
    /// [`HintParseError`] carrying its 1-based line number, never a
    /// silently skipped hint. A hint file drives what production jobs
    /// execute; parsing must not guess.
    pub fn from_hint_text(text: &str) -> Result<HintStore, HintParseError> {
        let mut store = HintStore::new();
        for (idx, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let hint = parse_hint_line(line).map_err(|kind| HintParseError {
                line: idx + 1,
                kind,
            })?;
            if store.entries.contains_key(&hint.group) {
                return Err(HintParseError {
                    line: idx + 1,
                    kind: HintParseErrorKind::DuplicateGroup(hint.group),
                });
            }
            store.entries.insert(hint.group.clone(), hint);
        }
        Ok(store)
    }
}

/// Field order of one hint line (also the names used in parse errors).
const HINT_FIELDS: [&str; 8] = [
    "group", "status", "disabled", "enabled", "base", "day", "failed", "vals",
];

/// Why a hint file failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HintParseErrorKind {
    /// The line ended before this field.
    MissingField(&'static str),
    /// The line carried more than the expected fields.
    TrailingFields(String),
    /// The status field was none of `active`/`suspended`/`quarantined`.
    UnknownStatus(String),
    /// A rule id was not a number or not below `NUM_RULES`.
    BadRuleId(String),
    /// A numeric field failed to parse.
    BadNumber { field: &'static str, value: String },
    /// A field had the wrong shape (bad prefix, bad brackets, non-binary
    /// group bits, malformed validation entry).
    Malformed { field: &'static str, value: String },
    /// Two lines claimed the same group.
    DuplicateGroup(String),
}

/// A typed parse failure: what went wrong and on which (1-based) line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HintParseError {
    pub line: usize,
    pub kind: HintParseErrorKind,
}

impl fmt::Display for HintParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hint line {}: ", self.line)?;
        match &self.kind {
            HintParseErrorKind::MissingField(name) => write!(f, "missing field `{name}`"),
            HintParseErrorKind::TrailingFields(rest) => {
                write!(f, "unexpected trailing fields `{rest}`")
            }
            HintParseErrorKind::UnknownStatus(s) => write!(f, "unknown status `{s}`"),
            HintParseErrorKind::BadRuleId(s) => {
                write!(f, "bad rule id `{s}` (want an integer < {NUM_RULES})")
            }
            HintParseErrorKind::BadNumber { field, value } => {
                write!(f, "bad number `{value}` in field `{field}`")
            }
            HintParseErrorKind::Malformed { field, value } => {
                write!(f, "malformed field `{field}`: `{value}`")
            }
            HintParseErrorKind::DuplicateGroup(g) => write!(f, "duplicate group `{g}`"),
        }
    }
}

impl std::error::Error for HintParseError {}

/// Human-readable status token (the hint-file vocabulary).
pub(crate) fn status_name(status: HintStatus) -> &'static str {
    match status {
        HintStatus::Active => "active",
        HintStatus::Suspended => "suspended",
        HintStatus::Quarantined => "quarantined",
    }
}

/// Inverse of [`status_name`].
pub(crate) fn status_from_name(name: &str) -> Option<HintStatus> {
    match name {
        "active" => Some(HintStatus::Active),
        "suspended" => Some(HintStatus::Suspended),
        "quarantined" => Some(HintStatus::Quarantined),
        _ => None,
    }
}

/// An `f64` as its IEEE-754 bit pattern, 16 hex digits. Lossless for
/// every value including NaN payloads and signed zero.
pub(crate) fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Inverse of [`f64_to_hex`].
pub(crate) fn f64_from_hex(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// Render a config as its delta from the default: `("-[ids]", "+[ids]")`.
pub(crate) fn config_delta_fields(config: &RuleConfig) -> (String, String) {
    let (disabled, enabled) = config.delta_from_default();
    let ids = |set: &RuleSet| {
        set.iter()
            .map(|id| id.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    (
        format!("-[{}]", ids(&disabled)),
        format!("+[{}]", ids(&enabled)),
    )
}

/// Rebuild a config from its delta fields. `Err` carries the offending
/// token (not a number, or an id outside the catalog).
pub(crate) fn config_from_delta_fields(minus: &str, plus: &str) -> Result<RuleConfig, String> {
    let mut config = RuleConfig::default_config();
    for id in parse_id_list(minus, '-')? {
        config.disable(RuleId(id));
    }
    for id in parse_id_list(plus, '+')? {
        config.enable(RuleId(id));
    }
    Ok(config)
}

fn parse_id_list(field: &str, sign: char) -> Result<Vec<u16>, String> {
    let inner = field
        .strip_prefix(sign)
        .and_then(|s| s.strip_prefix('['))
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| field.to_string())?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|v| {
            let id: u16 = v.parse().map_err(|_| v.to_string())?;
            if (id as usize) >= NUM_RULES {
                return Err(v.to_string());
            }
            Ok(id)
        })
        .collect()
}

/// Serialize one hint as a hint-file line (no newline).
fn hint_line(e: &StoredHint) -> String {
    let (minus, plus) = config_delta_fields(&e.config);
    let vals = e
        .validations
        .iter()
        .map(|v| {
            format!(
                "{}:{}:{}:{}:{}",
                v.day,
                v.jobs,
                v.improved,
                f64_to_hex(v.mean_change_pct),
                v.failures
            )
        })
        .collect::<Vec<_>>()
        .join(";");
    format!(
        "{}\t{}\t{}\t{}\tbase:{}\tday:{}\tfailed:{}\tvals:[{}]",
        e.group,
        status_name(e.status),
        minus,
        plus,
        f64_to_hex(e.base_change_pct),
        e.discovered_day,
        e.failed_validations,
        vals
    )
}

/// Parse one non-empty hint-file line.
fn parse_hint_line(line: &str) -> Result<StoredHint, HintParseErrorKind> {
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() < HINT_FIELDS.len() {
        return Err(HintParseErrorKind::MissingField(HINT_FIELDS[fields.len()]));
    }
    if fields.len() > HINT_FIELDS.len() {
        return Err(HintParseErrorKind::TrailingFields(
            fields[HINT_FIELDS.len()..].join("\t"),
        ));
    }
    let group = fields[0];
    if group.is_empty() || !group.bytes().all(|b| b == b'0' || b == b'1') {
        return Err(HintParseErrorKind::Malformed {
            field: "group",
            value: group.to_string(),
        });
    }
    let status = status_from_name(fields[1])
        .ok_or_else(|| HintParseErrorKind::UnknownStatus(fields[1].to_string()))?;
    let config =
        config_from_delta_fields(fields[2], fields[3]).map_err(HintParseErrorKind::BadRuleId)?;
    let base_change_pct = fields[4]
        .strip_prefix("base:")
        .and_then(f64_from_hex)
        .ok_or_else(|| HintParseErrorKind::BadNumber {
            field: "base",
            value: fields[4].to_string(),
        })?;
    let discovered_day: u32 = fields[5]
        .strip_prefix("day:")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HintParseErrorKind::BadNumber {
            field: "day",
            value: fields[5].to_string(),
        })?;
    let failed_validations: u32 = fields[6]
        .strip_prefix("failed:")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HintParseErrorKind::BadNumber {
            field: "failed",
            value: fields[6].to_string(),
        })?;
    let vals_inner = fields[7]
        .strip_prefix("vals:[")
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| HintParseErrorKind::Malformed {
            field: "vals",
            value: fields[7].to_string(),
        })?;
    let mut validations = Vec::new();
    if !vals_inner.is_empty() {
        for entry in vals_inner.split(';') {
            let parts: Vec<&str> = entry.split(':').collect();
            let parsed = (parts.len() == 5)
                .then(|| {
                    Some(ValidationRecord {
                        day: parts[0].parse().ok()?,
                        jobs: parts[1].parse().ok()?,
                        improved: parts[2].parse().ok()?,
                        mean_change_pct: f64_from_hex(parts[3])?,
                        failures: parts[4].parse().ok()?,
                    })
                })
                .flatten();
            match parsed {
                Some(v) => validations.push(v),
                None => {
                    return Err(HintParseErrorKind::Malformed {
                        field: "vals",
                        value: entry.to_string(),
                    })
                }
            }
        }
    }
    Ok(StoredHint {
        group: group.to_string(),
        config,
        base_change_pct,
        discovered_day,
        status,
        validations,
        failed_validations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_optimizer::{RuleCatalog, RuleSignature};
    use scope_workload::Workload;

    fn discovered_store() -> (HintStore, Workload, ABTester) {
        let d = crate::testutil::discover_winners(5.0);
        let mut store = HintStore::new();
        store.install(&d.winners, 0);
        (store, d.workload, d.ab)
    }

    #[test]
    fn install_and_recommend() {
        let (store, w, _) = discovered_store();
        assert!(!store.is_empty());
        // A recommendation resolves for some job of the next day.
        let d1 = w.day(1);
        let recommended = d1.iter().any(|job| {
            crate::groups::group_of(job)
                .and_then(|g| store.recommend(&g))
                .is_some()
        });
        assert!(recommended, "no next-day job matched a stored hint");
    }

    #[test]
    fn revalidation_records_and_suspends() {
        let (mut store, w, ab) = discovered_store();
        let before_active = store
            .hints()
            .filter(|h| h.status == HintStatus::Active)
            .count();
        let report = store.revalidate(&w.day(1), &ab, 1, 2.0);
        assert!(report.groups_checked > 0);
        assert!(report.jobs_executed > 0);
        // Every checked group gained a validation record.
        let validated = store.hints().filter(|h| !h.validations.is_empty()).count();
        assert_eq!(validated, report.groups_checked);
        assert!(report.groups_suspended <= before_active);
        // Suspended entries stop being recommended.
        for h in store.hints() {
            if h.status == HintStatus::Suspended {
                let sig = RuleSignature(RuleSet::from_bit_string(&h.group));
                assert!(store.recommend(&sig).is_none());
            }
        }
    }

    #[test]
    fn hint_text_round_trip() {
        let (mut store, w, ab) = discovered_store();
        // Accumulate validation history so the round trip covers it too.
        store.revalidate(&w.day(1), &ab, 1, 2.0);
        // Flip entries to the non-active states to exercise all three.
        let mut statuses = [HintStatus::Suspended, HintStatus::Quarantined]
            .into_iter()
            .cycle();
        for e in store.entries.values_mut().take(2) {
            e.status = statuses.next().unwrap();
        }
        let text = store.to_hint_text();
        let parsed = HintStore::from_hint_text(&text).expect("well-formed hint text");
        // The round trip is lossless, down to float bit patterns.
        assert_eq!(parsed, store);
        // And stable: re-serializing yields the same bytes.
        assert_eq!(parsed.to_hint_text(), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let (store, _, _) = discovered_store();
        let good = store.to_hint_text();
        let n_lines = good.lines().count();

        // A truncated final line: typed error naming the missing field.
        let truncated: String = good
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == n_lines - 1 {
                    l.split('\t').take(3).collect::<Vec<_>>().join("\t")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = HintStore::from_hint_text(&truncated).unwrap_err();
        assert_eq!(err.line, n_lines);
        assert_eq!(err.kind, HintParseErrorKind::MissingField("enabled"));

        // An unknown status on line 1.
        let bad_status = good.replacen(
            match store.hints().next().unwrap().status {
                HintStatus::Active => "active",
                HintStatus::Suspended => "suspended",
                HintStatus::Quarantined => "quarantined",
            },
            "enabled?!",
            1,
        );
        let err = HintStore::from_hint_text(&bad_status).unwrap_err();
        assert!(matches!(err.kind, HintParseErrorKind::UnknownStatus(_)));

        // Errors render with their line number.
        assert!(err.to_string().contains(&format!("line {}", err.line)));
    }

    #[test]
    fn parse_rejects_out_of_range_rule_ids_and_duplicates() {
        let line = |group: &str, minus: &str| {
            format!(
                "{group}\tactive\t-[{minus}]\t+[]\tbase:{}\tday:0\tfailed:0\tvals:[]",
                f64_to_hex(-10.0)
            )
        };
        // Rule id 256 is outside the catalog: the old parser silently
        // dropped it (and with it part of the hint's meaning).
        let err = HintStore::from_hint_text(&line("101", "256")).unwrap_err();
        assert_eq!(err.kind, HintParseErrorKind::BadRuleId("256".into()));
        // In-range parses, and the disable really lands (pick a rule that
        // is on by default but not required, so disabling it can stick).
        let id = RuleConfig::default_config()
            .enabled()
            .difference(RuleCatalog::global().required())
            .iter()
            .next()
            .expect("some default rule is optional");
        let minus = id.0.to_string();
        let store = HintStore::from_hint_text(&line("101", &minus)).unwrap();
        assert!(!store.hint("101").unwrap().config.is_enabled(id));

        let dup = format!("{}\n{}", line("101", &minus), line("101", &minus));
        let err = HintStore::from_hint_text(&dup).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, HintParseErrorKind::DuplicateGroup("101".into()));

        // Non-binary group bits are rejected, not stored as dead keys.
        let err = HintStore::from_hint_text(&line("1x1", &minus)).unwrap_err();
        assert!(matches!(
            err.kind,
            HintParseErrorKind::Malformed { field: "group", .. }
        ));
    }

    #[test]
    fn failed_validations_suspend_a_hint() {
        use scope_exec::FaultProfile;
        let (mut store, w, ab) = discovered_store();
        // Re-validate on a cluster where steered runs essentially always
        // die; a single failure is enough to suspend.
        store.max_validation_failures = 1;
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let faulty = ab.clone().with_faults(profile);
        let report = store.revalidate(&w.day(1), &faulty, 1, 2.0);
        assert!(report.failed_runs > 0, "steered runs should have failed");
        assert!(report.groups_suspended > 0);
        let suspended = store
            .hints()
            .filter(|h| h.status == HintStatus::Suspended)
            .count();
        assert_eq!(suspended, report.groups_suspended);
        // The failure evidence is recorded on the hint itself.
        assert!(store
            .hints()
            .any(|h| h.failed_validations > 0 && h.validations.iter().any(|v| v.failures > 0)));
    }

    #[test]
    fn guardrail_falls_back_to_default_when_steering_dies() {
        use scope_exec::{FaultProfile, RetryPolicy};
        let (store, w, ab) = discovered_store();
        let d1 = w.day(1);
        let policy = RetryPolicy::no_retries();

        // Fault-free: steered jobs run steered, nobody falls back.
        let mut steered_jobs = 0;
        for job in &d1 {
            let run = store.run_with_guardrail(job, &ab, &policy).unwrap();
            assert!(!run.used_fallback);
            assert!(run.outcome.is_success());
            assert!(run.metrics.is_valid());
            if run.steered {
                steered_jobs += 1;
            }
        }
        assert!(steered_jobs > 0, "some next-day job should match a hint");

        // Total steering breakdown: every steered run dies, yet every job
        // still completes — on its default plan, with the wasted steered
        // attempt billed.
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let faulty = ab.clone().with_faults(profile);
        let mut fallbacks = 0;
        for job in &d1 {
            let run = store.run_with_guardrail(job, &faulty, &policy).unwrap();
            assert!(run.metrics.is_valid());
            if run.used_fallback {
                fallbacks += 1;
            }
        }
        assert!(fallbacks > 0, "steered runs should have fallen back");
    }

    #[test]
    fn budget_exhaustion_quarantines_hints_during_revalidation() {
        let (mut store, w, ab) = discovered_store();
        // A one-task budget makes every steered re-compile blow the budget
        // immediately: a resource-guardrail trip, not a perf regression.
        store.compile_budget = CompileBudget::with_max_tasks(1);
        let report = store.revalidate(&w.day(1), &ab, 1, 2.0);
        assert!(report.groups_quarantined > 0, "no hint was quarantined");
        assert_eq!(report.groups_suspended, 0);
        let quarantined = store
            .hints()
            .filter(|h| h.status == HintStatus::Quarantined)
            .count();
        assert_eq!(quarantined, report.groups_quarantined);
        // Quarantined hints stop being recommended.
        for h in store.hints() {
            if h.status == HintStatus::Quarantined {
                let sig = RuleSignature(RuleSet::from_bit_string(&h.group));
                assert!(store.recommend(&sig).is_none());
            }
        }
    }

    #[test]
    fn guardrail_vetoes_hint_when_compile_budget_is_exhausted() {
        use scope_exec::RetryPolicy;
        let (mut store, w, ab) = discovered_store();
        store.compile_budget = CompileBudget::with_max_tasks(1);
        let policy = RetryPolicy::no_retries();
        let mut vetoes = 0;
        for job in &w.day(1) {
            let run = store.run_with_guardrail(job, &ab, &policy).unwrap();
            // The hint is rejected before execution, so the job runs its
            // default plan with nothing extra billed — it must still finish.
            assert!(!run.steered);
            assert!(!run.used_fallback);
            assert!(run.outcome.is_success());
            assert!(run.metrics.is_valid());
            if run.vetoed {
                vetoes += 1;
            }
        }
        assert!(vetoes > 0, "some next-day job should have hit the veto");
    }

    #[test]
    fn install_quarantines_catalog_invalid_hints() {
        use scope_ir::OpKind;
        // A hint with every Output implementation disabled can compile no
        // job at all (no escape rewrite is anchored on Output): the static
        // analyzer quarantines it at installation.
        let mut config = RuleConfig::default_config();
        for id in scope_lint::RuleGraph::global().impls(OpKind::Output).iter() {
            config.disable(id);
        }
        assert!(!scope_lint::catalog_invalid(&config).is_empty());
        let broken = GroupConfig {
            group: RuleSignature(RuleSet::from_bit_string("110")),
            config,
            base_change_pct: -40.0,
            base_job: scope_ir::ids::JobId(7),
        };
        let mut store = HintStore::new();
        store.install(&[broken], 0);
        let hint = store.hints().next().unwrap();
        assert_eq!(hint.status, HintStatus::Quarantined);
        // Quarantined at ingestion means never recommended.
        let sig = RuleSignature(RuleSet::from_bit_string(&hint.group));
        assert!(store.recommend(&sig).is_none());
    }

    #[test]
    fn install_keeps_best_per_group() {
        let cat = RuleCatalog::global();
        let group = RuleSignature(RuleSet::from_bit_string("101"));
        let mk = |pct: f64, rule: &str| GroupConfig {
            group,
            config: {
                let mut c = RuleConfig::default_config();
                c.disable(cat.find(rule).unwrap());
                c
            },
            base_change_pct: pct,
            base_job: scope_ir::ids::JobId(1),
        };
        let mut store = HintStore::new();
        store.install(
            &[mk(-20.0, "CollapseSelects"), mk(-60.0, "SelectOnJoin")],
            0,
        );
        assert_eq!(store.len(), 1);
        let hint = store.hints().next().unwrap();
        assert_eq!(hint.base_change_pct, -60.0);
        // Installing a weaker winner later does not overwrite.
        store.install(&[mk(-10.0, "JoinCommute")], 1);
        assert_eq!(store.hints().next().unwrap().base_change_pct, -60.0);
    }
}
