//! Deployment as "plan hints" (§3.3) with weekly re-validation (§6.4).
//!
//! The paper's deployment story: surface discovered rule configurations to
//! customers as hints keyed by job group, and mitigate drift ("this
//! behaviour could change in the future as the predicates and input
//! streams … evolve") by re-running the pipeline every week and dropping
//! configurations that start regressing. [`HintStore`] implements that
//! lifecycle: install winners, recommend per group, re-validate against a
//! fresh day, suspend regressors, and persist to a plain-text hint file.

use std::collections::HashMap;

use scope_exec::ABTester;
use scope_ir::stats::{mean, pct_change};
use scope_ir::Job;
use scope_optimizer::{compile_job, RuleConfig, RuleSet};

use crate::groups::GroupConfig;

/// Lifecycle state of a stored hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintStatus {
    /// Recommended for the group.
    Active,
    /// Regressed during re-validation; no longer recommended.
    Suspended,
}

/// One record of applying a hint to a day's same-group jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationRecord {
    pub day: u32,
    pub jobs: usize,
    pub improved: usize,
    pub mean_change_pct: f64,
}

/// A stored hint for one job group.
#[derive(Clone, Debug)]
pub struct StoredHint {
    /// The group key (default-signature bit string).
    pub group: String,
    pub config: RuleConfig,
    /// Improvement observed on the base job at discovery time.
    pub base_change_pct: f64,
    pub discovered_day: u32,
    pub status: HintStatus,
    pub validations: Vec<ValidationRecord>,
}

/// Outcome of a re-validation sweep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RevalidationReport {
    pub groups_checked: usize,
    pub groups_suspended: usize,
    pub jobs_executed: usize,
    pub mean_change_pct: f64,
}

/// The per-group hint store.
#[derive(Clone, Debug, Default)]
pub struct HintStore {
    entries: HashMap<String, StoredHint>,
}

impl HintStore {
    pub fn new() -> HintStore {
        HintStore::default()
    }

    /// Install discovery winners (keeping, per group, the one with the
    /// largest base improvement).
    pub fn install(&mut self, winners: &[GroupConfig], day: u32) {
        for w in winners {
            let key = w.group.to_bit_string();
            let replace = self
                .entries
                .get(&key)
                .map(|e| w.base_change_pct < e.base_change_pct)
                .unwrap_or(true);
            if replace {
                self.entries.insert(
                    key.clone(),
                    StoredHint {
                        group: key,
                        config: w.config.clone(),
                        base_change_pct: w.base_change_pct,
                        discovered_day: day,
                        status: HintStatus::Active,
                        validations: Vec::new(),
                    },
                );
            }
        }
    }

    /// Number of stored hints (any status).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active recommendation for a group, if any.
    pub fn recommend(&self, group: &scope_optimizer::RuleSignature) -> Option<&RuleConfig> {
        self.entries
            .get(&group.to_bit_string())
            .filter(|e| e.status == HintStatus::Active)
            .map(|e| &e.config)
    }

    /// Iterate stored hints.
    pub fn hints(&self) -> impl Iterator<Item = &StoredHint> {
        self.entries.values()
    }

    /// Re-validate every active hint against a fresh day's jobs: execute
    /// default vs steered for each same-group job, record the outcome, and
    /// suspend hints whose mean change exceeds `regression_threshold_pct`
    /// (e.g. `2.0` = suspend when jobs get >2 % slower on average).
    pub fn revalidate(
        &mut self,
        jobs: &[Job],
        ab: &ABTester,
        day: u32,
        regression_threshold_pct: f64,
    ) -> RevalidationReport {
        // Group the day's jobs by default signature once.
        let mut by_group: HashMap<String, Vec<&Job>> = HashMap::new();
        for job in jobs {
            if let Ok(compiled) = compile_job(job, &RuleConfig::default_config()) {
                by_group
                    .entry(compiled.signature.to_bit_string())
                    .or_default()
                    .push(job);
            }
        }

        let mut report = RevalidationReport::default();
        let mut all_changes = Vec::new();
        for entry in self.entries.values_mut() {
            if entry.status != HintStatus::Active {
                continue;
            }
            let Some(group_jobs) = by_group.get(&entry.group) else {
                continue; // group absent today; nothing to learn
            };
            report.groups_checked += 1;
            let mut changes = Vec::new();
            for job in group_jobs {
                let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                    continue;
                };
                let Ok(steered) = compile_job(job, &entry.config) else {
                    continue;
                };
                let dm = ab.run(job, &default.plan, 0);
                let sm = ab.run(job, &steered.plan, 0);
                changes.push(pct_change(dm.runtime, sm.runtime));
            }
            if changes.is_empty() {
                continue;
            }
            report.jobs_executed += changes.len();
            let mean_change = mean(&changes);
            entry.validations.push(ValidationRecord {
                day,
                jobs: changes.len(),
                improved: changes.iter().filter(|&&c| c < 0.0).count(),
                mean_change_pct: mean_change,
            });
            all_changes.extend(changes);
            if mean_change > regression_threshold_pct {
                entry.status = HintStatus::Suspended;
                report.groups_suspended += 1;
            }
        }
        report.mean_change_pct = mean(&all_changes);
        report
    }

    /// Serialize to the plain-text hint format customers would check in:
    /// one line per group, `signature-bits TAB status TAB disabled-rules
    /// TAB enabled-rules` (rules as ids relative to the default config).
    pub fn to_hint_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .values()
            .map(|e| {
                let (disabled, enabled) = e.config.delta_from_default();
                let ids = |set: &RuleSet| {
                    set.iter()
                        .map(|id| id.0.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{}\t{}\t-[{}]\t+[{}]",
                    e.group,
                    match e.status {
                        HintStatus::Active => "active",
                        HintStatus::Suspended => "suspended",
                    },
                    ids(&disabled),
                    ids(&enabled)
                )
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Parse the format produced by [`Self::to_hint_text`].
    pub fn from_hint_text(text: &str) -> HintStore {
        let mut store = HintStore::new();
        for line in text.lines() {
            let mut parts = line.split('\t');
            let (Some(group), Some(status), Some(minus), Some(plus)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let parse_ids = |s: &str| -> Vec<u16> {
                s.trim_start_matches(['-', '+'])
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect()
            };
            let mut config = RuleConfig::default_config();
            for id in parse_ids(minus) {
                config.disable(scope_optimizer::RuleId(id));
            }
            for id in parse_ids(plus) {
                config.enable(scope_optimizer::RuleId(id));
            }
            store.entries.insert(
                group.to_string(),
                StoredHint {
                    group: group.to_string(),
                    config,
                    base_change_pct: 0.0,
                    discovered_day: 0,
                    status: if status == "suspended" {
                        HintStatus::Suspended
                    } else {
                        HintStatus::Active
                    },
                    validations: Vec::new(),
                },
            );
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::winning_configs;
    use crate::pipeline::{Pipeline, PipelineParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_optimizer::{RuleCatalog, RuleSignature};
    use scope_workload::{Workload, WorkloadProfile};

    fn discovered_store() -> (HintStore, Workload, ABTester) {
        let w = Workload::generate(WorkloadProfile::workload_a(0.05));
        let ab = ABTester::new(5);
        let pipeline = Pipeline::new(
            ab.clone(),
            PipelineParams {
                m_candidates: 100,
                execute_top_k: 5,
                sample_frac: 1.0,
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(4);
        let report = pipeline.discover(&w.day(0), &mut rng);
        let winners = winning_configs(&report.outcomes, 5.0);
        let mut store = HintStore::new();
        store.install(&winners, 0);
        (store, w, ab)
    }

    #[test]
    fn install_and_recommend() {
        let (store, w, _) = discovered_store();
        assert!(!store.is_empty());
        // A recommendation resolves for some job of the next day.
        let d1 = w.day(1);
        let recommended = d1.iter().any(|job| {
            crate::groups::group_of(job)
                .and_then(|g| store.recommend(&g))
                .is_some()
        });
        assert!(recommended, "no next-day job matched a stored hint");
    }

    #[test]
    fn revalidation_records_and_suspends() {
        let (mut store, w, ab) = discovered_store();
        let before_active = store
            .hints()
            .filter(|h| h.status == HintStatus::Active)
            .count();
        let report = store.revalidate(&w.day(1), &ab, 1, 2.0);
        assert!(report.groups_checked > 0);
        assert!(report.jobs_executed > 0);
        // Every checked group gained a validation record.
        let validated = store.hints().filter(|h| !h.validations.is_empty()).count();
        assert_eq!(validated, report.groups_checked);
        assert!(report.groups_suspended <= before_active);
        // Suspended entries stop being recommended.
        for h in store.hints() {
            if h.status == HintStatus::Suspended {
                let sig = RuleSignature(RuleSet::from_bit_string(&h.group));
                assert!(store.recommend(&sig).is_none());
            }
        }
    }

    #[test]
    fn hint_text_round_trip() {
        let (mut store, _, _) = discovered_store();
        // Flip one entry to suspended to exercise both states.
        if let Some(e) = store.entries.values_mut().next() {
            e.status = HintStatus::Suspended;
        }
        let text = store.to_hint_text();
        let parsed = HintStore::from_hint_text(&text);
        assert_eq!(parsed.len(), store.len());
        for h in store.hints() {
            let p = parsed.entries.get(&h.group).expect("entry survives");
            assert_eq!(p.status, h.status);
            assert_eq!(p.config, h.config, "config must round-trip");
        }
    }

    #[test]
    fn install_keeps_best_per_group() {
        let cat = RuleCatalog::global();
        let group = RuleSignature(RuleSet::from_bit_string("101"));
        let mk = |pct: f64, rule: &str| GroupConfig {
            group,
            config: {
                let mut c = RuleConfig::default_config();
                c.disable(cat.find(rule).unwrap());
                c
            },
            base_change_pct: pct,
            base_job: scope_ir::ids::JobId(1),
        };
        let mut store = HintStore::new();
        store.install(&[mk(-20.0, "CollapseSelects"), mk(-60.0, "SelectOnJoin")], 0);
        assert_eq!(store.len(), 1);
        let hint = store.hints().next().unwrap();
        assert_eq!(hint.base_change_pct, -60.0);
        // Installing a weaker winner later does not overwrite.
        store.install(&[mk(-10.0, "JoinCommute")], 1);
        assert_eq!(store.hints().next().unwrap().base_change_pct, -60.0);
    }
}
