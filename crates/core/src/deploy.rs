//! Deployment as "plan hints" (§3.3) with weekly re-validation (§6.4).
//!
//! The paper's deployment story: surface discovered rule configurations to
//! customers as hints keyed by job group, and mitigate drift ("this
//! behaviour could change in the future as the predicates and input
//! streams … evolve") by re-running the pipeline every week and dropping
//! configurations that start regressing. [`HintStore`] implements that
//! lifecycle: install winners, recommend per group, re-validate against a
//! fresh day, suspend regressors, and persist to a plain-text hint file.

use std::collections::HashMap;

use scope_exec::{ABTester, JobOutcome as ExecOutcome, RetryPolicy, RunMetrics};
use scope_ir::stats::{mean, pct_change};
use scope_ir::Job;
use scope_lint::{catalog_invalid, ConfigVerdict, JobLint};
use scope_optimizer::{
    compile_job, compile_job_guarded, effective_config, CompileBudget, RuleConfig, RuleSet,
};

use crate::groups::GroupConfig;
use crate::guard::vet_candidate;

/// Lifecycle state of a stored hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HintStatus {
    /// Recommended for the group.
    Active,
    /// Regressed during re-validation; no longer recommended.
    Suspended,
    /// Tripped a correctness or resource guardrail (compile panic, budget
    /// exhaustion, invalid plan, or result-fingerprint divergence). Unlike
    /// a performance regression, this is never re-tried automatically.
    Quarantined,
}

/// One record of applying a hint to a day's same-group jobs.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidationRecord {
    pub day: u32,
    pub jobs: usize,
    pub improved: usize,
    pub mean_change_pct: f64,
    /// Steered validation runs that failed or timed out this day. These
    /// are first-class evidence against the hint, not missing data.
    pub failures: usize,
}

/// A stored hint for one job group.
#[derive(Clone, Debug)]
pub struct StoredHint {
    /// The group key (default-signature bit string).
    pub group: String,
    pub config: RuleConfig,
    /// Improvement observed on the base job at discovery time.
    pub base_change_pct: f64,
    pub discovered_day: u32,
    pub status: HintStatus,
    pub validations: Vec<ValidationRecord>,
    /// Cumulative failed/timed-out steered validation runs across all
    /// re-validation sweeps.
    pub failed_validations: u32,
}

/// Outcome of a re-validation sweep.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RevalidationReport {
    pub groups_checked: usize,
    pub groups_suspended: usize,
    /// Hints quarantined this sweep because the steered compile panicked,
    /// blew the compile budget, produced an invalid plan, or produced a
    /// plan whose result fingerprint diverged from the default's.
    pub groups_quarantined: usize,
    pub jobs_executed: usize,
    pub mean_change_pct: f64,
    /// Steered validation runs that failed or timed out this sweep.
    pub failed_runs: usize,
    /// Job/hint pairs skipped without compiling because the static
    /// analyzer proved the hint cannot compile for that job (the dynamic
    /// path would have hit a benign, non-fatal compile error and skipped
    /// the pair anyway).
    pub statically_skipped: usize,
}

/// One production-style run through the deployment guardrail.
#[derive(Clone, Debug)]
pub struct GuardrailRun {
    /// Wall-clock/CPU/IO as the customer would observe them, including any
    /// wasted steered attempt that had to be re-run on the default plan.
    pub metrics: RunMetrics,
    /// Whether a stored hint was applied to this job.
    pub steered: bool,
    /// Whether the steered run died and the default plan was re-run.
    pub used_fallback: bool,
    /// Whether a stored hint existed for this job's group but was vetoed
    /// before execution — its compile panicked or ran over budget, or the
    /// plan it produced failed validation / fingerprint equivalence. The
    /// job ran on the default plan with nothing billed for the veto.
    pub vetoed: bool,
    /// How the run that produced the output (steered or fallback) ended.
    pub outcome: ExecOutcome,
}

/// The per-group hint store.
#[derive(Clone, Debug)]
pub struct HintStore {
    entries: HashMap<String, StoredHint>,
    /// Suspend a hint once this many of its steered validation runs have
    /// failed or timed out, regardless of the runtimes it produced when it
    /// did finish.
    pub max_validation_failures: u32,
    /// Budget applied to every steered compile performed by the store
    /// (re-validation and guardrail runs). Exhaustion quarantines the hint
    /// rather than blocking the job.
    pub compile_budget: CompileBudget,
}

impl Default for HintStore {
    fn default() -> HintStore {
        HintStore {
            entries: HashMap::new(),
            max_validation_failures: 3,
            compile_budget: CompileBudget::default(),
        }
    }
}

impl HintStore {
    pub fn new() -> HintStore {
        HintStore::default()
    }

    /// Install discovery winners (keeping, per group, the one with the
    /// largest base improvement). A winner whose configuration is
    /// plan-independently broken (see [`scope_lint::catalog_invalid`]; it
    /// can compile no job at all) is stored directly as `Quarantined` so it
    /// is never recommended — the static-analysis arm of the quarantine
    /// guardrail, applied at ingestion instead of first failure.
    pub fn install(&mut self, winners: &[GroupConfig], day: u32) {
        for w in winners {
            let key = w.group.to_bit_string();
            let replace = self
                .entries
                .get(&key)
                .map(|e| w.base_change_pct < e.base_change_pct)
                .unwrap_or(true);
            if replace {
                let status = if catalog_invalid(&w.config).is_empty() {
                    HintStatus::Active
                } else {
                    HintStatus::Quarantined
                };
                self.entries.insert(
                    key.clone(),
                    StoredHint {
                        group: key,
                        config: w.config.clone(),
                        base_change_pct: w.base_change_pct,
                        discovered_day: day,
                        status,
                        validations: Vec::new(),
                        failed_validations: 0,
                    },
                );
            }
        }
    }

    /// Number of stored hints (any status).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The active recommendation for a group, if any.
    pub fn recommend(&self, group: &scope_optimizer::RuleSignature) -> Option<&RuleConfig> {
        self.entries
            .get(&group.to_bit_string())
            .filter(|e| e.status == HintStatus::Active)
            .map(|e| &e.config)
    }

    /// Iterate stored hints.
    pub fn hints(&self) -> impl Iterator<Item = &StoredHint> {
        self.entries.values()
    }

    /// Re-validate every active hint against a fresh day's jobs: execute
    /// default vs steered for each same-group job, record the outcome, and
    /// suspend hints whose mean change exceeds `regression_threshold_pct`
    /// (e.g. `2.0` = suspend when jobs get >2 % slower on average).
    ///
    /// Failed or timed-out *steered* runs count as evidence against the
    /// hint: they accumulate in `failed_validations` and suspend it once
    /// they reach [`Self::max_validation_failures`], even if the runs that
    /// did finish looked fine. A failed *default* run says nothing about
    /// the hint (the cluster was having a bad day), so the pair is skipped.
    pub fn revalidate(
        &mut self,
        jobs: &[Job],
        ab: &ABTester,
        day: u32,
        regression_threshold_pct: f64,
    ) -> RevalidationReport {
        // Group the day's jobs by default signature once.
        let mut by_group: HashMap<String, Vec<&Job>> = HashMap::new();
        for job in jobs {
            if let Ok(compiled) = compile_job(job, &RuleConfig::default_config()) {
                by_group
                    .entry(compiled.signature.to_bit_string())
                    .or_default()
                    .push(job);
            }
        }

        let mut report = RevalidationReport::default();
        let mut all_changes = Vec::new();
        for entry in self.entries.values_mut() {
            if entry.status != HintStatus::Active {
                continue;
            }
            let Some(group_jobs) = by_group.get(&entry.group) else {
                continue; // group absent today; nothing to learn
            };
            report.groups_checked += 1;
            let mut changes = Vec::new();
            let mut failures = 0usize;
            let mut quarantine = false;
            for job in group_jobs {
                let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                    continue;
                };
                // Static gate: if the analyzer proves the (hint + customer
                // hints) config cannot compile this job, skip the pair with
                // zero compiles. The dynamic path below would have hit a
                // benign non-fatal compile error and `continue`d anyway.
                let effective = effective_config(job, &entry.config);
                if matches!(
                    JobLint::new(&job.plan).classify(&effective),
                    ConfigVerdict::Invalid { .. }
                ) {
                    report.statically_skipped += 1;
                    continue;
                }
                let steered = match compile_job_guarded(job, &entry.config, &self.compile_budget) {
                    Ok(s) => s,
                    // A panic or budget blow-out is a guardrail trip, not a
                    // benign "this config doesn't compile here".
                    Err(e) if e.is_fatal() => {
                        quarantine = true;
                        break;
                    }
                    Err(_) => continue,
                };
                if vet_candidate(&default, &steered).is_err() {
                    quarantine = true;
                    break;
                }
                let sm = ab.run_outcome(job, &steered.plan, 0);
                if !sm.outcome.is_success() {
                    failures += 1;
                    continue;
                }
                let dm = ab.run_outcome(job, &default.plan, 0);
                if !dm.outcome.is_success() {
                    continue; // no trustworthy baseline for this pair
                }
                changes.push(pct_change(dm.metrics.runtime, sm.metrics.runtime));
            }
            if quarantine {
                entry.status = HintStatus::Quarantined;
                report.groups_quarantined += 1;
                report.jobs_executed += changes.len() + failures;
                report.failed_runs += failures;
                all_changes.extend(changes);
                continue;
            }
            if changes.is_empty() && failures == 0 {
                continue;
            }
            report.jobs_executed += changes.len() + failures;
            report.failed_runs += failures;
            entry.failed_validations += failures as u32;
            let mean_change = if changes.is_empty() {
                0.0
            } else {
                mean(&changes)
            };
            entry.validations.push(ValidationRecord {
                day,
                jobs: changes.len() + failures,
                improved: changes.iter().filter(|&&c| c < 0.0).count(),
                mean_change_pct: mean_change,
                failures,
            });
            let regressed = !changes.is_empty() && mean_change > regression_threshold_pct;
            all_changes.extend(changes);
            if regressed || entry.failed_validations >= self.max_validation_failures {
                entry.status = HintStatus::Suspended;
                report.groups_suspended += 1;
            }
        }
        if !all_changes.is_empty() {
            report.mean_change_pct = mean(&all_changes);
        }
        report
    }

    /// Run one job the way a steered production cluster would (§3.3's
    /// guardrail): apply the stored hint for the job's group when there is
    /// one, and if the steered run fails or times out, fall back to the
    /// default plan — a steering mishap must never lose the job. The
    /// wasted steered attempt is billed to the reported metrics.
    pub fn run_with_guardrail(
        &self,
        job: &Job,
        ab: &ABTester,
        policy: &RetryPolicy,
    ) -> Option<GuardrailRun> {
        let default = compile_job(job, &RuleConfig::default_config()).ok()?;
        let mut vetoed = false;
        let steered_plan = self.recommend(&default.signature).and_then(|cfg| {
            // Static gate: a hint the analyzer proves cannot compile this
            // job is skipped without a compile attempt. Not a veto — the
            // dynamic path treats the resulting non-fatal compile error as
            // a benign "doesn't compile here" too (`vetoed` stays false).
            let effective = effective_config(job, cfg);
            if matches!(
                JobLint::new(&job.plan).classify(&effective),
                ConfigVerdict::Invalid { .. }
            ) {
                return None;
            }
            match compile_job_guarded(job, cfg, &self.compile_budget) {
                Ok(steered) => {
                    if vet_candidate(&default, &steered).is_ok() {
                        Some(steered)
                    } else {
                        vetoed = true;
                        None
                    }
                }
                Err(e) => {
                    vetoed = e.is_fatal();
                    None
                }
            }
        });

        let Some(steered) = steered_plan else {
            let run = ab.run_with_retry(job, &default.plan, 0, policy);
            return Some(GuardrailRun {
                metrics: run.metrics,
                steered: false,
                used_fallback: false,
                vetoed,
                outcome: run.outcome,
            });
        };

        let run = ab.run_with_retry(job, &steered.plan, 0, policy);
        if run.outcome.is_success() {
            return Some(GuardrailRun {
                metrics: run.metrics,
                steered: true,
                used_fallback: false,
                vetoed: false,
                outcome: run.outcome,
            });
        }
        let fallback = ab.run_with_retry(job, &default.plan, 0, policy);
        let metrics = RunMetrics {
            runtime: fallback.metrics.runtime + run.metrics.runtime,
            cpu_time: fallback.metrics.cpu_time + run.metrics.cpu_time,
            io_time: fallback.metrics.io_time + run.metrics.io_time,
        };
        Some(GuardrailRun {
            metrics,
            steered: true,
            used_fallback: true,
            vetoed: false,
            outcome: fallback.outcome,
        })
    }

    /// Serialize to the plain-text hint format customers would check in:
    /// one line per group, `signature-bits TAB status TAB disabled-rules
    /// TAB enabled-rules` (rules as ids relative to the default config).
    pub fn to_hint_text(&self) -> String {
        let mut lines: Vec<String> = self
            .entries
            .values()
            .map(|e| {
                let (disabled, enabled) = e.config.delta_from_default();
                let ids = |set: &RuleSet| {
                    set.iter()
                        .map(|id| id.0.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                };
                format!(
                    "{}\t{}\t-[{}]\t+[{}]",
                    e.group,
                    match e.status {
                        HintStatus::Active => "active",
                        HintStatus::Suspended => "suspended",
                        HintStatus::Quarantined => "quarantined",
                    },
                    ids(&disabled),
                    ids(&enabled)
                )
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Parse the format produced by [`Self::to_hint_text`].
    pub fn from_hint_text(text: &str) -> HintStore {
        let mut store = HintStore::new();
        for line in text.lines() {
            let mut parts = line.split('\t');
            let (Some(group), Some(status), Some(minus), Some(plus)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let parse_ids = |s: &str| -> Vec<u16> {
                s.trim_start_matches(['-', '+'])
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .split(',')
                    .filter_map(|v| v.parse().ok())
                    .collect()
            };
            let mut config = RuleConfig::default_config();
            for id in parse_ids(minus) {
                config.disable(scope_optimizer::RuleId(id));
            }
            for id in parse_ids(plus) {
                config.enable(scope_optimizer::RuleId(id));
            }
            store.entries.insert(
                group.to_string(),
                StoredHint {
                    group: group.to_string(),
                    config,
                    base_change_pct: 0.0,
                    discovered_day: 0,
                    status: match status {
                        "suspended" => HintStatus::Suspended,
                        "quarantined" => HintStatus::Quarantined,
                        _ => HintStatus::Active,
                    },
                    validations: Vec::new(),
                    failed_validations: 0,
                },
            );
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_optimizer::{RuleCatalog, RuleSignature};
    use scope_workload::Workload;

    fn discovered_store() -> (HintStore, Workload, ABTester) {
        let d = crate::testutil::discover_winners(5.0);
        let mut store = HintStore::new();
        store.install(&d.winners, 0);
        (store, d.workload, d.ab)
    }

    #[test]
    fn install_and_recommend() {
        let (store, w, _) = discovered_store();
        assert!(!store.is_empty());
        // A recommendation resolves for some job of the next day.
        let d1 = w.day(1);
        let recommended = d1.iter().any(|job| {
            crate::groups::group_of(job)
                .and_then(|g| store.recommend(&g))
                .is_some()
        });
        assert!(recommended, "no next-day job matched a stored hint");
    }

    #[test]
    fn revalidation_records_and_suspends() {
        let (mut store, w, ab) = discovered_store();
        let before_active = store
            .hints()
            .filter(|h| h.status == HintStatus::Active)
            .count();
        let report = store.revalidate(&w.day(1), &ab, 1, 2.0);
        assert!(report.groups_checked > 0);
        assert!(report.jobs_executed > 0);
        // Every checked group gained a validation record.
        let validated = store.hints().filter(|h| !h.validations.is_empty()).count();
        assert_eq!(validated, report.groups_checked);
        assert!(report.groups_suspended <= before_active);
        // Suspended entries stop being recommended.
        for h in store.hints() {
            if h.status == HintStatus::Suspended {
                let sig = RuleSignature(RuleSet::from_bit_string(&h.group));
                assert!(store.recommend(&sig).is_none());
            }
        }
    }

    #[test]
    fn hint_text_round_trip() {
        let (mut store, _, _) = discovered_store();
        // Flip entries to the non-active states to exercise all three.
        let mut statuses = [HintStatus::Suspended, HintStatus::Quarantined]
            .into_iter()
            .cycle();
        for e in store.entries.values_mut().take(2) {
            e.status = statuses.next().unwrap();
        }
        let text = store.to_hint_text();
        let parsed = HintStore::from_hint_text(&text);
        assert_eq!(parsed.len(), store.len());
        for h in store.hints() {
            let p = parsed.entries.get(&h.group).expect("entry survives");
            assert_eq!(p.status, h.status);
            assert_eq!(p.config, h.config, "config must round-trip");
        }
    }

    #[test]
    fn failed_validations_suspend_a_hint() {
        use scope_exec::FaultProfile;
        let (mut store, w, ab) = discovered_store();
        // Re-validate on a cluster where steered runs essentially always
        // die; a single failure is enough to suspend.
        store.max_validation_failures = 1;
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let faulty = ab.clone().with_faults(profile);
        let report = store.revalidate(&w.day(1), &faulty, 1, 2.0);
        assert!(report.failed_runs > 0, "steered runs should have failed");
        assert!(report.groups_suspended > 0);
        let suspended = store
            .hints()
            .filter(|h| h.status == HintStatus::Suspended)
            .count();
        assert_eq!(suspended, report.groups_suspended);
        // The failure evidence is recorded on the hint itself.
        assert!(store
            .hints()
            .any(|h| h.failed_validations > 0 && h.validations.iter().any(|v| v.failures > 0)));
    }

    #[test]
    fn guardrail_falls_back_to_default_when_steering_dies() {
        use scope_exec::{FaultProfile, RetryPolicy};
        let (store, w, ab) = discovered_store();
        let d1 = w.day(1);
        let policy = RetryPolicy::no_retries();

        // Fault-free: steered jobs run steered, nobody falls back.
        let mut steered_jobs = 0;
        for job in &d1 {
            let run = store.run_with_guardrail(job, &ab, &policy).unwrap();
            assert!(!run.used_fallback);
            assert!(run.outcome.is_success());
            assert!(run.metrics.is_valid());
            if run.steered {
                steered_jobs += 1;
            }
        }
        assert!(steered_jobs > 0, "some next-day job should match a hint");

        // Total steering breakdown: every steered run dies, yet every job
        // still completes — on its default plan, with the wasted steered
        // attempt billed.
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let faulty = ab.clone().with_faults(profile);
        let mut fallbacks = 0;
        for job in &d1 {
            let run = store.run_with_guardrail(job, &faulty, &policy).unwrap();
            assert!(run.metrics.is_valid());
            if run.used_fallback {
                fallbacks += 1;
            }
        }
        assert!(fallbacks > 0, "steered runs should have fallen back");
    }

    #[test]
    fn budget_exhaustion_quarantines_hints_during_revalidation() {
        let (mut store, w, ab) = discovered_store();
        // A one-task budget makes every steered re-compile blow the budget
        // immediately: a resource-guardrail trip, not a perf regression.
        store.compile_budget = CompileBudget::with_max_tasks(1);
        let report = store.revalidate(&w.day(1), &ab, 1, 2.0);
        assert!(report.groups_quarantined > 0, "no hint was quarantined");
        assert_eq!(report.groups_suspended, 0);
        let quarantined = store
            .hints()
            .filter(|h| h.status == HintStatus::Quarantined)
            .count();
        assert_eq!(quarantined, report.groups_quarantined);
        // Quarantined hints stop being recommended.
        for h in store.hints() {
            if h.status == HintStatus::Quarantined {
                let sig = RuleSignature(RuleSet::from_bit_string(&h.group));
                assert!(store.recommend(&sig).is_none());
            }
        }
    }

    #[test]
    fn guardrail_vetoes_hint_when_compile_budget_is_exhausted() {
        use scope_exec::RetryPolicy;
        let (mut store, w, ab) = discovered_store();
        store.compile_budget = CompileBudget::with_max_tasks(1);
        let policy = RetryPolicy::no_retries();
        let mut vetoes = 0;
        for job in &w.day(1) {
            let run = store.run_with_guardrail(job, &ab, &policy).unwrap();
            // The hint is rejected before execution, so the job runs its
            // default plan with nothing extra billed — it must still finish.
            assert!(!run.steered);
            assert!(!run.used_fallback);
            assert!(run.outcome.is_success());
            assert!(run.metrics.is_valid());
            if run.vetoed {
                vetoes += 1;
            }
        }
        assert!(vetoes > 0, "some next-day job should have hit the veto");
    }

    #[test]
    fn install_quarantines_catalog_invalid_hints() {
        use scope_ir::OpKind;
        // A hint with every Output implementation disabled can compile no
        // job at all (no escape rewrite is anchored on Output): the static
        // analyzer quarantines it at installation.
        let mut config = RuleConfig::default_config();
        for id in scope_lint::RuleGraph::global().impls(OpKind::Output).iter() {
            config.disable(id);
        }
        assert!(!scope_lint::catalog_invalid(&config).is_empty());
        let broken = GroupConfig {
            group: RuleSignature(RuleSet::from_bit_string("110")),
            config,
            base_change_pct: -40.0,
            base_job: scope_ir::ids::JobId(7),
        };
        let mut store = HintStore::new();
        store.install(&[broken], 0);
        let hint = store.hints().next().unwrap();
        assert_eq!(hint.status, HintStatus::Quarantined);
        // Quarantined at ingestion means never recommended.
        let sig = RuleSignature(RuleSet::from_bit_string(&hint.group));
        assert!(store.recommend(&sig).is_none());
    }

    #[test]
    fn install_keeps_best_per_group() {
        let cat = RuleCatalog::global();
        let group = RuleSignature(RuleSet::from_bit_string("101"));
        let mk = |pct: f64, rule: &str| GroupConfig {
            group,
            config: {
                let mut c = RuleConfig::default_config();
                c.disable(cat.find(rule).unwrap());
                c
            },
            base_change_pct: pct,
            base_job: scope_ir::ids::JobId(1),
        };
        let mut store = HintStore::new();
        store.install(
            &[mk(-20.0, "CollapseSelects"), mk(-60.0, "SelectOnJoin")],
            0,
        );
        assert_eq!(store.len(), 1);
        let hint = store.hints().next().unwrap();
        assert_eq!(hint.base_change_pct, -60.0);
        // Installing a weaker winner later does not overwrite.
        store.install(&[mk(-10.0, "JoinCommute")], 1);
        assert_eq!(store.hints().next().unwrap().base_change_pct, -60.0);
    }
}
