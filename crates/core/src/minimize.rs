//! Configuration minimization: shrink a winning configuration to the
//! smallest delta from the default that still reproduces the winning plan.
//!
//! Candidate configurations from §5.2 enable *everything* outside the job
//! span and toggle many span rules at once; only a few of those changes
//! matter (Table 4's RuleDiffs are short). A deployable "plan hint"
//! (§3.3) should carry just the load-bearing changes — customers review
//! these by hand. [`minimize_config`] greedily reverts each changed rule
//! back to its default state and keeps the reversion whenever the compiled
//! plan stays identical.

use scope_exec::plan_fingerprint;
use scope_ir::Job;
use scope_optimizer::{compile_job, RuleConfig};

/// Result of minimizing a configuration for a job.
#[derive(Clone, Debug)]
pub struct MinimizedConfig {
    /// The minimized configuration (same plan, fewest default deltas).
    pub config: RuleConfig,
    /// Deltas before minimization (disabled + enabled vs default).
    pub deltas_before: usize,
    /// Deltas after minimization.
    pub deltas_after: usize,
    /// Compilations spent.
    pub compiles: usize,
}

/// Greedily minimize `config` for `job`, preserving the exact physical
/// plan it produces. Returns `None` if the configuration does not compile
/// for the job.
pub fn minimize_config(job: &Job, config: &RuleConfig) -> Option<MinimizedConfig> {
    let target = compile_job(job, config).ok()?;
    let target_fp = plan_fingerprint(&target.plan);

    let (disabled, enabled) = config.delta_from_default();
    let deltas_before = disabled.len() + enabled.len();
    let mut compiles = 1usize;
    let mut current = config.clone();

    // Revert newly-enabled rules first (they are usually the §5.2 blanket
    // enables), then newly-disabled ones.
    for id in enabled.iter() {
        let mut trial = current.clone();
        trial.disable(id);
        compiles += 1;
        if let Ok(c) = compile_job(job, &trial) {
            if plan_fingerprint(&c.plan) == target_fp {
                current = trial;
            }
        }
    }
    for id in disabled.iter() {
        let mut trial = current.clone();
        trial.enable(id);
        compiles += 1;
        if let Ok(c) = compile_job(job, &trial) {
            if plan_fingerprint(&c.plan) == target_fp {
                current = trial;
            }
        }
    }

    let (d_after, e_after) = current.delta_from_default();
    Some(MinimizedConfig {
        config: current,
        deltas_before,
        deltas_after: d_after.len() + e_after.len(),
        compiles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_exec::Metric;
    use scope_workload::{Workload, WorkloadProfile};

    #[test]
    fn minimization_preserves_plan_and_shrinks_delta() {
        let d = crate::testutil::discover_winners(10.0);
        let jobs = d.workload.day(0);
        let outcome = d
            .report
            .outcomes
            .iter()
            .find(|o| o.best_runtime_change_pct() < -10.0)
            .expect("an improving outcome");
        let job = jobs.iter().find(|j| j.id == outcome.job_id).unwrap();
        let best = outcome.best_by(Metric::Runtime).unwrap();

        let min = minimize_config(job, &best.config).expect("compiles");
        assert!(
            min.deltas_after <= min.deltas_before,
            "minimization must not grow the delta"
        );
        // §5.2 candidates enable ~45 off-by-default rules blanket-style;
        // most must fall away.
        assert!(
            min.deltas_after < min.deltas_before / 2,
            "expected substantial shrink: {} -> {}",
            min.deltas_before,
            min.deltas_after
        );
        // Same physical plan.
        let a = compile_job(job, &best.config).unwrap();
        let b = compile_job(job, &min.config).unwrap();
        assert_eq!(plan_fingerprint(&a.plan), plan_fingerprint(&b.plan));
        assert!((a.est_cost - b.est_cost).abs() < 1e-9);
    }

    #[test]
    fn default_config_minimizes_to_itself() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.05));
        let jobs = w.day(0);
        let min = minimize_config(&jobs[0], &RuleConfig::default_config()).unwrap();
        assert_eq!(min.deltas_before, 0);
        assert_eq!(min.deltas_after, 0);
        assert_eq!(min.config, RuleConfig::default_config());
    }
}
