//! Randomized configuration search (§5.2).
//!
//! Candidate configurations enable every rule outside the job's span (a
//! rule that cannot affect the plan is harmless either way — and spans are
//! approximate, so leaving unknown rules enabled is useful), then disable
//! an independently-sampled subset of span rules *per category*, under the
//! paper's category-independence assumption.

use rand::Rng;

use scope_optimizer::{RuleCatalog, RuleCategory, RuleConfig, RuleSet};

use crate::span::JobSpan;

/// Default number of candidate configurations per job (the paper's "up to
/// 1000").
pub const DEFAULT_M: usize = 1000;

/// Generate up to `m` unique candidate configurations for a job with the
/// given span. The default configuration is *not* included.
pub fn candidate_configs<R: Rng + ?Sized>(
    span: &JobSpan,
    m: usize,
    rng: &mut R,
) -> Vec<RuleConfig> {
    candidate_configs_effective(span, &RuleSet::EMPTY, m, rng)
}

/// [`candidate_configs`] deduplicated by **effective** bits: `forced_on`
/// holds rules the compiler will force back on regardless of sampling
/// (customer hints, per [`scope_optimizer::effective_config`]; required
/// rules are clamped by `RuleConfig::from_enabled` either way). Two raw
/// samples that differ only inside `forced_on` compile identically, so
/// without this the pipeline would recompile — and possibly A/B-execute —
/// the same effective configuration twice. The returned configs have
/// `forced_on` already merged, making them safe cache keys as-is.
pub fn candidate_configs_effective<R: Rng + ?Sized>(
    span: &JobSpan,
    forced_on: &RuleSet,
    m: usize,
    rng: &mut R,
) -> Vec<RuleConfig> {
    let by_category: Vec<RuleSet> = [
        RuleCategory::OffByDefault,
        RuleCategory::OnByDefault,
        RuleCategory::Implementation,
    ]
    .iter()
    .map(|c| span.in_category(*c))
    .collect();

    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(m);
    let attempts = m.saturating_mul(5).max(16);
    let full = RuleCatalog::global().non_required();
    for _ in 0..attempts {
        if out.len() >= m {
            break;
        }
        // Step 1: enable everything not in the span (plus span rules we
        // don't sample for disabling below).
        let mut disabled = RuleSet::EMPTY;
        // Step 2: per category, sample an independent subset of span rules
        // to disable. A per-config, per-category rate gives a mix of light
        // and heavy steering.
        for rules in &by_category {
            if rules.is_empty() {
                continue;
            }
            let rate: f64 = rng.gen_range(0.05..0.75);
            for id in rules.iter() {
                if rng.gen_bool(rate) {
                    disabled.insert(id);
                }
            }
        }
        // A sample whose every disable is forced back on is effectively
        // the all-rules configuration — skip it like an empty sample.
        if disabled.difference(forced_on).is_empty() {
            continue;
        }
        let enabled = full.difference(&disabled).union(forced_on);
        // Step 3: normalize (required rules clamped back on — the sampler
        // never clears them, so the correction mask is empty here) and
        // dedup by post-normalization effective bits.
        let (config, _correction) = RuleConfig::normalized(enabled);
        if seen.insert(*config.enabled()) {
            out.push(config);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_optimizer::RuleId;

    fn fake_span() -> JobSpan {
        let cat = RuleCatalog::global();
        // A handful of rules in each configurable category.
        let mut rules = RuleSet::EMPTY;
        for name in [
            "CorrelatedJoinOnUnionAll1",
            "GroupbyOnJoin",
            "CollapseSelects",
            "SelectOnJoin",
            "SelectPartitions",
            "HashJoinImpl1",
            "JoinImpl2",
            "BroadcastJoinImpl",
        ] {
            rules.insert(cat.find(name).unwrap());
        }
        JobSpan {
            rules,
            iterations: 3,
            hit_compile_failure: false,
        }
    }

    #[test]
    fn candidates_are_unique_and_differ_from_default() {
        let span = fake_span();
        let mut rng = StdRng::seed_from_u64(1);
        let configs = candidate_configs(&span, 50, &mut rng);
        assert!(configs.len() >= 40, "got {}", configs.len());
        let mut seen = std::collections::HashSet::new();
        for c in &configs {
            assert!(seen.insert(c.enabled().to_bit_string()));
            assert_ne!(c, &RuleConfig::default_config());
        }
    }

    #[test]
    fn non_span_rules_are_enabled() {
        let span = fake_span();
        let mut rng = StdRng::seed_from_u64(2);
        let configs = candidate_configs(&span, 20, &mut rng);
        let cat = RuleCatalog::global();
        // A non-span, off-by-default rule is enabled in candidates (step 1
        // of §5.2 — note this differs from the default configuration).
        let off_rule = cat.find("SelectPredReversed").unwrap();
        assert!(!span.rules.contains(off_rule));
        for c in &configs {
            assert!(c.is_enabled(off_rule));
        }
    }

    #[test]
    fn only_span_rules_get_disabled() {
        let span = fake_span();
        let mut rng = StdRng::seed_from_u64(3);
        for c in candidate_configs(&span, 30, &mut rng) {
            let disabled = c.disabled();
            assert!(
                disabled.difference(&span.rules).is_empty(),
                "disabled a rule outside the span"
            );
            assert!(!disabled.is_empty());
        }
    }

    #[test]
    fn required_rules_stay_enabled() {
        let span = fake_span();
        let mut rng = StdRng::seed_from_u64(4);
        let enforce = RuleCatalog::global().find("EnforceExchange").unwrap();
        for c in candidate_configs(&span, 10, &mut rng) {
            assert!(c.is_enabled(enforce));
            assert!(c.is_enabled(RuleId(0)));
        }
    }

    #[test]
    fn empty_span_produces_no_candidates() {
        let span = JobSpan {
            rules: RuleSet::EMPTY,
            iterations: 1,
            hit_compile_failure: false,
        };
        let mut rng = StdRng::seed_from_u64(5);
        assert!(candidate_configs(&span, 10, &mut rng).is_empty());
    }

    #[test]
    fn effective_dedup_merges_forced_rules_and_stays_unique() {
        let span = fake_span();
        let cat = RuleCatalog::global();
        let forced: RuleSet = [
            cat.find("HashJoinImpl1").unwrap(),
            cat.find("GroupbyOnJoin").unwrap(),
        ]
        .into_iter()
        .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let configs = candidate_configs_effective(&span, &forced, 50, &mut rng);
        assert!(!configs.is_empty());
        let mut seen = std::collections::HashSet::new();
        for c in &configs {
            // Forced (hinted) rules are merged into every candidate, so the
            // returned bits are the effective bits...
            for id in forced.iter() {
                assert!(c.is_enabled(id));
            }
            // ...and uniqueness holds post-merge, not on the raw samples.
            assert!(seen.insert(*c.enabled()));
        }
    }

    #[test]
    fn m_caps_candidate_count() {
        let span = fake_span();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(candidate_configs(&span, 7, &mut rng).len() <= 7);
    }
}
