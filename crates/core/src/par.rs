//! Scoped-thread fan-out with panic isolation.
//!
//! This harness started life in the bench crate (which still re-exports
//! it); it moved here so the discovery pipeline itself can fan work out.
//! Results are collected **in item order** regardless of worker count,
//! which is what makes parallel discovery bit-identical to serial runs.

/// Fan `items` out over available cores in contiguous chunks and collect
/// each chunk's mapped results in order. A chunk whose worker panics is
/// logged (with `describe` applied to its items) and dropped — the other
/// chunks' results survive, so one poisoned job cannot abort a whole
/// experiment.
pub fn run_chunked<T, U, F, D>(items: &[T], map: F, describe: D) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync,
    D: Fn(&T) -> String,
{
    run_chunked_on(items, available_threads(), map, describe)
}

/// The default worker count: one per available core.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// [`run_chunked`] with an explicit worker count (exposed for tests and
/// sweeps, which must not depend on the machine's core count).
pub fn run_chunked_on<T, U, F, D>(items: &[T], n_threads: usize, map: F, describe: D) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Sync,
    D: Fn(&T) -> String,
{
    run_chunked_stateful(items, n_threads, || (), |(), item| map(item), describe)
}

/// [`run_chunked_on`] with per-worker mutable state: `init` runs once on
/// each worker thread, and the resulting state is passed `&mut` to every
/// `map` call that worker makes. This is how per-item scratch (memo
/// arenas, implementation vectors) moves out of the per-item path —
/// allocated once per worker instead of once per item — without sharing
/// anything across threads. State must not influence results (the
/// bit-identity contract): it is a cache of *capacity*, never of values.
pub fn run_chunked_stateful<T, U, S, I, F, D>(
    items: &[T],
    n_threads: usize,
    init: I,
    map: F,
    describe: D,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Option<U> + Sync,
    D: Fn(&T) -> String,
{
    if items.is_empty() {
        return Vec::new();
    }
    let n_threads = n_threads.clamp(1, items.len());
    let chunks: Vec<&[T]> = items.chunks(items.len().div_ceil(n_threads)).collect();
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let map = &map;
                let init = &init;
                s.spawn(move || {
                    let mut state = init();
                    chunk
                        .iter()
                        .filter_map(|item| map(&mut state, item))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (handle, chunk) in handles.into_iter().zip(&chunks) {
            match handle.join() {
                Ok(results) => out.extend(results),
                Err(_) => {
                    let affected: Vec<String> = chunk.iter().map(&describe).collect();
                    eprintln!(
                        "warning: a worker panicked; dropping its chunk of {} items: [{}]",
                        chunk.len(),
                        affected.join(", ")
                    );
                }
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunked_survives_a_panicking_worker() {
        // Many items → many chunks; a panic on one item loses only its own
        // chunk, never the whole run.
        let items: Vec<u32> = (0..64).collect();
        let out = run_chunked_on(
            &items,
            8,
            |&i| {
                if i == 13 {
                    panic!("poisoned item");
                }
                Some(i * 2)
            },
            |&i| format!("item {i}"),
        );
        assert!(!out.is_empty(), "surviving chunks must be kept");
        assert!(out.len() < items.len(), "the poisoned chunk is dropped");
        assert!(out.iter().all(|&v| v % 2 == 0));
        assert!(
            !out.contains(&26),
            "results from the poisoned chunk are gone"
        );
    }

    #[test]
    fn run_chunked_handles_empty_and_filtered_input() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_chunked(&empty, |&i| Some(i), std::string::ToString::to_string).is_empty());
        let items = [1u32, 2, 3, 4];
        let odd_only = run_chunked(
            &items,
            |&i| (i % 2 == 1).then_some(i),
            std::string::ToString::to_string,
        );
        assert_eq!(odd_only, vec![1, 3]);
    }

    #[test]
    fn results_are_in_item_order_for_any_worker_count() {
        let items: Vec<u32> = (0..100).collect();
        for n in [1, 2, 3, 7, 16, 100] {
            let out = run_chunked_on(&items, n, |&i| Some(i), std::string::ToString::to_string);
            assert_eq!(out, items, "order broke at {n} workers");
        }
    }

    #[test]
    fn stateful_workers_get_one_state_each_and_keep_item_order() {
        let items: Vec<u32> = (0..40).collect();
        for n in [1, 3, 8] {
            // Each worker counts its own items; the count is per-worker
            // state, so every item sees a strictly increasing local count.
            let out = run_chunked_stateful(
                &items,
                n,
                || 0u32,
                |seen, &i| {
                    *seen += 1;
                    Some((i, *seen))
                },
                |&i| format!("item {i}"),
            );
            assert_eq!(out.len(), items.len());
            assert_eq!(
                out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
                items,
                "order broke at {n} workers"
            );
            // One fresh state per worker: exactly one `seen == 1` per chunk.
            let n_chunks = items.chunks(items.len().div_ceil(n)).count();
            let fresh = out.iter().filter(|&&(_, seen)| seen == 1).count();
            assert_eq!(fresh, n_chunks, "state was shared or reset at {n} workers");
        }
    }
}
