//! Runtime feedback into the cost model: per-template multiplicative
//! corrections learned from executed jobs.
//!
//! The optimizer's estimates and the cluster's observed metrics disagree
//! systematically on recurring templates (correlated predicates, skew,
//! true UDO cost). Discovery already *measures* the disagreement on every
//! A/B run; this module closes the loop. A [`CorrectionStore`] ingests
//! `(estimated cost vector, observed RunMetrics)` pairs keyed by template,
//! turns them into bounded observed/estimated ratios per metric
//! ([`safe_ratio`]), smooths them exponentially, and — only at an explicit
//! day boundary, behind a caller-supplied vetting gate — promotes them to
//! *active* [`CostCorrections`] that [`CostModel`] applies at estimation
//! time on the next day's compiles.
//!
//! Safety properties, each enforced here rather than hoped for downstream:
//!
//! * A correction factor is always finite, positive, and inside the
//!   configured band. Degenerate denominators (zero, negative, NaN, ∞
//!   estimates) contribute the identity ratio `1.0`, never a poisoned one.
//! * Ingestion is idempotent per `(template, token)`: re-reporting a run
//!   cannot double-shift the smoothed state.
//! * Observations from quarantined hints are excluded — a regressed plan's
//!   metrics must not teach the model.
//! * Pending state is invisible to [`CorrectionStore::corrections_for`]
//!   until [`CorrectionStore::end_of_day`] promotes it, so a template's
//!   plans never change mid-day.

use std::collections::{HashMap, HashSet};

use scope_exec::RunMetrics;
use scope_optimizer::{CostCorrections, CostEstimate, CostModel, CostWeights};

/// Multiplicative clamp band for correction factors. The default `[0.25,
/// 4.0]` bounds how far one day of feedback can move any estimate — a
/// grossly mis-estimated template converges over days instead of slamming
/// the model in one step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrectionBand {
    pub lo: f64,
    pub hi: f64,
}

impl CorrectionBand {
    pub const DEFAULT: CorrectionBand = CorrectionBand { lo: 0.25, hi: 4.0 };

    /// A usable band: finite, positive, ordered, containing the identity.
    pub fn is_valid(&self) -> bool {
        self.lo.is_finite()
            && self.hi.is_finite()
            && 0.0 < self.lo
            && self.lo <= 1.0
            && 1.0 <= self.hi
    }
}

impl Default for CorrectionBand {
    fn default() -> CorrectionBand {
        CorrectionBand::DEFAULT
    }
}

/// The guarded observed/estimated ratio. Returns the identity `1.0` for
/// any degenerate input — non-finite, zero, or negative on either side —
/// and otherwise the ratio clamped into `band`. The result is always
/// finite and strictly positive; no caller ever needs to re-check.
pub fn safe_ratio(observed: f64, estimated: f64, band: &CorrectionBand) -> f64 {
    debug_assert!(band.is_valid(), "correction band must be sane: {band:?}");
    if !observed.is_finite() || observed <= 0.0 {
        return 1.0;
    }
    if !estimated.is_finite() || estimated <= 0.0 {
        return 1.0;
    }
    let r = (observed / estimated).clamp(band.lo, band.hi);
    // clamp of a finite/finite ratio of positives is finite and positive,
    // but guard release builds against future refactors all the same.
    if r.is_finite() && r > 0.0 {
        r
    } else {
        1.0
    }
}

/// Smoothed per-template state awaiting promotion.
#[derive(Clone, Debug)]
struct PendingState {
    /// EWMA of observed/estimated CPU-seconds ratios.
    cpu: f64,
    /// EWMA of observed/estimated IO-seconds ratios (the simulator's
    /// `io_time` aggregates disk and network, so the estimate side is
    /// `io + net`).
    io: f64,
    /// Observations absorbed.
    n: u32,
    /// Idempotence tokens already ingested for this template.
    seen: HashSet<u64>,
}

/// Per-template corrections: ingestion during the day, promotion at the
/// day boundary, lookup of *active* (promoted) corrections only.
#[derive(Clone, Debug)]
pub struct CorrectionStore {
    /// EWMA weight of each new observation.
    alpha: f64,
    band: CorrectionBand,
    /// Observations a template needs before it may be promoted.
    min_observations: u32,
    pending: HashMap<u64, PendingState>,
    active: HashMap<u64, CostCorrections>,
}

impl Default for CorrectionStore {
    fn default() -> CorrectionStore {
        CorrectionStore::new()
    }
}

impl CorrectionStore {
    pub fn new() -> CorrectionStore {
        CorrectionStore {
            alpha: 0.3,
            band: CorrectionBand::DEFAULT,
            min_observations: 3,
            pending: HashMap::new(),
            active: HashMap::new(),
        }
    }

    /// Override the smoothing weight (`0 < alpha <= 1`) and band.
    pub fn with_params(alpha: f64, band: CorrectionBand, min_observations: u32) -> CorrectionStore {
        debug_assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        debug_assert!(band.is_valid(), "correction band must be sane: {band:?}");
        let alpha = if alpha.is_finite() && alpha > 0.0 && alpha <= 1.0 {
            alpha
        } else {
            0.3
        };
        let band = if band.is_valid() {
            band
        } else {
            CorrectionBand::DEFAULT
        };
        CorrectionStore {
            alpha,
            band,
            min_observations,
            pending: HashMap::new(),
            active: HashMap::new(),
        }
    }

    /// Absorb one executed run for `template`. `estimated` is the cost
    /// vector the model actually produced for the executed plan (corrected,
    /// if a correction was active — see [`Self::end_of_day`] for why
    /// residuals compose). `token` dedupes repeated reports of the same
    /// run within the current pending generation (use a run-unique id).
    /// Returns whether the observation was absorbed; quarantined,
    /// invalid-metric, and duplicate observations are refused.
    pub fn ingest(
        &mut self,
        template: u64,
        token: u64,
        estimated: &CostEstimate,
        observed: &RunMetrics,
        quarantined: bool,
    ) -> bool {
        if quarantined || !observed.is_valid() {
            return false;
        }
        let r_cpu = safe_ratio(observed.cpu_time, estimated.cpu, &self.band);
        let r_io = safe_ratio(observed.io_time, estimated.io + estimated.net, &self.band);
        let state = self
            .pending
            .entry(template)
            .or_insert_with(|| PendingState {
                cpu: 1.0,
                io: 1.0,
                n: 0,
                seen: HashSet::new(),
            });
        if !state.seen.insert(token) {
            return false;
        }
        if state.n == 0 {
            state.cpu = r_cpu;
            state.io = r_io;
        } else {
            state.cpu += self.alpha * (r_cpu - state.cpu);
            state.io += self.alpha * (r_io - state.io);
        }
        state.n += 1;
        debug_assert!(
            state.cpu.is_finite() && state.cpu > 0.0 && state.io.is_finite() && state.io > 0.0,
            "smoothed ratios must stay finite and positive"
        );
        true
    }

    /// The *active* corrections for a template — identity until a
    /// day-boundary promotion, no matter what is pending.
    pub fn corrections_for(&self, template: u64) -> CostCorrections {
        self.active
            .get(&template)
            .copied()
            .unwrap_or(CostCorrections::IDENTITY)
    }

    /// A full cost model for a template under the given weights.
    pub fn model_for(&self, template: u64, weights: CostWeights) -> CostModel {
        CostModel {
            weights,
            corrections: self.corrections_for(template),
        }
    }

    /// Templates with promoted corrections.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Templates with pending (unpromoted) state.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Day-boundary promotion: every pending template with enough
    /// observations is offered to `vet`; accepted corrections become
    /// active for subsequent compiles. `vet` is where the guardrail /
    /// flighting ladder plugs in — a template whose corrected plans fail
    /// vetting or canary stays unpromoted (and keeps smoothing).
    ///
    /// Ratios are measured against the estimates the model *actually
    /// produced* — which already carry the active correction — so a
    /// pending EWMA is a *residual* factor and promotion composes it onto
    /// the active one (re-clamped into the band). A promoted template's
    /// pending generation is consumed: the next day measures the residual
    /// of the new correction from scratch. A vetoed template keeps its
    /// pending state (and its idempotence tokens) and may promote later.
    ///
    /// Returns the promoted template ids. Deterministic: templates are
    /// visited in sorted order.
    pub fn end_of_day(&mut self, mut vet: impl FnMut(u64, &CostCorrections) -> bool) -> Vec<u64> {
        let mut tids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, s)| s.n >= self.min_observations)
            .map(|(&t, _)| t)
            .collect();
        tids.sort_unstable();
        let mut promoted = Vec::new();
        for tid in tids {
            let state = &self.pending[&tid];
            let prev = self.corrections_for(tid);
            let candidate = CostCorrections {
                rows: prev.rows,
                cpu: (prev.cpu * state.cpu).clamp(self.band.lo, self.band.hi),
                io: (prev.io * state.io).clamp(self.band.lo, self.band.hi),
            };
            debug_assert!(candidate.is_valid(), "promotion candidate degenerate");
            if !candidate.is_valid() {
                continue;
            }
            if vet(tid, &candidate) {
                self.active.insert(tid, candidate);
                self.pending.remove(&tid);
                promoted.push(tid);
            }
        }
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BAND: CorrectionBand = CorrectionBand::DEFAULT;

    fn est(cpu: f64, io: f64) -> CostEstimate {
        CostEstimate {
            cpu,
            io,
            ..CostEstimate::ZERO
        }
    }

    fn run(cpu: f64, io: f64) -> RunMetrics {
        RunMetrics {
            runtime: cpu + io,
            cpu_time: cpu,
            io_time: io,
            memory: 0.0,
        }
    }

    #[test]
    fn safe_ratio_neutralizes_every_degenerate_denominator() {
        for bad in [0.0, -0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(safe_ratio(10.0, bad, &BAND), 1.0, "estimated = {bad}");
        }
    }

    #[test]
    fn safe_ratio_neutralizes_every_degenerate_numerator() {
        for bad in [0.0, -0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(safe_ratio(bad, 10.0, &BAND), 1.0, "observed = {bad}");
        }
    }

    #[test]
    fn safe_ratio_clamps_to_the_band_and_never_degenerates() {
        assert_eq!(safe_ratio(2.0, 1.0, &BAND), 2.0);
        assert_eq!(safe_ratio(100.0, 1.0, &BAND), BAND.hi);
        assert_eq!(safe_ratio(1.0, 100.0, &BAND), BAND.lo);
        // Exhaustive-ish sweep: no input pair may ever produce a
        // non-finite or non-positive factor.
        let probes = [
            0.0,
            -0.0,
            1e-300,
            1.0,
            1e300,
            -1.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ];
        for &o in &probes {
            for &e in &probes {
                let r = safe_ratio(o, e, &BAND);
                assert!(r.is_finite() && r > 0.0, "safe_ratio({o}, {e}) = {r}");
                assert!((BAND.lo..=BAND.hi).contains(&r));
            }
        }
    }

    #[test]
    fn ingestion_is_idempotent_per_token() {
        let mut a = CorrectionStore::new();
        let mut b = CorrectionStore::new();
        for token in 0..5u64 {
            a.ingest(7, token, &est(1.0, 1.0), &run(2.0, 1.0), false);
            b.ingest(7, token, &est(1.0, 1.0), &run(2.0, 1.0), false);
            // b re-reports every run three times.
            assert!(!b.ingest(7, token, &est(1.0, 1.0), &run(2.0, 1.0), false));
            assert!(!b.ingest(7, token, &est(1.0, 1.0), &run(2.0, 1.0), false));
        }
        let pa = a.end_of_day(|_, _| true);
        let pb = b.end_of_day(|_, _| true);
        assert_eq!(pa, pb);
        assert_eq!(a.corrections_for(7), b.corrections_for(7));
    }

    #[test]
    fn smoothing_converges_on_a_fixed_ratio_stream() {
        let mut s = CorrectionStore::new();
        for token in 0..60u64 {
            assert!(s.ingest(1, token, &est(1.0, 2.0), &run(2.0, 1.0), false));
        }
        s.end_of_day(|_, _| true);
        let c = s.corrections_for(1);
        // Observed cpu is 2× the estimate, observed io 0.5×.
        assert!((c.cpu - 2.0).abs() < 1e-6, "cpu converged to {}", c.cpu);
        assert!((c.io - 0.5).abs() < 1e-6, "io converged to {}", c.io);
        assert!(c.is_valid());
    }

    #[test]
    fn quarantined_observations_are_excluded() {
        let mut s = CorrectionStore::new();
        for token in 0..10u64 {
            assert!(!s.ingest(3, token, &est(1.0, 1.0), &run(4.0, 4.0), true));
        }
        assert_eq!(s.pending_count(), 0);
        assert!(s.end_of_day(|_, _| true).is_empty());
        assert_eq!(s.corrections_for(3), CostCorrections::IDENTITY);
    }

    #[test]
    fn invalid_metrics_are_refused() {
        let mut s = CorrectionStore::new();
        let poisoned = RunMetrics {
            runtime: f64::NAN,
            cpu_time: 1.0,
            io_time: 1.0,
            memory: 0.0,
        };
        assert!(!s.ingest(3, 0, &est(1.0, 1.0), &poisoned, false));
    }

    #[test]
    fn corrections_never_apply_mid_day() {
        let mut s = CorrectionStore::new();
        for token in 0..10u64 {
            s.ingest(9, token, &est(1.0, 1.0), &run(3.0, 3.0), false);
        }
        // Plenty of pending signal, but no promotion has happened.
        assert_eq!(s.corrections_for(9), CostCorrections::IDENTITY);
        assert_eq!(
            s.model_for(9, CostWeights::DEFAULT).fingerprint_bits(),
            CostModel::DEFAULT.fingerprint_bits()
        );
        s.end_of_day(|_, _| true);
        assert_ne!(s.corrections_for(9), CostCorrections::IDENTITY);
    }

    #[test]
    fn promotion_is_gated_by_the_vet_closure() {
        let mut s = CorrectionStore::new();
        for token in 0..10u64 {
            s.ingest(4, token, &est(1.0, 1.0), &run(2.0, 2.0), false);
        }
        let rejected = s.end_of_day(|_, _| false);
        assert!(rejected.is_empty());
        assert_eq!(s.corrections_for(4), CostCorrections::IDENTITY);
        // The template keeps its pending state and can promote later.
        let promoted = s.end_of_day(|_, _| true);
        assert_eq!(promoted, vec![4]);
        assert!((s.corrections_for(4).cpu - 2.0).abs() < 1e-9);
    }

    #[test]
    fn promotions_compose_residual_ratios_and_stay_in_band() {
        let mut s = CorrectionStore::new();
        // Generation 1: observed cpu is 2× the (raw) estimate.
        for token in 0..10u64 {
            s.ingest(8, token, &est(1.0, 1.0), &run(2.0, 1.0), false);
        }
        assert_eq!(s.end_of_day(|_, _| true), vec![8]);
        assert!((s.corrections_for(8).cpu - 2.0).abs() < 1e-9);
        // Generation 2: estimates now carry the 2× correction, and the
        // residual observed/corrected ratio is 1.5 — true cost 3× raw.
        for token in 0..10u64 {
            s.ingest(8, token, &est(2.0, 1.0), &run(3.0, 1.0), false);
        }
        assert_eq!(s.end_of_day(|_, _| true), vec![8]);
        assert!((s.corrections_for(8).cpu - 3.0).abs() < 1e-9);
        // Generation 3: a wild residual composes but clamps to the band.
        for token in 0..10u64 {
            s.ingest(8, token, &est(3.0, 1.0), &run(30.0, 1.0), false);
        }
        s.end_of_day(|_, _| true);
        let c = s.corrections_for(8);
        assert_eq!(c.cpu, CorrectionBand::DEFAULT.hi);
        assert!(c.is_valid());
    }

    #[test]
    fn too_few_observations_never_promote() {
        let mut s = CorrectionStore::new();
        s.ingest(5, 0, &est(1.0, 1.0), &run(2.0, 2.0), false);
        s.ingest(5, 1, &est(1.0, 1.0), &run(2.0, 2.0), false);
        assert!(s.end_of_day(|_, _| true).is_empty(), "n < min_observations");
    }

    #[test]
    fn degenerate_estimates_teach_nothing() {
        let mut s = CorrectionStore::new();
        // Zero/NaN/negative estimated components: the guarded ratios are
        // identity, so even promotion leaves the model unchanged.
        for (token, cpu_est) in [(0u64, 0.0), (1, f64::NAN), (2, -5.0), (3, f64::INFINITY)] {
            s.ingest(6, token, &est(cpu_est, 0.0), &run(7.0, 7.0), false);
        }
        let promoted = s.end_of_day(|_, _| true);
        assert_eq!(promoted, vec![6]);
        let c = s.corrections_for(6);
        assert_eq!(c, CostCorrections::IDENTITY);
    }
}
