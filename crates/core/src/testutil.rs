//! Shared helpers for steer-core's own tests.
//!
//! Discovery on the tiny test-scale workloads is statistical: whether a
//! particular RNG seed surfaces a winning configuration depends on the
//! generator stream. Tests that need "a discovery run that found winners"
//! scan a few seeds instead of hard-coding one, so they stay stable across
//! RNG implementations (the workspace vendors its own).

use rand::rngs::StdRng;
use rand::SeedableRng;

use scope_exec::ABTester;
use scope_workload::{Workload, WorkloadProfile};

use crate::groups::{winning_configs, GroupConfig};
use crate::pipeline::{DiscoveryReport, Pipeline, PipelineParams};

/// A small workload-A discovery run that is guaranteed (by seed scanning)
/// to have produced at least one winner at `min_improvement_pct`.
pub struct DiscoveredWinners {
    pub workload: Workload,
    pub ab: ABTester,
    pub report: DiscoveryReport,
    pub winners: Vec<GroupConfig>,
}

/// Run the discovery pipeline over day 0 of a small Workload A until some
/// (A/B seed, search seed) pair yields winners. Panics if every pair comes
/// up empty — at that point the planted divergences are genuinely broken.
pub fn discover_winners(min_improvement_pct: f64) -> DiscoveredWinners {
    discover_winners_where(min_improvement_pct, |_| true)
}

/// Like [`discover_winners`], but keeps scanning until the discovery also
/// satisfies `accept` (e.g. "the winning group recurs on day 1").
pub fn discover_winners_where<F>(min_improvement_pct: f64, accept: F) -> DiscoveredWinners
where
    F: Fn(&DiscoveredWinners) -> bool,
{
    for ab_seed in [11u64, 5, 7, 13] {
        let ab = ABTester::new(ab_seed);
        let pipeline = Pipeline::new(
            ab.clone(),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                ..PipelineParams::default()
            },
        );
        for seed in 1..=6u64 {
            // Regenerated each attempt (generation is deterministic) so the
            // accepted result can own it without `Workload: Clone`.
            let workload = Workload::generate(WorkloadProfile::workload_a(0.08));
            let mut rng = StdRng::seed_from_u64(seed);
            let report = pipeline.discover(&workload.day(0), &mut rng);
            let winners = winning_configs(&report.outcomes, min_improvement_pct);
            if winners.is_empty() {
                continue;
            }
            let found = DiscoveredWinners {
                workload,
                ab: ab.clone(),
                report,
                winners,
            };
            if accept(&found) {
                return found;
            }
        }
    }
    panic!("no (ab, search) seed pair produced an acceptable discovery");
}
