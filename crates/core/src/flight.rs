//! Flighting: staged canary rollout, auto-rollback, and crash-safe hint
//! deployment.
//!
//! The QO-Advisor deployment story (PAPERS.md, arXiv 2210.13625) is that
//! steering survived production not because discovery got smarter but
//! because promotion got *slower*: a hint earns fleet-wide traffic by
//! passing through staged canaries, is watched by regression monitors
//! that roll it back automatically, and keeps being re-validated after it
//! is deployed. [`FlightController`] implements that lifecycle on top of
//! [`HintStore`]:
//!
//! * **State machine** — every hint owns a [`FlightState`] walking
//!   `Candidate → Canary(pct) → Ramping(pct…) → Deployed`, with
//!   `RolledBack` as the terminal failure state. Exposure per stage comes
//!   from [`FlightConfig`]; the traffic split is a deterministic hash of
//!   `(flight salt, job id)` ([`scope_exec::in_rollout`]), so replays are
//!   bit-identical and a recurring job stays on one side of the split.
//! * **Regression monitors with hysteresis** — per-day per-group mean
//!   runtime change feeds an N-strike counter (consecutive bad days) and
//!   a CUSUM accumulator (`s = max(0, s + x − drift)`). Either tripping
//!   rolls the flight back; a single noisy sample cannot (the paper's
//!   workloads are noisy by construction, §3.1.3).
//! * **Background revalidation** — a per-day budget re-runs a rotating
//!   sample of Deployed hints (which no longer pay for shadow baselines
//!   on the serving path) and feeds the same monitors; it also probes
//!   Quarantined hints, restoring them to Canary after
//!   [`FlightConfig::probation_clean_required`] consecutive clean probes
//!   — the probation path out of the old quarantine dead-end.
//! * **Crash safety by construction** — every state mutation is a
//!   [`FlightEvent`] applied through one `apply` function and appended to
//!   an in-memory journal with per-line checksums. Recovery replays the
//!   journal (optionally on top of a checksummed snapshot) through the
//!   *same* `apply`, so the reconstructed state is bit-identical to the
//!   original, and a torn tail (simulated with
//!   [`scope_exec::CrashPlan`]) truncates to the last durable event
//!   instead of corrupting the store.
//!
//! The controller journals through its own methods only. Mutating the
//! public [`FlightController::store`] directly (as offline experiments
//! that predate flighting do) bypasses the journal and forfeits the
//! recovery guarantee.

use std::collections::BTreeMap;

use scope_exec::{ABTester, CrashPlan, CrashRoll, RetryPolicy};
use scope_ir::stats::{mean, pct_change};
use scope_ir::Job;
use scope_lint::{catalog_invalid, ConfigVerdict, JobLint};
use scope_optimizer::{compile_job, compile_job_guarded, effective_config, RuleConfig};
use scope_trace::{count, record, Counter, Histogram};

use crate::deploy::{
    config_delta_fields, config_from_delta_fields, f64_from_hex, f64_to_hex, status_from_name,
    status_name, HintStatus, HintStore, StoredHint,
};
use crate::groups::GroupConfig;
use crate::guard::vet_candidate;

/// Where a flight is in its rollout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightStage {
    /// Ingested, not yet serving.
    Candidate,
    /// Serving [`FlightConfig::canary_pct`] of matching traffic.
    Canary,
    /// Serving `ramp_pcts[step]` of matching traffic.
    Ramping { step: usize },
    /// Serving all matching traffic; monitored only by background
    /// revalidation (no shadow baselines on the serving path).
    Deployed,
    /// Auto-rolled back on `day`. Terminal.
    RolledBack { day: u32 },
}

impl FlightStage {
    /// Percentage of matching traffic this stage serves steered.
    pub fn exposure_pct(self, config: &FlightConfig) -> u8 {
        match self {
            FlightStage::Candidate | FlightStage::RolledBack { .. } => 0,
            FlightStage::Canary => config.canary_pct,
            FlightStage::Ramping { step } => config.ramp_pcts.get(step).copied().unwrap_or(100),
            FlightStage::Deployed => 100,
        }
    }

    fn render(self) -> String {
        match self {
            FlightStage::Candidate => "candidate".into(),
            FlightStage::Canary => "canary".into(),
            FlightStage::Ramping { step } => format!("ramping:{step}"),
            FlightStage::Deployed => "deployed".into(),
            FlightStage::RolledBack { day } => format!("rolledback:{day}"),
        }
    }

    fn parse(s: &str) -> Option<FlightStage> {
        match s {
            "candidate" => Some(FlightStage::Candidate),
            "canary" => Some(FlightStage::Canary),
            "deployed" => Some(FlightStage::Deployed),
            _ => {
                if let Some(step) = s.strip_prefix("ramping:") {
                    Some(FlightStage::Ramping {
                        step: step.parse().ok()?,
                    })
                } else if let Some(day) = s.strip_prefix("rolledback:") {
                    Some(FlightStage::RolledBack {
                        day: day.parse().ok()?,
                    })
                } else {
                    None
                }
            }
        }
    }
}

/// Rollout policy and monitor thresholds.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightConfig {
    /// Exposure while canarying.
    pub canary_pct: u8,
    /// Exposure ladder between canary and deployed.
    pub ramp_pcts: Vec<u8>,
    /// A stage must last at least this many days before promotion.
    pub min_days_per_stage: u32,
    /// … and accumulate this many *clean observed* days.
    pub min_clean_days_per_stage: u32,
    /// A day-mean change above this is a strike.
    pub strike_threshold_pct: f64,
    /// Consecutive strikes that trip a rollback.
    pub n_strikes: u32,
    /// CUSUM drift: day-mean change is accumulated above this allowance.
    pub cusum_drift_pct: f64,
    /// CUSUM level that trips a rollback.
    pub cusum_threshold: f64,
    /// Deployed/quarantined hints revalidated per background sweep.
    pub revalidation_budget: usize,
    /// Jobs sampled per hint per background revalidation.
    pub revalidation_jobs: usize,
    /// Consecutive clean probes before a quarantined hint re-enters
    /// Canary.
    pub probation_clean_required: u32,
    /// A probe is clean only if its mean change stays at or below this.
    pub regression_threshold_pct: f64,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            canary_pct: 5,
            ramp_pcts: vec![25],
            min_days_per_stage: 1,
            min_clean_days_per_stage: 1,
            strike_threshold_pct: 10.0,
            n_strikes: 3,
            cusum_drift_pct: 5.0,
            cusum_threshold: 25.0,
            revalidation_budget: 2,
            revalidation_jobs: 3,
            probation_clean_required: 3,
            regression_threshold_pct: 5.0,
        }
    }
}

/// Per-hint rollout state. Monitor state (`strikes`, `cusum`,
/// `clean_days_in_stage`, `probation_clean`) is per-stage: every stage
/// transition resets it, so hysteresis is judged against the current
/// exposure level only.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightState {
    pub stage: FlightStage,
    pub stage_since_day: u32,
    pub clean_days_in_stage: u32,
    pub strikes: u32,
    pub cusum: f64,
    pub probation_clean: u32,
}

impl FlightState {
    fn new(day: u32) -> FlightState {
        FlightState {
            stage: FlightStage::Candidate,
            stage_since_day: day,
            clean_days_in_stage: 0,
            strikes: 0,
            cusum: 0.0,
            probation_clean: 0,
        }
    }
}

/// One journaled state transition. Everything the controller ever does to
/// its durable state is one of these, applied through one code path by
/// both live execution and crash recovery.
#[derive(Clone, Debug, PartialEq)]
pub enum FlightEvent {
    /// A discovery winner entered the store (as `Candidate`).
    Install {
        group: String,
        config: RuleConfig,
        base_change_pct: f64,
        day: u32,
        status: HintStatus,
    },
    /// A flight moved to a new stage.
    Stage {
        group: String,
        to: FlightStage,
        day: u32,
    },
    /// A hint's lifecycle status changed.
    Status { group: String, status: HintStatus },
    /// One day's observed mean runtime change for a group (monitor food).
    Observe {
        group: String,
        mean_change_pct: f64,
        n: u32,
        day: u32,
    },
    /// One background probation probe of a quarantined hint.
    Probe { group: String, clean: bool },
}

fn render_event(event: &FlightEvent) -> String {
    match event {
        FlightEvent::Install {
            group,
            config,
            base_change_pct,
            day,
            status,
        } => {
            let (minus, plus) = config_delta_fields(config);
            format!(
                "install\t{group}\t{}\t{minus}\t{plus}\t{}\t{day}",
                status_name(*status),
                f64_to_hex(*base_change_pct)
            )
        }
        FlightEvent::Stage { group, to, day } => {
            format!("stage\t{group}\t{}\t{day}", to.render())
        }
        FlightEvent::Status { group, status } => {
            format!("status\t{group}\t{}", status_name(*status))
        }
        FlightEvent::Observe {
            group,
            mean_change_pct,
            n,
            day,
        } => format!("obs\t{group}\t{}\t{n}\t{day}", f64_to_hex(*mean_change_pct)),
        FlightEvent::Probe { group, clean } => {
            format!("probe\t{group}\t{}", if *clean { "clean" } else { "dirty" })
        }
    }
}

/// Parse `"<seq>\t<payload>"`. `None` on any malformation — recovery
/// treats that as a torn tail, not a guess.
fn parse_event_body(body: &str) -> Option<(u64, FlightEvent)> {
    let mut it = body.split('\t');
    let seq: u64 = it.next()?.parse().ok()?;
    let kind = it.next()?;
    let event = match kind {
        "install" => FlightEvent::Install {
            group: it.next()?.to_string(),
            status: status_from_name(it.next()?)?,
            config: {
                let minus = it.next()?;
                let plus = it.next()?;
                config_from_delta_fields(minus, plus).ok()?
            },
            base_change_pct: f64_from_hex(it.next()?)?,
            day: it.next()?.parse().ok()?,
        },
        "stage" => FlightEvent::Stage {
            group: it.next()?.to_string(),
            to: FlightStage::parse(it.next()?)?,
            day: it.next()?.parse().ok()?,
        },
        "status" => FlightEvent::Status {
            group: it.next()?.to_string(),
            status: status_from_name(it.next()?)?,
        },
        "obs" => FlightEvent::Observe {
            group: it.next()?.to_string(),
            mean_change_pct: f64_from_hex(it.next()?)?,
            n: it.next()?.parse().ok()?,
            day: it.next()?.parse().ok()?,
        },
        "probe" => FlightEvent::Probe {
            group: it.next()?.to_string(),
            clean: match it.next()? {
                "clean" => true,
                "dirty" => false,
                _ => return None,
            },
        },
        _ => return None,
    };
    if it.next().is_some() {
        return None;
    }
    Some((seq, event))
}

/// FNV-1a, the workspace's stock content checksum: stable across
/// platforms and rust versions (unlike `DefaultHasher`, which is only
/// stable within a process — fine for traffic splits, not for bytes that
/// must be re-verifiable after a restart).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic per-flight salt for the traffic split.
pub(crate) fn flight_salt(group: &str) -> u64 {
    fnv64(group.as_bytes())
}

/// Append-only event journal with per-line checksums. A line is
/// `"<seq>\t<payload>\t#<fnv64-hex>"`; the checksum covers everything
/// before the `\t#`. An armed [`CrashPlan`] makes appends fail the way a
/// real crash does: one torn (prefix-only) write, then nothing.
#[derive(Clone, Debug, Default)]
pub struct FlightJournal {
    lines: Vec<String>,
    next_seq: u64,
    crash: Option<CrashPlan>,
}

impl FlightJournal {
    fn append(&mut self, event: &FlightEvent) {
        let body = format!("{}\t{}", self.next_seq, render_event(event));
        self.next_seq += 1;
        let line = format!("{body}\t#{:016x}", fnv64(body.as_bytes()));
        count(Counter::FlightJournalEvents, 1);
        match self
            .crash
            .as_mut()
            .map_or(CrashRoll::Alive, CrashPlan::roll)
        {
            CrashRoll::Alive => self.lines.push(line),
            CrashRoll::Torn(keep) => {
                let keep = keep.min(line.len());
                self.lines.push(line[..keep].to_string());
            }
            CrashRoll::Dead => {}
        }
    }

    /// The journal as it would read back from stable storage.
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    /// Whether an armed crash plan has fired.
    pub fn crashed(&self) -> bool {
        self.crash.as_ref().is_some_and(CrashPlan::crashed)
    }
}

/// Split journal text into verified events. Stops at the first corrupt
/// line (bad checksum, unparsable body): in an append-only log anything
/// after a torn write is untrustworthy. Returns the events and how many
/// trailing lines were discarded.
fn parse_journal(text: &str) -> (Vec<(u64, FlightEvent, String)>, usize) {
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let verified = line.rsplit_once("\t#").and_then(|(body, ck)| {
            let sum = u64::from_str_radix(ck, 16).ok()?;
            (sum == fnv64(body.as_bytes())).then_some(body)
        });
        match verified.and_then(parse_event_body) {
            Some((seq, event)) => out.push((seq, event, (*line).to_string())),
            None => return (out, lines.len() - i),
        }
    }
    (out, 0)
}

/// What a recovery replayed and what it had to discard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Events applied on top of the starting state.
    pub replayed_events: usize,
    /// Trailing journal lines dropped as torn/corrupt.
    pub discarded_lines: usize,
    /// Sequence number the snapshot covered (0 without a snapshot).
    pub snapshot_seq: u64,
}

/// Why a snapshot could not be loaded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoveryError {
    /// Header missing or not a supported version.
    SnapshotVersion(String),
    /// The trailing checksum did not match the snapshot body.
    SnapshotChecksum,
    /// A body line was neither a hint nor a flight record.
    SnapshotMalformed { line: usize, what: String },
    /// The embedded hint store failed to parse.
    SnapshotHints(crate::deploy::HintParseError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::SnapshotVersion(h) => write!(f, "bad snapshot header: `{h}`"),
            RecoveryError::SnapshotChecksum => write!(f, "snapshot checksum mismatch"),
            RecoveryError::SnapshotMalformed { line, what } => {
                write!(f, "snapshot line {line}: malformed `{what}`")
            }
            RecoveryError::SnapshotHints(e) => write!(f, "snapshot hints: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Per-group serving stats for one day.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupDayStats {
    /// Jobs whose default signature matched this flight.
    pub matching: usize,
    /// … of which served the steered plan.
    pub steered: usize,
    /// … of which stayed on the default plan (hash split, zero exposure,
    /// or inactive hint).
    pub held_back: usize,
    /// Steered runs that died and re-ran on the default plan.
    pub fallbacks: usize,
    /// Steered/baseline pairs that produced an observation.
    pub observed: usize,
    /// Mean runtime change of today's observations (0 when none).
    pub mean_change_pct: f64,
}

/// One day of serving through the flight layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlightDayReport {
    pub day: u32,
    /// Jobs offered.
    pub jobs: usize,
    /// Jobs whose group has no flight (served default; not simulated).
    pub unmatched: usize,
    /// Jobs whose default compile failed.
    pub skipped: usize,
    pub steered: usize,
    pub held_back: usize,
    /// Hints vetoed at serve time (fatal compile or vet failure) — each
    /// veto also quarantined the hint.
    pub vetoes: usize,
    /// Steered jobs the static analyzer or a benign compile error kept on
    /// the default plan.
    pub static_skips: usize,
    pub fallbacks: usize,
    pub by_group: BTreeMap<String, GroupDayStats>,
}

/// Stage changes decided by one [`FlightController::advance`] call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AdvanceReport {
    pub day: u32,
    pub promotions: Vec<(String, FlightStage)>,
    pub rollbacks: Vec<String>,
}

/// What one background revalidation sweep did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BackgroundReport {
    pub day: u32,
    /// Deployed hints that produced a monitor observation.
    pub observed: Vec<String>,
    /// Quarantined hints probed (clean or dirty).
    pub probed: Vec<String>,
    /// Quarantined hints restored to Canary this sweep.
    pub restored: Vec<String>,
    /// Deployed hints quarantined by a fatal compile / vet failure.
    pub quarantined: Vec<String>,
    /// Picked hints whose group had no matching jobs today.
    pub absent: usize,
}

/// The flighting state machine over a [`HintStore`].
#[derive(Clone, Debug)]
pub struct FlightController {
    /// The underlying store. Read freely; direct mutation bypasses the
    /// journal and forfeits crash recovery (offline experiments only).
    pub store: HintStore,
    flights: BTreeMap<String, FlightState>,
    pub config: FlightConfig,
    journal: FlightJournal,
}

impl FlightController {
    pub fn new(config: FlightConfig) -> FlightController {
        FlightController {
            store: HintStore::new(),
            flights: BTreeMap::new(),
            config,
            journal: FlightJournal::default(),
        }
    }

    /// The one place state changes: mutate, then journal. Recovery calls
    /// the same `apply` per journaled event, which is what makes replayed
    /// state bit-identical to live state.
    fn emit(&mut self, event: FlightEvent) {
        self.apply(&event);
        self.journal.append(&event);
    }

    fn apply(&mut self, event: &FlightEvent) {
        match event {
            FlightEvent::Install {
                group,
                config,
                base_change_pct,
                day,
                status,
            } => {
                self.store.insert_hint(StoredHint {
                    group: group.clone(),
                    config: config.clone(),
                    base_change_pct: *base_change_pct,
                    discovered_day: *day,
                    status: *status,
                    validations: Vec::new(),
                    failed_validations: 0,
                });
                self.flights.insert(group.clone(), FlightState::new(*day));
            }
            FlightEvent::Stage { group, to, day } => {
                if let Some(f) = self.flights.get_mut(group) {
                    f.stage = *to;
                    f.stage_since_day = *day;
                    f.clean_days_in_stage = 0;
                    f.strikes = 0;
                    f.cusum = 0.0;
                    f.probation_clean = 0;
                }
            }
            FlightEvent::Status { group, status } => {
                self.store.set_status(group, *status);
            }
            FlightEvent::Observe {
                group,
                mean_change_pct,
                ..
            } => {
                let strike_thr = self.config.strike_threshold_pct;
                let drift = self.config.cusum_drift_pct;
                if let Some(f) = self.flights.get_mut(group) {
                    if *mean_change_pct > strike_thr {
                        f.strikes += 1;
                    } else {
                        f.strikes = 0;
                        f.clean_days_in_stage += 1;
                    }
                    f.cusum = (f.cusum + mean_change_pct - drift).max(0.0);
                }
            }
            FlightEvent::Probe { group, clean } => {
                if let Some(f) = self.flights.get_mut(group) {
                    f.probation_clean = if *clean { f.probation_clean + 1 } else { 0 };
                }
            }
        }
    }

    /// Ingest discovery winners as `Candidate` flights (same
    /// best-per-group and catalog-vetting rules as
    /// [`HintStore::install`], but journaled). Returns how many were
    /// stored.
    pub fn ingest(&mut self, winners: &[GroupConfig], day: u32) -> usize {
        let mut installed = 0;
        for w in winners {
            let key = w.group.to_bit_string();
            let keep = self
                .store
                .hint(&key)
                .map(|e| w.base_change_pct < e.base_change_pct)
                .unwrap_or(true);
            if !keep {
                continue;
            }
            let status = if catalog_invalid(&w.config).is_empty() {
                HintStatus::Active
            } else {
                HintStatus::Quarantined
            };
            self.emit(FlightEvent::Install {
                group: key,
                config: w.config.clone(),
                base_change_pct: w.base_change_pct,
                day,
                status,
            });
            installed += 1;
        }
        installed
    }

    /// [`Self::ingest`] and immediately promote every resulting active
    /// candidate to `Deployed` (100 % exposure). For offline experiments
    /// that need yesterday's install-everything behaviour; production-style
    /// drivers should let [`Self::advance`] walk the stages instead.
    pub fn ingest_deployed(&mut self, winners: &[GroupConfig], day: u32) -> usize {
        let n = self.ingest(winners, day);
        let candidates: Vec<String> = self
            .flights
            .iter()
            .filter(|(_, f)| f.stage == FlightStage::Candidate)
            .map(|(k, _)| k.clone())
            .collect();
        for group in candidates {
            if self
                .store
                .hint(&group)
                .is_some_and(|h| h.status == HintStatus::Active)
            {
                self.emit(FlightEvent::Stage {
                    group,
                    to: FlightStage::Deployed,
                    day,
                });
            }
        }
        n
    }

    /// The flight for a group key, if any.
    pub fn flight(&self, group: &str) -> Option<&FlightState> {
        self.flights.get(group)
    }

    /// Iterate flights in deterministic (sorted-key) order.
    pub fn flights(&self) -> impl Iterator<Item = (&String, &FlightState)> {
        self.flights.iter()
    }

    /// Serve one day of traffic through the flight layer.
    ///
    /// For each job whose default-plan signature has a flight: the hash
    /// split decides steered vs held back; steered jobs run through the
    /// full guardrail (static gate, budgeted compile, result-fingerprint
    /// vet, fall back to the default plan if the steered run dies — fatal
    /// trips quarantine the hint on the spot). While a flight is in a
    /// measured stage (Canary/Ramping) every steered run is paired with a
    /// shadow baseline run and the day's mean change feeds the monitors;
    /// Deployed flights skip the shadow (that cost moves to
    /// [`Self::revalidate_background`]). Held-back and unmatched jobs are
    /// counted but not simulated — they run the default plan by
    /// definition.
    pub fn serve_day(
        &mut self,
        jobs: &[Job],
        ab: &ABTester,
        policy: &RetryPolicy,
        day: u32,
    ) -> FlightDayReport {
        let _span = scope_trace::span("flight.serve_day");
        let mut report = FlightDayReport {
            day,
            ..FlightDayReport::default()
        };
        let mut day_changes: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        for job in jobs {
            report.jobs += 1;
            let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                report.skipped += 1;
                continue;
            };
            let key = default.signature.to_bit_string();
            let Some(flight) = self.flights.get(&key) else {
                report.unmatched += 1;
                continue;
            };
            let stage = flight.stage;
            let exposure = stage.exposure_pct(&self.config);
            let active = self
                .store
                .hint(&key)
                .is_some_and(|h| h.status == HintStatus::Active);
            let stats = report.by_group.entry(key.clone()).or_default();
            stats.matching += 1;
            if exposure == 0
                || !active
                || !scope_exec::in_rollout(job.id.0, flight_salt(&key), exposure)
            {
                stats.held_back += 1;
                report.held_back += 1;
                count(Counter::FlightHeldBack, 1);
                continue;
            }
            let hint_cfg = self
                .store
                .hint(&key)
                .expect("active hint exists")
                .config
                .clone();
            let effective = effective_config(job, &hint_cfg);
            if matches!(
                JobLint::new(&job.plan).classify(&effective),
                ConfigVerdict::Invalid { .. }
            ) {
                report.static_skips += 1;
                continue;
            }
            let steered = match compile_job_guarded(job, &hint_cfg, &self.store.compile_budget) {
                Ok(s) => s,
                Err(e) if e.is_fatal() => {
                    self.emit(FlightEvent::Status {
                        group: key,
                        status: HintStatus::Quarantined,
                    });
                    report.vetoes += 1;
                    continue;
                }
                Err(_) => {
                    report.static_skips += 1;
                    continue;
                }
            };
            if vet_candidate(&default, &steered).is_err() {
                self.emit(FlightEvent::Status {
                    group: key,
                    status: HintStatus::Quarantined,
                });
                report.vetoes += 1;
                continue;
            }
            let run = ab.run_with_retry(job, &steered.plan, 0, policy);
            let stats = report.by_group.entry(key.clone()).or_default();
            stats.steered += 1;
            report.steered += 1;
            count(Counter::FlightServedSteered, 1);
            if !run.outcome.is_success() {
                // Guardrail: the job re-runs on its default plan.
                let _fallback = ab.run_with_retry(job, &default.plan, 0, policy);
                stats.fallbacks += 1;
                report.fallbacks += 1;
                continue;
            }
            if stage != FlightStage::Deployed {
                let baseline = ab.run_with_retry(job, &default.plan, 0, policy);
                if baseline.outcome.is_success() {
                    day_changes
                        .entry(key)
                        .or_default()
                        .push(pct_change(baseline.metrics.runtime, run.metrics.runtime));
                }
            }
        }
        for (group, changes) in day_changes {
            let m = mean(&changes);
            let stats = report.by_group.entry(group.clone()).or_default();
            stats.observed = changes.len();
            stats.mean_change_pct = m;
            self.emit(FlightEvent::Observe {
                group,
                mean_change_pct: m,
                n: changes.len() as u32,
                day,
            });
            count(Counter::FlightObservations, 1);
        }
        report
    }

    /// End-of-day stage decisions: roll back tripped monitors (N
    /// consecutive strikes or CUSUM over threshold), promote candidates to
    /// Canary, and promote measured stages that aged and stayed clean.
    pub fn advance(&mut self, day: u32) -> AdvanceReport {
        let _span = scope_trace::span("flight.advance");
        let mut report = AdvanceReport {
            day,
            ..AdvanceReport::default()
        };
        let groups: Vec<String> = self.flights.keys().cloned().collect();
        for key in groups {
            let Some(f) = self.flights.get(&key) else {
                continue;
            };
            let stage = f.stage;
            let since = f.stage_since_day;
            let clean = f.clean_days_in_stage;
            let tripped =
                f.strikes >= self.config.n_strikes || f.cusum > self.config.cusum_threshold;
            let active = self
                .store
                .hint(&key)
                .is_some_and(|h| h.status == HintStatus::Active);
            match stage {
                FlightStage::Candidate => {
                    if active {
                        self.emit(FlightEvent::Stage {
                            group: key.clone(),
                            to: FlightStage::Canary,
                            day,
                        });
                        count(Counter::FlightPromotions, 1);
                        report.promotions.push((key, FlightStage::Canary));
                    }
                }
                FlightStage::Canary | FlightStage::Ramping { .. } | FlightStage::Deployed => {
                    if !active {
                        continue;
                    }
                    if tripped {
                        record(
                            Histogram::FlightDaysToRollback,
                            u64::from(day.saturating_sub(since)),
                        );
                        count(Counter::FlightRollbacks, 1);
                        self.emit(FlightEvent::Stage {
                            group: key.clone(),
                            to: FlightStage::RolledBack { day },
                            day,
                        });
                        self.emit(FlightEvent::Status {
                            group: key.clone(),
                            status: HintStatus::Suspended,
                        });
                        report.rollbacks.push(key);
                    } else if stage != FlightStage::Deployed
                        && day.saturating_sub(since) >= self.config.min_days_per_stage
                        && clean >= self.config.min_clean_days_per_stage
                    {
                        let to = self.next_stage(stage);
                        self.emit(FlightEvent::Stage {
                            group: key.clone(),
                            to,
                            day,
                        });
                        count(Counter::FlightPromotions, 1);
                        report.promotions.push((key, to));
                    }
                }
                FlightStage::RolledBack { .. } => {}
            }
        }
        report
    }

    fn next_stage(&self, stage: FlightStage) -> FlightStage {
        match stage {
            FlightStage::Candidate => FlightStage::Canary,
            FlightStage::Canary => {
                if self.config.ramp_pcts.is_empty() {
                    FlightStage::Deployed
                } else {
                    FlightStage::Ramping { step: 0 }
                }
            }
            FlightStage::Ramping { step } => {
                if step + 1 < self.config.ramp_pcts.len() {
                    FlightStage::Ramping { step: step + 1 }
                } else {
                    FlightStage::Deployed
                }
            }
            other => other,
        }
    }

    /// Background revalidation sweep: spend
    /// [`FlightConfig::revalidation_budget`] on a rotating
    /// (day-offset) sample of Deployed hints — their only monitoring,
    /// since deployed serving pays no shadow baselines — and of
    /// Quarantined hints, whose clean probes accumulate toward probation
    /// release back into Canary.
    pub fn revalidate_background(
        &mut self,
        jobs: &[Job],
        ab: &ABTester,
        day: u32,
    ) -> BackgroundReport {
        let _span = scope_trace::span("flight.revalidate");
        let mut report = BackgroundReport {
            day,
            ..BackgroundReport::default()
        };
        let eligible: Vec<String> = self
            .flights
            .iter()
            .filter_map(|(k, f)| {
                let status = self.store.hint(k)?.status;
                let deployed_active =
                    f.stage == FlightStage::Deployed && status == HintStatus::Active;
                let quarantined = status == HintStatus::Quarantined;
                (deployed_active || quarantined).then(|| k.clone())
            })
            .collect();
        if eligible.is_empty() {
            return report;
        }
        let budget = self.config.revalidation_budget.max(1);
        let start = (day as usize).wrapping_mul(budget) % eligible.len();
        let picked: Vec<String> = (0..budget.min(eligible.len()))
            .map(|i| eligible[(start + i) % eligible.len()].clone())
            .collect();

        // Group today's jobs by default signature, only for picked groups.
        let mut by_group: BTreeMap<&str, Vec<&Job>> = BTreeMap::new();
        for job in jobs {
            if let Ok(compiled) = compile_job(job, &RuleConfig::default_config()) {
                let key = compiled.signature.to_bit_string();
                if let Some(g) = picked.iter().find(|p| **p == key) {
                    by_group.entry(g.as_str()).or_default().push(job);
                }
            }
        }

        for key in &picked {
            let Some(group_jobs) = by_group.get(key.as_str()) else {
                report.absent += 1;
                continue;
            };
            let hint = self.store.hint(key).expect("picked hints exist");
            let status = hint.status;
            let hint_cfg = hint.config.clone();
            let mut changes = Vec::new();
            let mut dirty = false;
            let mut fatal = false;
            for job in group_jobs.iter().take(self.config.revalidation_jobs.max(1)) {
                let Ok(default) = compile_job(job, &RuleConfig::default_config()) else {
                    continue;
                };
                let effective = effective_config(job, &hint_cfg);
                if matches!(
                    JobLint::new(&job.plan).classify(&effective),
                    ConfigVerdict::Invalid { .. }
                ) {
                    // Benign for a deployed hint (same as revalidate); for
                    // a probation probe it means the hint still cannot
                    // serve this group — not clean.
                    if status == HintStatus::Quarantined {
                        dirty = true;
                    }
                    continue;
                }
                match compile_job_guarded(job, &hint_cfg, &self.store.compile_budget) {
                    Ok(steered) => {
                        if vet_candidate(&default, &steered).is_err() {
                            fatal = true;
                            break;
                        }
                        let sm = ab.run_outcome(job, &steered.plan, 0);
                        if !sm.outcome.is_success() {
                            dirty = true;
                            continue;
                        }
                        let dm = ab.run_outcome(job, &default.plan, 0);
                        if !dm.outcome.is_success() {
                            continue;
                        }
                        changes.push(pct_change(dm.metrics.runtime, sm.metrics.runtime));
                    }
                    Err(e) if e.is_fatal() => {
                        fatal = true;
                        break;
                    }
                    Err(_) => continue,
                }
            }
            match status {
                HintStatus::Active => {
                    if fatal {
                        self.emit(FlightEvent::Status {
                            group: key.clone(),
                            status: HintStatus::Quarantined,
                        });
                        report.quarantined.push(key.clone());
                    } else if !changes.is_empty() {
                        self.emit(FlightEvent::Observe {
                            group: key.clone(),
                            mean_change_pct: mean(&changes),
                            n: changes.len() as u32,
                            day,
                        });
                        count(Counter::FlightObservations, 1);
                        report.observed.push(key.clone());
                    }
                }
                HintStatus::Quarantined => {
                    let clean = !fatal
                        && !dirty
                        && !changes.is_empty()
                        && mean(&changes) <= self.config.regression_threshold_pct;
                    self.emit(FlightEvent::Probe {
                        group: key.clone(),
                        clean,
                    });
                    report.probed.push(key.clone());
                    let released = self
                        .flights
                        .get(key)
                        .is_some_and(|f| f.probation_clean >= self.config.probation_clean_required);
                    if clean && released {
                        self.emit(FlightEvent::Status {
                            group: key.clone(),
                            status: HintStatus::Active,
                        });
                        self.emit(FlightEvent::Stage {
                            group: key.clone(),
                            to: FlightStage::Canary,
                            day,
                        });
                        count(Counter::FlightRestorations, 1);
                        report.restored.push(key.clone());
                    }
                }
                HintStatus::Suspended => {}
            }
        }
        report
    }

    /// Arm a simulated crash: the `n`-th journal append from now tears,
    /// later ones are lost. [`Self::crashed`] reports once it fires.
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.journal.crash = Some(plan);
    }

    /// Whether an armed crash has fired (the "process" is dead; its
    /// in-memory state is no longer backed by the journal).
    pub fn crashed(&self) -> bool {
        self.journal.crashed()
    }

    /// The journal as it would survive on stable storage.
    pub fn journal_text(&self) -> String {
        self.journal.text()
    }

    /// Serialize the full durable state: a versioned header carrying the
    /// journal sequence watermark, the hint store (lossless hint-text
    /// lines), every flight state, and a trailing whole-body checksum.
    /// Two controllers with bit-identical state produce bit-identical
    /// snapshots, which is how the recovery tests check fidelity.
    pub fn snapshot_text(&self) -> String {
        let mut lines = vec![format!("flightsnap\tv1\tseq:{}", self.journal.next_seq)];
        for l in self.store.to_hint_text().lines() {
            if !l.is_empty() {
                lines.push(format!("hint\t{l}"));
            }
        }
        for (k, f) in &self.flights {
            lines.push(format!(
                "flight\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                k,
                f.stage.render(),
                f.stage_since_day,
                f.clean_days_in_stage,
                f.strikes,
                f64_to_hex(f.cusum),
                f.probation_clean
            ));
        }
        let body = lines.join("\n");
        format!("{body}\nend\t#{:016x}", fnv64(body.as_bytes()))
    }

    /// Rebuild a controller from durable state: parse the snapshot (or
    /// start from genesis), then replay every journal event past the
    /// snapshot's sequence watermark through the same `apply` used live.
    /// Torn/corrupt journal tails are discarded, not guessed at.
    pub fn recover(
        snapshot: Option<&str>,
        journal_text: &str,
        config: FlightConfig,
    ) -> Result<(FlightController, RecoveryReport), RecoveryError> {
        let _span = scope_trace::span("flight.recover");
        let mut c = match snapshot {
            Some(s) => parse_snapshot(s, config)?,
            None => FlightController::new(config),
        };
        let snapshot_seq = c.journal.next_seq;
        let (entries, discarded) = parse_journal(journal_text);
        let mut replayed = 0usize;
        for (seq, event, line) in entries {
            c.journal.lines.push(line);
            if seq >= c.journal.next_seq {
                c.apply(&event);
                c.journal.next_seq = seq + 1;
                replayed += 1;
            }
        }
        count(Counter::FlightRecoveries, 1);
        record(Histogram::FlightReplayedEvents, replayed as u64);
        Ok((
            c,
            RecoveryReport {
                replayed_events: replayed,
                discarded_lines: discarded,
                snapshot_seq,
            },
        ))
    }
}

fn parse_snapshot(text: &str, config: FlightConfig) -> Result<FlightController, RecoveryError> {
    let Some((body, tail)) = text.rsplit_once("\nend\t#") else {
        return Err(RecoveryError::SnapshotChecksum);
    };
    let ok = u64::from_str_radix(tail.trim_end(), 16)
        .map(|sum| sum == fnv64(body.as_bytes()))
        .unwrap_or(false);
    if !ok {
        return Err(RecoveryError::SnapshotChecksum);
    }
    let mut lines = body.lines().enumerate();
    let header = lines.next().map(|(_, l)| l).unwrap_or("");
    let seq = header
        .strip_prefix("flightsnap\tv1\tseq:")
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| RecoveryError::SnapshotVersion(header.to_string()))?;
    let mut hint_lines = Vec::new();
    let mut flights = BTreeMap::new();
    for (i, line) in lines {
        if let Some(h) = line.strip_prefix("hint\t") {
            hint_lines.push(h);
            continue;
        }
        let malformed = || RecoveryError::SnapshotMalformed {
            line: i + 1,
            what: line.to_string(),
        };
        let rest = line.strip_prefix("flight\t").ok_or_else(malformed)?;
        let fields: Vec<&str> = rest.split('\t').collect();
        if fields.len() != 7 {
            return Err(malformed());
        }
        let state = (|| {
            Some(FlightState {
                stage: FlightStage::parse(fields[1])?,
                stage_since_day: fields[2].parse().ok()?,
                clean_days_in_stage: fields[3].parse().ok()?,
                strikes: fields[4].parse().ok()?,
                cusum: f64_from_hex(fields[5])?,
                probation_clean: fields[6].parse().ok()?,
            })
        })()
        .ok_or_else(malformed)?;
        flights.insert(fields[0].to_string(), state);
    }
    let store =
        HintStore::from_hint_text(&hint_lines.join("\n")).map_err(RecoveryError::SnapshotHints)?;
    Ok(FlightController {
        store,
        flights,
        config,
        journal: FlightJournal {
            lines: Vec::new(),
            next_seq: seq,
            crash: None,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::JobId;
    use scope_optimizer::{RuleCatalog, RuleSet, RuleSignature};

    /// A non-required, on-by-default rule (so disabling it sticks).
    fn optional_rule() -> scope_optimizer::RuleId {
        RuleConfig::default_config()
            .enabled()
            .difference(RuleCatalog::global().required())
            .iter()
            .next()
            .expect("catalog has optional default rules")
    }

    fn winner(bits: &str, pct: f64) -> GroupConfig {
        let mut config = RuleConfig::default_config();
        config.disable(optional_rule());
        GroupConfig {
            group: RuleSignature(RuleSet::from_bit_string(bits)),
            config,
            base_change_pct: pct,
            base_job: JobId(1),
        }
    }

    fn controller_with(bits: &str, pct: f64) -> (FlightController, String) {
        let mut c = FlightController::new(FlightConfig::default());
        assert_eq!(c.ingest(&[winner(bits, pct)], 0), 1);
        let key = RuleSet::from_bit_string(bits).to_bit_string();
        (c, key)
    }

    #[test]
    fn stage_render_parse_round_trip() {
        for stage in [
            FlightStage::Candidate,
            FlightStage::Canary,
            FlightStage::Ramping { step: 0 },
            FlightStage::Ramping { step: 3 },
            FlightStage::Deployed,
            FlightStage::RolledBack { day: 17 },
        ] {
            assert_eq!(FlightStage::parse(&stage.render()), Some(stage));
        }
        assert_eq!(FlightStage::parse("ramping:x"), None);
        assert_eq!(FlightStage::parse("launched"), None);
    }

    #[test]
    fn exposure_follows_the_stage_ladder() {
        let cfg = FlightConfig {
            canary_pct: 5,
            ramp_pcts: vec![25, 50],
            ..FlightConfig::default()
        };
        assert_eq!(FlightStage::Candidate.exposure_pct(&cfg), 0);
        assert_eq!(FlightStage::Canary.exposure_pct(&cfg), 5);
        assert_eq!(FlightStage::Ramping { step: 0 }.exposure_pct(&cfg), 25);
        assert_eq!(FlightStage::Ramping { step: 1 }.exposure_pct(&cfg), 50);
        assert_eq!(FlightStage::Deployed.exposure_pct(&cfg), 100);
        assert_eq!(FlightStage::RolledBack { day: 1 }.exposure_pct(&cfg), 0);
    }

    #[test]
    fn events_survive_the_journal_round_trip() {
        let (mut c, key) = controller_with("101", -30.0);
        c.emit(FlightEvent::Stage {
            group: key.clone(),
            to: FlightStage::Canary,
            day: 1,
        });
        c.emit(FlightEvent::Observe {
            group: key.clone(),
            mean_change_pct: -12.5,
            n: 4,
            day: 1,
        });
        c.emit(FlightEvent::Probe {
            group: key.clone(),
            clean: true,
        });
        c.emit(FlightEvent::Status {
            group: key,
            status: HintStatus::Suspended,
        });
        let (entries, discarded) = parse_journal(&c.journal_text());
        assert_eq!(discarded, 0);
        assert_eq!(entries.len(), 5); // install + the four above
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries.last().unwrap().0, 4);
        // Replay reproduces the exact event values.
        assert!(matches!(
            &entries[2].1,
            FlightEvent::Observe { mean_change_pct, n: 4, .. } if *mean_change_pct == -12.5
        ));
    }

    #[test]
    fn corrupt_journal_lines_cut_the_tail() {
        let (mut c, key) = controller_with("101", -30.0);
        for day in 1..=3 {
            c.emit(FlightEvent::Observe {
                group: key.clone(),
                mean_change_pct: -1.0,
                n: 1,
                day,
            });
        }
        let text = c.journal_text();
        // Flip one byte in the second line's payload: that line and both
        // after it are discarded, the line before survives.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = lines[1].replace("obs", "obz");
        let (entries, discarded) = parse_journal(&lines.join("\n"));
        assert_eq!(entries.len(), 1);
        assert_eq!(discarded, 3);
    }

    #[test]
    fn observations_drive_strikes_and_cusum() {
        let (mut c, key) = controller_with("101", -30.0);
        c.advance(0); // Candidate → Canary
        assert_eq!(c.flight(&key).unwrap().stage, FlightStage::Canary);
        // Two bad days: strikes build, no trip yet (n_strikes = 3).
        for day in 1..=2 {
            c.emit(FlightEvent::Observe {
                group: key.clone(),
                mean_change_pct: 12.0,
                n: 3,
                day,
            });
        }
        assert_eq!(c.flight(&key).unwrap().strikes, 2);
        assert!(c.advance(2).rollbacks.is_empty());
        // A clean day resets the strike count and counts toward promotion.
        c.emit(FlightEvent::Observe {
            group: key.clone(),
            mean_change_pct: -5.0,
            n: 3,
            day: 3,
        });
        let f = c.flight(&key).unwrap();
        assert_eq!(f.strikes, 0);
        assert_eq!(f.clean_days_in_stage, 1);
        // Sustained moderate regression trips CUSUM even without three
        // consecutive strikes ever forming.
        for day in 4..=7 {
            c.emit(FlightEvent::Observe {
                group: key.clone(),
                mean_change_pct: 20.0,
                n: 3,
                day,
            });
            if !c.advance(day).rollbacks.is_empty() {
                let f = c.flight(&key).unwrap();
                assert!(matches!(f.stage, FlightStage::RolledBack { .. }));
                assert_eq!(c.store.hint(&key).unwrap().status, HintStatus::Suspended);
                return;
            }
        }
        panic!("sustained regression never tripped the monitor");
    }

    #[test]
    fn clean_flights_climb_the_ladder() {
        let (mut c, key) = controller_with("101", -30.0);
        c.advance(0);
        let mut stages = vec![c.flight(&key).unwrap().stage];
        for day in 1..=4 {
            c.emit(FlightEvent::Observe {
                group: key.clone(),
                mean_change_pct: -10.0,
                n: 5,
                day,
            });
            c.advance(day);
            stages.push(c.flight(&key).unwrap().stage);
        }
        assert_eq!(
            stages,
            vec![
                FlightStage::Canary,
                FlightStage::Ramping { step: 0 },
                FlightStage::Deployed,
                FlightStage::Deployed,
                FlightStage::Deployed,
            ]
        );
    }

    #[test]
    fn probation_probes_accumulate_and_reset() {
        let (mut c, key) = controller_with("101", -30.0);
        c.emit(FlightEvent::Status {
            group: key.clone(),
            status: HintStatus::Quarantined,
        });
        for _ in 0..2 {
            c.emit(FlightEvent::Probe {
                group: key.clone(),
                clean: true,
            });
        }
        assert_eq!(c.flight(&key).unwrap().probation_clean, 2);
        c.emit(FlightEvent::Probe {
            group: key.clone(),
            clean: false,
        });
        assert_eq!(c.flight(&key).unwrap().probation_clean, 0);
    }

    #[test]
    fn recovery_replays_to_identical_state() {
        let (mut c, key) = controller_with("101", -30.0);
        c.advance(0);
        for day in 1..=3 {
            c.emit(FlightEvent::Observe {
                group: key.clone(),
                mean_change_pct: if day == 2 { 15.0 } else { -8.0 },
                n: 2,
                day,
            });
            c.advance(day);
        }
        let (r, report) =
            FlightController::recover(None, &c.journal_text(), FlightConfig::default())
                .expect("journal recovers");
        assert_eq!(report.discarded_lines, 0);
        assert!(report.replayed_events > 0);
        assert_eq!(r.snapshot_text(), c.snapshot_text());
        assert_eq!(r.store, c.store);
        assert_eq!(r.flights, c.flights);
    }

    #[test]
    fn snapshot_round_trips_and_detects_corruption() {
        let (mut c, key) = controller_with("110", -22.0);
        c.advance(0);
        c.emit(FlightEvent::Observe {
            group: key,
            mean_change_pct: -3.25,
            n: 7,
            day: 1,
        });
        let snap = c.snapshot_text();
        let (r, report) =
            FlightController::recover(Some(&snap), "", FlightConfig::default()).expect("snapshot");
        assert_eq!(report.replayed_events, 0);
        assert_eq!(r.snapshot_text(), snap);
        assert_eq!(r.store, c.store);
        assert_eq!(r.flights, c.flights);
        // A flipped byte fails the whole-body checksum.
        let bad = snap.replace("-3.25", "-3.26"); // no-op if not present, so also flip a real byte
        let mut bytes = bad.into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] = if bytes[mid] == b'0' { b'1' } else { b'0' };
        let bad = String::from_utf8(bytes).unwrap();
        assert_eq!(
            FlightController::recover(Some(&bad), "", FlightConfig::default()).unwrap_err(),
            RecoveryError::SnapshotChecksum
        );
    }

    #[test]
    fn armed_crash_tears_one_write_and_recovery_truncates() {
        let make = |crash: Option<CrashPlan>| {
            let (mut c, key) = controller_with("101", -30.0);
            if let Some(plan) = crash {
                c.arm_crash(plan);
            }
            c.advance(0);
            for day in 1..=4 {
                c.emit(FlightEvent::Observe {
                    group: key.clone(),
                    mean_change_pct: -6.0,
                    n: 2,
                    day,
                });
                c.advance(day);
            }
            c
        };
        let healthy = make(None);
        let n_events = healthy.journal_text().lines().count();
        assert!(n_events > 5);
        // The install already journaled one event before the crash was
        // armed; three more appends survive, then the next is torn mid-line.
        let crashed = make(Some(CrashPlan::after_ops(3, 10)));
        assert!(crashed.crashed());
        let surviving = crashed.journal_text();
        assert_eq!(surviving.lines().count(), 5);
        let (rec, report) =
            FlightController::recover(None, &surviving, FlightConfig::default()).unwrap();
        assert_eq!(report.discarded_lines, 1);
        assert_eq!(report.replayed_events, 4);
        // Recovery equals replaying the durable prefix of the healthy run:
        // the torn write never happened, durably.
        let prefix: String = healthy
            .journal_text()
            .lines()
            .take(4)
            .collect::<Vec<_>>()
            .join("\n");
        let (ref_rec, _) =
            FlightController::recover(None, &prefix, FlightConfig::default()).unwrap();
        assert_eq!(rec.snapshot_text(), ref_rec.snapshot_text());
        assert_eq!(rec.store, ref_rec.store);
    }

    #[test]
    fn ingest_deployed_skips_quarantined_winners() {
        use scope_ir::OpKind;
        let mut broken_cfg = RuleConfig::default_config();
        for id in scope_lint::RuleGraph::global().impls(OpKind::Output).iter() {
            broken_cfg.disable(id);
        }
        let broken = GroupConfig {
            group: RuleSignature(RuleSet::from_bit_string("011")),
            config: broken_cfg,
            base_change_pct: -50.0,
            base_job: JobId(9),
        };
        let mut c = FlightController::new(FlightConfig::default());
        c.ingest_deployed(&[winner("101", -30.0), broken.clone()], 0);
        let good_key = RuleSet::from_bit_string("101").to_bit_string();
        let bad_key = broken.group.to_bit_string();
        assert_eq!(c.flight(&good_key).unwrap().stage, FlightStage::Deployed);
        assert_eq!(c.flight(&bad_key).unwrap().stage, FlightStage::Candidate);
        assert_eq!(
            c.store.hint(&bad_key).unwrap().status,
            HintStatus::Quarantined
        );
    }
}
