//! The candidate vetting guardrail: before a steered plan may be executed
//! (during discovery) or recommended (during deployment), it must pass the
//! physical validator *and* the differential correctness check against the
//! default plan's semantic fingerprint. This is the trust boundary the
//! paper's flighting step implies: a rule configuration is evidence, not
//! authority, and a config whose plan is invalid or computes something else
//! is discarded/quarantined, with the job falling back to the default plan.

use std::fmt;

use scope_exec::truth::result_fingerprint;
use scope_ir::validate::PlanViolation;
use scope_optimizer::{validate_physical, CompileError, CompiledPlan};

/// Why a candidate plan was rejected by the guardrail.
#[derive(Clone, Debug, PartialEq)]
pub enum CandidateRejection {
    /// The steered plan violates physical invariants.
    Invalid(Vec<PlanViolation>),
    /// The steered plan's semantic fingerprint diverges from the default
    /// plan's — it computes a different result.
    Diverged { default_fp: u64, steered_fp: u64 },
}

impl fmt::Display for CandidateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CandidateRejection::Invalid(violations) => {
                write!(f, "invalid plan ({} violations", violations.len())?;
                if let Some(first) = violations.first() {
                    write!(f, "; first: {first}")?;
                }
                write!(f, ")")
            }
            CandidateRejection::Diverged {
                default_fp,
                steered_fp,
            } => write!(
                f,
                "result fingerprint diverged (default {default_fp:016x}, steered {steered_fp:016x})"
            ),
        }
    }
}

/// Vet a candidate compiled plan against the default plan for the same job.
/// `Ok(())` means the candidate is structurally valid and semantically
/// equivalent to the default; any `Err` means the candidate must not run.
pub fn vet_candidate(
    default: &CompiledPlan,
    candidate: &CompiledPlan,
) -> Result<(), CandidateRejection> {
    let violations = validate_physical(&candidate.plan);
    if !violations.is_empty() {
        return Err(CandidateRejection::Invalid(violations));
    }
    let default_fp = result_fingerprint(&default.plan);
    let steered_fp = result_fingerprint(&candidate.plan);
    if default_fp != steered_fp {
        return Err(CandidateRejection::Diverged {
            default_fp,
            steered_fp,
        });
    }
    Ok(())
}

/// Per-job (and aggregated per-report) counts of candidates the guardrail
/// filtered out before execution, by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CandidateFilterStats {
    /// Compiles that panicked (isolated by `catch_compile_panics`).
    pub panicked: usize,
    /// Compiles that exhausted the task/wall-clock budget (or the memo's
    /// hard cap during ingest).
    pub over_budget: usize,
    /// Plans rejected by the physical validator.
    pub invalid: usize,
    /// Plans whose result fingerprint diverged from the default's.
    pub diverged: usize,
    /// Candidates the static analyzer (`scope-lint`) retired before any
    /// compile: certain to fail with `NoImplementation`. Pre-lint these
    /// compiled, failed with a non-fatal error, and were silently skipped,
    /// so retiring them statically changes no other counter.
    pub static_invalid: usize,
    /// Candidate compiles avoided because an earlier candidate in the same
    /// job had the same canonical (live) rule bits; the stored compile
    /// result was replayed instead.
    pub static_redundant: usize,
    /// Candidates the abstract-interpretation bounds gate retired before
    /// any compile: their whole-plan cost lower bound provably exceeded the
    /// job's execution threshold, so compiling them could not have changed
    /// any executed alternative.
    pub static_bounded: usize,
}

impl CandidateFilterStats {
    /// Total candidates filtered before execution (dynamic guardrails plus
    /// statically-retired candidates; redundant candidates are *reused*,
    /// not filtered, so they are excluded here).
    pub fn total(&self) -> usize {
        self.dynamic_total() + self.static_invalid + self.static_bounded
    }

    /// Candidates the *dynamic* guardrails (compile + vet) filtered.
    pub fn dynamic_total(&self) -> usize {
        self.panicked + self.over_budget + self.invalid + self.diverged
    }

    /// Candidates handled statically, with zero compiles: retired as
    /// certainly-invalid, retired by the cost-bounds gate, or served from a
    /// canonical-equivalent compile.
    pub fn static_total(&self) -> usize {
        self.static_invalid + self.static_redundant + self.static_bounded
    }

    /// Fold another stats record into this one.
    pub fn merge(&mut self, other: &CandidateFilterStats) {
        self.panicked += other.panicked;
        self.over_budget += other.over_budget;
        self.invalid += other.invalid;
        self.diverged += other.diverged;
        self.static_invalid += other.static_invalid;
        self.static_redundant += other.static_redundant;
        self.static_bounded += other.static_bounded;
    }

    /// Count a guarded compile error. Ordinary configuration-infeasibility
    /// errors (the paper's "not all configurations compile") are *not*
    /// counted — they were always an expected, silent part of discovery.
    pub fn note_compile_error(&mut self, err: &CompileError) {
        match err {
            CompileError::Panicked { .. } => self.panicked += 1,
            CompileError::BudgetExhausted { .. } | CompileError::MemoExhausted { .. } => {
                self.over_budget += 1;
            }
            _ => {}
        }
    }

    /// Count a vetting rejection.
    pub fn note_rejection(&mut self, rejection: &CandidateRejection) {
        match rejection {
            CandidateRejection::Invalid(_) => self.invalid += 1,
            CandidateRejection::Diverged { .. } => self.diverged += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::NodeId;
    use scope_optimizer::{compile_job, PhysNode, PhysPlan, RuleConfig};
    use scope_workload::{Workload, WorkloadProfile};

    fn a_compiled_job() -> CompiledPlan {
        let w = Workload::generate(WorkloadProfile::workload_a(0.02));
        let job = &w.day(0)[0];
        compile_job(job, &RuleConfig::default_config()).expect("default compiles")
    }

    /// Rebuild a plan node-by-node through a mutator (PhysPlan has no
    /// in-place mutation — by design).
    fn rebuild(plan: &PhysPlan, mut mutate: impl FnMut(NodeId, PhysNode) -> PhysNode) -> PhysPlan {
        let mut out = PhysPlan::new();
        for (id, node) in plan.iter() {
            out.add(mutate(id, node.clone()));
        }
        if let Some(root) = plan.root() {
            out.set_root(root);
        }
        out
    }

    #[test]
    fn identical_plans_pass_vetting() {
        let c = a_compiled_job();
        let clone = CompiledPlan {
            plan: rebuild(&c.plan, |_, n| n),
            est_cost: c.est_cost,
            est_cost_vec: c.est_cost_vec,
            signature: c.signature,
            memo_groups: c.memo_groups,
            memo_exprs: c.memo_exprs,
            stats: c.stats,
        };
        assert_eq!(vet_candidate(&c, &clone), Ok(()));
    }

    #[test]
    fn corrupted_estimate_is_rejected_as_invalid() {
        let c = a_compiled_job();
        let mut first = true;
        let broken = rebuild(&c.plan, |_, mut n| {
            if first {
                n.est_rows = f64::NAN;
                first = false;
            }
            n
        });
        let candidate = CompiledPlan {
            plan: broken,
            est_cost: c.est_cost,
            est_cost_vec: c.est_cost_vec,
            signature: c.signature,
            memo_groups: c.memo_groups,
            memo_exprs: c.memo_exprs,
            stats: c.stats,
        };
        let err = vet_candidate(&c, &candidate).unwrap_err();
        assert!(matches!(err, CandidateRejection::Invalid(_)));
        assert!(format!("{err}").contains("invalid plan"));
    }

    #[test]
    fn mutated_predicate_literal_is_rejected_as_diverged() {
        use scope_ir::Literal;
        let c = a_compiled_job();
        // Patch the first filter/scan predicate literal we find: the plan
        // stays structurally valid but computes a different result.
        let mut patched = false;
        let broken = rebuild(&c.plan, |_, mut n| {
            if !patched {
                let pred = match &mut n.op {
                    scope_optimizer::PhysOp::Filter { predicate } => Some(predicate),
                    scope_optimizer::PhysOp::Scan { pushed, .. } if !pushed.is_true() => {
                        Some(pushed)
                    }
                    _ => None,
                };
                if let Some(p) = pred {
                    if let Some(atom) = p.atoms.first_mut() {
                        atom.literal = Literal::Int(i64::MAX);
                        patched = true;
                    }
                }
            }
            n
        });
        assert!(patched, "expected a predicate somewhere in the plan");
        let candidate = CompiledPlan {
            plan: broken,
            est_cost: c.est_cost,
            est_cost_vec: c.est_cost_vec,
            signature: c.signature,
            memo_groups: c.memo_groups,
            memo_exprs: c.memo_exprs,
            stats: c.stats,
        };
        let err = vet_candidate(&c, &candidate).unwrap_err();
        assert!(matches!(err, CandidateRejection::Diverged { .. }));
    }

    #[test]
    fn filter_stats_merge_and_total() {
        let mut a = CandidateFilterStats::default();
        a.note_compile_error(&CompileError::Panicked {
            message: "boom".into(),
        });
        a.note_compile_error(&CompileError::NoExchangeImplementation); // not counted
        let mut b = CandidateFilterStats {
            over_budget: 2,
            diverged: 1,
            ..CandidateFilterStats::default()
        };
        b.merge(&a);
        assert_eq!(b.panicked, 1);
        assert_eq!(b.over_budget, 2);
        assert_eq!(b.total(), 4);
    }
}
