//! The offline discovery pipeline (§4–§6): select jobs, generate candidate
//! configurations from the job span, recompile, choose plans worth
//! executing via the cost-model heuristics of §6.1, and A/B-execute the ten
//! cheapest alternatives.

use rand::seq::SliceRandom;
use rand::Rng;

use scope_exec::{ABTester, FaultedRun, Metric, RetryPolicy, RunMetrics};
use scope_ir::ids::{JobId, TemplateId};
use scope_ir::stats::pct_change;
use scope_ir::Job;
use scope_optimizer::{
    compile_job, compile_job_guarded, CompileBudget, CompiledPlan, RuleConfig, RuleSignature,
};

use crate::guard::{vet_candidate, CandidateFilterStats};
use crate::search::candidate_configs;
use crate::span::approximate_span;

/// Tunable pipeline parameters (defaults follow the paper).
#[derive(Clone, Debug)]
pub struct PipelineParams {
    /// Candidate configurations generated per job (§5.2; "up to 1000").
    pub m_candidates: usize,
    /// Alternatives executed per selected job (§6.1; "the 10 cheapest").
    pub execute_top_k: usize,
    /// Job selection window: ignore jobs faster than this (§5.3).
    pub min_runtime_s: f64,
    /// ... and slower than this.
    pub max_runtime_s: f64,
    /// Fraction of in-window jobs analyzed (§5.3: "10-20%").
    pub sample_frac: f64,
    /// "Clearly cheaper" margin: a candidate whose estimated cost is below
    /// `default_cost * (1 - cheaper_frac)` triggers execution.
    pub cheaper_frac: f64,
    /// Low-cost/high-runtime outlier heuristic: runtime must exceed
    /// `outlier_ratio * default_estimated_cost` (the optimizer expected the
    /// job to be several times faster than it was).
    pub outlier_ratio: f64,
    /// Retry/timeout scheduling for every A/B trial the pipeline submits.
    /// With no faults injected the policy never engages, so the default
    /// keeps fault-free discovery bit-identical to the historical runs.
    pub retry: RetryPolicy,
    /// Per-candidate compile resource budget. Candidates that exhaust it
    /// are discarded (counted in the vetting stats); the generous default
    /// never fires on well-behaved compiles.
    pub compile_budget: CompileBudget,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            m_candidates: 1000,
            execute_top_k: 10,
            min_runtime_s: 300.0,
            max_runtime_s: 3600.0,
            sample_frac: 0.5,
            cheaper_frac: 0.05,
            outlier_ratio: 4.0,
            retry: RetryPolicy::default(),
            compile_budget: CompileBudget::default(),
        }
    }
}

/// Why a job was selected for execution (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionReason {
    /// Recompiled plans were clearly cheaper than the default plan.
    CheaperPlans,
    /// The default plan had a low estimated cost but a high runtime.
    LowCostHighRuntime,
}

/// One executed alternative configuration.
#[derive(Clone, Debug)]
pub struct CandidateOutcome {
    pub config: RuleConfig,
    pub est_cost: f64,
    pub signature: RuleSignature,
    pub metrics: RunMetrics,
}

/// Everything the pipeline learned about one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub job_id: JobId,
    pub template: TemplateId,
    pub day: u32,
    /// The job group key: the default rule signature (Definition 6.2).
    pub group: RuleSignature,
    pub default_cost: f64,
    pub default_metrics: RunMetrics,
    pub span_size: usize,
    pub n_candidates: usize,
    /// Candidates whose estimated cost undercut the default's (Figure 4).
    pub n_cheaper: usize,
    pub reason: SelectionReason,
    /// Successfully executed alternatives. Candidates whose A/B trial
    /// failed or timed out are discarded and counted in `n_failed`.
    pub executed: Vec<CandidateOutcome>,
    /// Candidate trials that failed or timed out (after retries).
    pub n_failed: usize,
    /// Candidates the compile-time guardrail filtered out before execution
    /// (panicked / over-budget / invalid / diverging plans).
    pub vetting: CandidateFilterStats,
}

impl JobOutcome {
    /// The executed alternative best on `metric` (ignoring the default).
    pub fn best_by(&self, metric: Metric) -> Option<&CandidateOutcome> {
        self.executed
            .iter()
            .min_by(|a, b| a.metrics.get(metric).total_cmp(&b.metrics.get(metric)))
    }

    /// Percentage change of the best alternative's runtime vs the default
    /// (negative = improvement). Positive when every alternative regressed.
    pub fn best_runtime_change_pct(&self) -> f64 {
        match self.best_by(Metric::Runtime) {
            Some(best) => pct_change(self.default_metrics.runtime, best.metrics.runtime),
            None => 0.0,
        }
    }

    /// Change of the best alternative on a given metric, and the changes it
    /// causes on the other two (Figure 7's rows).
    pub fn change_when_optimizing(&self, metric: Metric) -> Option<[f64; 3]> {
        let best = self.best_by(metric)?;
        Some([
            pct_change(self.default_metrics.runtime, best.metrics.runtime),
            pct_change(self.default_metrics.cpu_time, best.metrics.cpu_time),
            pct_change(self.default_metrics.io_time, best.metrics.io_time),
        ])
    }

    /// Best-known runtime including the default (Table 3 / Table 5 use
    /// "best known", which can be the default itself).
    pub fn best_known_runtime(&self) -> f64 {
        self.executed
            .iter()
            .map(|c| c.metrics.runtime)
            .fold(self.default_metrics.runtime, f64::min)
    }
}

/// A pipeline report over many jobs.
#[derive(Debug, Default)]
pub struct DiscoveryReport {
    pub outcomes: Vec<JobOutcome>,
    /// Jobs recompiled but not selected by any §6.1 heuristic.
    pub not_selected: usize,
    /// Jobs outside the runtime window.
    pub out_of_window: usize,
    /// Jobs skipped because their *default* run failed or timed out: with
    /// no trustworthy baseline there is nothing to compare against.
    pub failed_defaults: usize,
    /// Candidate trials discarded across all jobs (failed or timed out).
    pub failed_candidates: usize,
    /// Candidates filtered by the compile-time guardrail across all jobs.
    pub vetting: CandidateFilterStats,
}

impl DiscoveryReport {
    /// Jobs where some alternative beat the default runtime by more than
    /// `threshold_pct` percent.
    pub fn improved(&self, threshold_pct: f64) -> Vec<&JobOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.best_runtime_change_pct() < -threshold_pct)
            .collect()
    }
}

/// The offline pipeline.
pub struct Pipeline {
    pub ab: ABTester,
    pub params: PipelineParams,
}

impl Pipeline {
    pub fn new(ab: ABTester, params: PipelineParams) -> Pipeline {
        Pipeline { ab, params }
    }

    /// Compile and A/B-execute a job's default plan.
    pub fn default_run(&self, job: &Job) -> Option<(CompiledPlan, RunMetrics)> {
        let (compiled, run) = self.default_run_outcome(job)?;
        Some((compiled, run.metrics))
    }

    /// Like [`Self::default_run`], but reports how the run ended so callers
    /// can skip jobs whose baseline is untrustworthy.
    pub fn default_run_outcome(&self, job: &Job) -> Option<(CompiledPlan, FaultedRun)> {
        let compiled = compile_job(job, &RuleConfig::default_config()).ok()?;
        let run = self
            .ab
            .run_with_retry(job, &compiled.plan, 0, &self.params.retry);
        Some((compiled, run))
    }

    /// Run the full discovery pipeline over one day's jobs. Degrades
    /// gracefully under injected faults: jobs whose default run dies are
    /// skipped (counted in `failed_defaults`), failed candidate trials are
    /// discarded (counted in `failed_candidates`), and no failure ever
    /// panics the pipeline or leaks NaN into the rankings.
    pub fn discover<R: Rng + ?Sized>(&self, jobs: &[Job], rng: &mut R) -> DiscoveryReport {
        let mut report = DiscoveryReport::default();
        // Select jobs in the runtime window, then sample.
        let mut in_window: Vec<(&Job, CompiledPlan, RunMetrics)> = Vec::new();
        for job in jobs {
            let Some((compiled, run)) = self.default_run_outcome(job) else {
                continue;
            };
            if !run.outcome.is_success() {
                report.failed_defaults += 1;
                continue;
            }
            let metrics = run.metrics;
            if metrics.runtime < self.params.min_runtime_s
                || metrics.runtime > self.params.max_runtime_s
            {
                report.out_of_window += 1;
                continue;
            }
            in_window.push((job, compiled, metrics));
        }
        in_window.shuffle(rng);
        let keep = ((in_window.len() as f64) * self.params.sample_frac).ceil() as usize;
        in_window.truncate(keep);

        for (job, compiled, metrics) in in_window {
            match self.analyze_job(job, &compiled, metrics, rng) {
                Some(outcome) => {
                    report.failed_candidates += outcome.n_failed;
                    report.vetting.merge(&outcome.vetting);
                    report.outcomes.push(outcome);
                }
                None => report.not_selected += 1,
            }
        }
        report
    }

    /// §5–§6 for a single job whose default compilation is already known.
    /// Returns `None` when neither execution heuristic selects the job.
    pub fn analyze_job<R: Rng + ?Sized>(
        &self,
        job: &Job,
        default: &CompiledPlan,
        default_metrics: RunMetrics,
        rng: &mut R,
    ) -> Option<JobOutcome> {
        let obs = job.catalog.observe();
        let span = approximate_span(&job.plan, &obs);
        let configs = candidate_configs(&span, self.params.m_candidates, rng);

        // Recompile every candidate under the budget, with panic isolation,
        // then vet each survivor against the default plan (validator +
        // differential fingerprint). A candidate that panics, blows the
        // budget, produces an invalid plan, or computes a different result
        // is discarded and counted — never executed.
        let mut vetting = CandidateFilterStats::default();
        let mut recompiled: Vec<(RuleConfig, CompiledPlan)> = Vec::new();
        for config in configs {
            match compile_job_guarded(job, &config, &self.params.compile_budget) {
                Ok(c) => match vet_candidate(default, &c) {
                    Ok(()) => recompiled.push((config, c)),
                    Err(rejection) => vetting.note_rejection(&rejection),
                },
                Err(err) => vetting.note_compile_error(&err),
            }
        }
        let n_candidates = recompiled.len();
        let n_cheaper = recompiled
            .iter()
            .filter(|(_, c)| c.est_cost < default.est_cost)
            .count();

        // §6.1 selection heuristics.
        let clearly_cheaper = recompiled
            .iter()
            .any(|(_, c)| c.est_cost < default.est_cost * (1.0 - self.params.cheaper_frac));
        let outlier = default_metrics.runtime > default.est_cost * self.params.outlier_ratio;
        let reason = if clearly_cheaper {
            SelectionReason::CheaperPlans
        } else if outlier {
            SelectionReason::LowCostHighRuntime
        } else {
            return None;
        };

        // Execute the K cheapest alternatives. Trials that fail or time
        // out (after the retry policy gives up) are evidence against the
        // candidate, not a reason to abort the job: discard and count.
        recompiled.sort_by(|a, b| a.1.est_cost.total_cmp(&b.1.est_cost));
        recompiled.truncate(self.params.execute_top_k);
        let mut executed = Vec::new();
        let mut n_failed = 0usize;
        for (config, c) in recompiled {
            let run = self.ab.run_with_retry(job, &c.plan, 0, &self.params.retry);
            if !run.outcome.is_success() || !run.metrics.is_valid() {
                n_failed += 1;
                continue;
            }
            executed.push(CandidateOutcome {
                config,
                est_cost: c.est_cost,
                signature: c.signature,
                metrics: run.metrics,
            });
        }

        Some(JobOutcome {
            job_id: job.id,
            template: job.template,
            day: job.day,
            group: default.signature,
            default_cost: default.est_cost,
            default_metrics,
            span_size: span.len(),
            n_candidates,
            n_cheaper,
            reason,
            executed,
            n_failed,
            vetting,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_workload::{Workload, WorkloadProfile};

    fn pipeline() -> Pipeline {
        Pipeline::new(
            ABTester::new(11),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                ..PipelineParams::default()
            },
        )
    }

    #[test]
    fn discovery_finds_improvements_on_a_small_day() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(!report.outcomes.is_empty(), "no jobs analyzed");
        for o in &report.outcomes {
            assert!(o.executed.len() <= 5);
            assert!(o.n_candidates > 0);
            assert!(o.span_size > 0);
        }
        // The planted divergences guarantee at least one improving job even
        // at this tiny scale.
        assert!(
            !report.improved(5.0).is_empty(),
            "expected at least one >5% improvement"
        );
    }

    #[test]
    fn outcome_metric_helpers_are_consistent() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(2);
        let report = p.discover(&jobs, &mut rng);
        let o = report.outcomes.first().expect("an outcome");
        let best = o.best_by(Metric::Runtime).expect("executed candidates");
        assert!(best.metrics.runtime <= o.executed[0].metrics.runtime);
        assert!(o.best_known_runtime() <= o.default_metrics.runtime);
        let changes = o.change_when_optimizing(Metric::CpuTime).unwrap();
        // Optimizing CPU: its own column must be the best achievable.
        let direct = o
            .executed
            .iter()
            .map(|c| pct_change(o.default_metrics.cpu_time, c.metrics.cpu_time))
            .fold(f64::INFINITY, f64::min);
        assert!((changes[1] - direct).abs() < 1e-9);
    }

    #[test]
    fn cheap_selection_reason_reported() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(3);
        let report = p.discover(&jobs, &mut rng);
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.reason == SelectionReason::CheaperPlans));
    }

    #[test]
    fn faultless_discovery_is_unchanged_by_the_fault_plumbing() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert_eq!(report.failed_defaults, 0);
        assert_eq!(report.failed_candidates, 0);
        for o in &report.outcomes {
            assert_eq!(o.n_failed, 0);
        }
        // The guardrail must be invisible on healthy rules: no legitimate
        // configuration panics, blows the generous default budget, emits an
        // invalid plan, or changes the job's result fingerprint.
        assert_eq!(report.vetting, CandidateFilterStats::default());
    }

    #[test]
    fn tiny_compile_budget_discards_candidates_but_discovery_completes() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = Pipeline::new(
            ABTester::new(11),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                // Far below what any real compile needs: every candidate
                // recompile must be discarded as over-budget, while the
                // default compiles (not budget-limited here) still anchor
                // the day.
                compile_budget: CompileBudget::with_max_tasks(1),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(report.vetting.over_budget > 0, "budget never fired");
        assert_eq!(report.vetting.panicked, 0);
        // With no surviving candidates no job is selected for execution,
        // but nothing panics and the day completes on default plans.
        assert!(report.outcomes.iter().all(|o| o.n_candidates == 0));
    }

    #[test]
    fn discovery_survives_injected_faults_and_discards_failures() {
        use scope_exec::FaultProfile;
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        // A cluster bad enough that many trials die even after retries.
        let mut profile = FaultProfile::with_vertex_failures(5e-3);
        profile.max_retries = 1;
        let ab = ABTester::new(11).with_faults(profile);
        let p = Pipeline::new(
            ab,
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                retry: scope_exec::RetryPolicy::no_retries(),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        // The guarantee under test: no panic, no NaN, failures accounted.
        let report = p.discover(&jobs, &mut rng);
        let failed: usize = report.outcomes.iter().map(|o| o.n_failed).sum();
        assert_eq!(report.failed_candidates, failed);
        assert!(
            report.failed_defaults > 0 || failed > 0,
            "this fault rate should kill at least one trial"
        );
        for o in &report.outcomes {
            for c in &o.executed {
                assert!(c.metrics.is_valid());
            }
            // best_by must stay well-defined on whatever survived.
            if !o.executed.is_empty() {
                assert!(o.best_by(Metric::Runtime).is_some());
                assert!(o.best_runtime_change_pct().is_finite());
            }
        }
    }

    #[test]
    fn jobs_with_failing_defaults_are_skipped_not_analyzed() {
        use scope_exec::FaultProfile;
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        // Every attempt of every stage dies: no default baseline survives.
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let ab = ABTester::new(11).with_faults(profile);
        let p = Pipeline::new(
            ab,
            PipelineParams {
                sample_frac: 1.0,
                retry: scope_exec::RetryPolicy::no_retries(),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(report.failed_defaults > 0);
        assert!(
            report.outcomes.is_empty(),
            "no job should survive a 100% vertex failure rate"
        );
    }
}
