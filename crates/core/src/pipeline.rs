//! The offline discovery pipeline (§4–§6): select jobs, generate candidate
//! configurations from the job span, recompile, choose plans worth
//! executing via the cost-model heuristics of §6.1, and A/B-execute the ten
//! cheapest alternatives.
//!
//! Discovery is compile-bound and embarrassingly parallel across jobs, so
//! [`Pipeline::discover`] fans both stages (default baselining and per-job
//! analysis) out over the scoped-thread harness in [`crate::par`], with all
//! compiles routed through a shared [`CompileCache`]. Determinism is
//! preserved by construction: each analyzed job gets its own RNG derived
//! from a splittable seed (`seed ⊕ job.id`), results are collected in item
//! order, and a cached compile is bit-identical to a fresh one — so the
//! same caller seed produces the same [`DiscoveryReport`] at any thread
//! count and any cache size.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use scope_exec::{ABTester, FaultedRun, Metric, RetryPolicy, RunMetrics};
use scope_ir::ids::{JobId, TemplateId};
use scope_ir::stats::pct_change;
use scope_ir::Job;
use scope_lint::{ConfigVerdict, JobLint, PlanBounds};
use scope_optimizer::{
    catch_compile_panics, compile_with_model, effective_config, plan_catalog_fingerprint,
    CacheStats, CompileBudget, CompileCache, CompiledPlan, CostModel, RuleConfig, RuleId, RuleSet,
    RuleSignature, NUM_RULES,
};
use scope_trace::{Counter, Histogram, MetricsSnapshot};

use crate::guard::{vet_candidate, CandidateFilterStats};
use crate::par::{available_threads, run_chunked_on};
use crate::search::candidate_configs_effective;
use crate::span::approximate_span_cached;

/// Tunable pipeline parameters (defaults follow the paper).
#[derive(Clone, Debug)]
pub struct PipelineParams {
    /// Candidate configurations generated per job (§5.2; "up to 1000").
    pub m_candidates: usize,
    /// Alternatives executed per selected job (§6.1; "the 10 cheapest").
    pub execute_top_k: usize,
    /// Job selection window: ignore jobs faster than this (§5.3).
    pub min_runtime_s: f64,
    /// ... and slower than this.
    pub max_runtime_s: f64,
    /// Fraction of in-window jobs analyzed (§5.3: "10-20%").
    pub sample_frac: f64,
    /// "Clearly cheaper" margin: a candidate whose estimated cost is below
    /// `default_cost * (1 - cheaper_frac)` triggers execution.
    pub cheaper_frac: f64,
    /// Low-cost/high-runtime outlier heuristic: runtime must exceed
    /// `outlier_ratio * default_estimated_cost` (the optimizer expected the
    /// job to be several times faster than it was).
    pub outlier_ratio: f64,
    /// Retry/timeout scheduling for every A/B trial the pipeline submits.
    /// With no faults injected the policy never engages, so the default
    /// keeps fault-free discovery bit-identical to the historical runs.
    pub retry: RetryPolicy,
    /// Per-candidate compile resource budget. Candidates that exhaust it
    /// are discarded (counted in the vetting stats); the generous default
    /// never fires on well-behaved compiles.
    pub compile_budget: CompileBudget,
    /// Worker threads for the parallel discovery stages (`0` = one per
    /// available core). Results are identical at any thread count.
    pub n_threads: usize,
    /// Capacity (entries) of the pipeline's shared compile cache; `0`
    /// disables caching. Cached compiles are bit-identical to fresh ones,
    /// so this only changes speed, never results.
    pub cache_capacity: usize,
    /// Run the `scope-lint` static analyzer over every candidate before
    /// compiling it: statically-certain-to-fail configs are skipped
    /// (counted in `vetting.static_invalid`) and canonically-equivalent
    /// configs share one compile per job (`vetting.static_redundant`).
    /// Results are bit-identical with the gate on or off — skipped
    /// candidates could never have contributed (their compile errors were
    /// always silently ignored) and redundant candidates replay the exact
    /// stored compile result. The one visible difference: a
    /// statically-invalid candidate that would have *exhausted the compile
    /// budget* mid-search is now skipped instead of counted as
    /// `over_budget`. The switch exists for A/B measurement (`exp_lint`)
    /// and the determinism test.
    pub lint_gate: bool,
    /// Run the abstract-interpretation bounds analysis (`scope-lint`'s
    /// [`PlanBounds`]) over every candidate before compiling it: a
    /// candidate whose *sound whole-plan cost lower bound* already exceeds
    /// the job's execution threshold (the default's cost, then the k-th
    /// cheapest compiled alternative) is statically retired — never
    /// compiled, counted in `vetting.static_bounded`. Every observable
    /// discovery result (executed alternatives, their configs, costs and
    /// metrics, selection reasons, dedup against the default, dynamic
    /// guardrail counters) is bit-identical with the gate on or off; only
    /// candidate-census counters over the retired tail (`n_candidates`,
    /// `n_duplicate_plans`) and the static funnel counters differ. Off by
    /// default pending the `exp_bounds` A/B measurement.
    pub bounds_gate: bool,
    /// The cost model every compile in this pipeline runs under: the
    /// scalarization weights plus any promoted per-template corrections.
    /// The default is [`CostModel::DEFAULT`], which is bit-identical to
    /// the historical scalar cost — discovery results only change when a
    /// non-default model is installed deliberately (weight sweeps, or a
    /// day boundary promoting corrections from a
    /// [`crate::feedback::CorrectionStore`]). The model participates in
    /// the compile-cache key, so swapping it never serves stale plan bits.
    pub cost_model: CostModel,
}

impl Default for PipelineParams {
    fn default() -> Self {
        PipelineParams {
            m_candidates: 1000,
            execute_top_k: 10,
            min_runtime_s: 300.0,
            max_runtime_s: 3600.0,
            sample_frac: 0.5,
            cheaper_frac: 0.05,
            outlier_ratio: 4.0,
            retry: RetryPolicy::default(),
            compile_budget: CompileBudget::default(),
            n_threads: 0,
            cache_capacity: 4096,
            lint_gate: true,
            bounds_gate: false,
            cost_model: CostModel::DEFAULT,
        }
    }
}

/// Why a job was selected for execution (§6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectionReason {
    /// Recompiled plans were clearly cheaper than the default plan.
    CheaperPlans,
    /// The default plan had a low estimated cost but a high runtime.
    LowCostHighRuntime,
}

/// One executed alternative configuration.
#[derive(Clone, Debug)]
pub struct CandidateOutcome {
    pub config: RuleConfig,
    pub est_cost: f64,
    pub signature: RuleSignature,
    pub metrics: RunMetrics,
}

/// Everything the pipeline learned about one job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    pub job_id: JobId,
    pub template: TemplateId,
    pub day: u32,
    /// The job group key: the default rule signature (Definition 6.2).
    pub group: RuleSignature,
    pub default_cost: f64,
    pub default_metrics: RunMetrics,
    pub span_size: usize,
    pub n_candidates: usize,
    /// Candidates whose estimated cost undercut the default's (Figure 4).
    pub n_cheaper: usize,
    /// Vetted candidates whose signature equals the default plan's — they
    /// *are* the default plan, so they are counted here and excluded from
    /// the `execute_top_k` pool instead of wasting A/B trials.
    pub n_same_as_default: usize,
    /// Vetted candidates whose signature duplicates an earlier candidate's
    /// (same plan, different raw config bits) — counted, not re-executed.
    pub n_duplicate_plans: usize,
    pub reason: SelectionReason,
    /// Successfully executed alternatives. Candidates whose A/B trial
    /// failed or timed out are discarded and counted in `n_failed`.
    pub executed: Vec<CandidateOutcome>,
    /// Candidate trials that failed or timed out (after retries).
    pub n_failed: usize,
    /// Candidates the compile-time guardrail filtered out before execution
    /// (panicked / over-budget / invalid / diverging plans).
    pub vetting: CandidateFilterStats,
}

impl JobOutcome {
    /// The executed alternative best on `metric` (ignoring the default).
    pub fn best_by(&self, metric: Metric) -> Option<&CandidateOutcome> {
        self.executed
            .iter()
            .min_by(|a, b| a.metrics.get(metric).total_cmp(&b.metrics.get(metric)))
    }

    /// Percentage change of the best alternative's runtime vs the default
    /// (negative = improvement). Positive when every alternative regressed.
    pub fn best_runtime_change_pct(&self) -> f64 {
        match self.best_by(Metric::Runtime) {
            Some(best) => pct_change(self.default_metrics.runtime, best.metrics.runtime),
            None => 0.0,
        }
    }

    /// Change of the best alternative on a given metric, and the changes it
    /// causes on the other two (Figure 7's rows).
    pub fn change_when_optimizing(&self, metric: Metric) -> Option<[f64; 3]> {
        let best = self.best_by(metric)?;
        Some([
            pct_change(self.default_metrics.runtime, best.metrics.runtime),
            pct_change(self.default_metrics.cpu_time, best.metrics.cpu_time),
            pct_change(self.default_metrics.io_time, best.metrics.io_time),
        ])
    }

    /// Best-known runtime including the default (Table 3 / Table 5 use
    /// "best known", which can be the default itself).
    pub fn best_known_runtime(&self) -> f64 {
        self.executed
            .iter()
            .map(|c| c.metrics.runtime)
            .fold(self.default_metrics.runtime, f64::min)
    }
}

/// Wall-clock accounting for one discovery run. Diagnostic only — nothing
/// downstream reads these, so determinism of the results is unaffected.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiscoveryTimings {
    /// Stage 1: default compiles + baseline A/B runs, in seconds.
    pub default_runs_s: f64,
    /// Stage 2: span, candidate recompiles, and A/B trials, in seconds.
    pub analyze_s: f64,
    /// Whole [`Pipeline::discover`] call, in seconds.
    pub total_s: f64,
}

/// A pipeline report over many jobs.
#[derive(Debug, Default)]
pub struct DiscoveryReport {
    pub outcomes: Vec<JobOutcome>,
    /// Jobs recompiled but not selected by any §6.1 heuristic.
    pub not_selected: usize,
    /// Jobs outside the runtime window.
    pub out_of_window: usize,
    /// Jobs skipped because their *default* run failed or timed out: with
    /// no trustworthy baseline there is nothing to compare against.
    pub failed_defaults: usize,
    /// Candidate trials discarded across all jobs (failed or timed out).
    pub failed_candidates: usize,
    /// Candidates filtered by the compile-time guardrail across all jobs.
    pub vetting: CandidateFilterStats,
    /// Vetted candidates across all jobs whose plan duplicated the default
    /// or an earlier candidate (executions avoided by signature dedup).
    pub duplicate_plans: usize,
    /// Compile-cache activity during this discovery run (counter deltas;
    /// `entries`/`capacity` are the cache's current gauges).
    pub cache: CacheStats,
    /// Per-stage wall-clock timings for this run.
    pub timings: DiscoveryTimings,
    /// Tracer metrics accumulated during this run (delta snapshot; see
    /// `scope-trace`). All-zero when tracing was disabled — the tracer is
    /// diagnostic only and never feeds back into discovery decisions.
    pub metrics: MetricsSnapshot,
}

impl DiscoveryReport {
    /// Jobs where some alternative beat the default runtime by more than
    /// `threshold_pct` percent.
    pub fn improved(&self, threshold_pct: f64) -> Vec<&JobOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.best_runtime_change_pct() < -threshold_pct)
            .collect()
    }

    /// Candidates handled statically (zero compiles): retired as certainly
    /// invalid or served from a canonical-equivalent compile.
    pub fn static_rejections(&self) -> usize {
        self.vetting.static_total()
    }

    /// Candidates the dynamic guardrails (compile + vet) filtered.
    pub fn dynamic_rejections(&self) -> usize {
        self.vetting.dynamic_total()
    }
}

/// The offline pipeline.
pub struct Pipeline {
    pub ab: ABTester,
    pub params: PipelineParams,
    /// Shared compile cache consulted by span approximation, candidate
    /// recompilation, and default baselining. Shared across `discover`
    /// calls (recurring days hit it) and safely shareable across pipelines
    /// via [`Pipeline::with_cache`].
    pub cache: Arc<CompileCache>,
}

/// How a job's default baseline ended, for the parallel selection stage.
enum DefaultOutcome {
    /// The default configuration did not compile (rare, silently skipped —
    /// matching the historical serial behaviour).
    NoCompile,
    /// The baseline run failed or timed out: no trustworthy baseline.
    Failed,
    /// Baseline succeeded but sits outside the §5.3 runtime window.
    OutOfWindow,
    /// A usable baseline.
    InWindow(Arc<CompiledPlan>, RunMetrics),
}

/// Per-job candidate pool accounting, shared verbatim by the
/// straight-through path and the bounds-gate replay so both walk the exact
/// same per-candidate decision sequence (see [`Pipeline::analyze_job`]).
#[derive(Default)]
struct PoolState {
    n_candidates: usize,
    n_cheaper: usize,
    n_same_as_default: usize,
    n_duplicate_plans: usize,
    clearly_cheaper: bool,
    seen_signatures: HashSet<RuleSignature>,
    recompiled: Vec<(RuleConfig, Arc<CompiledPlan>)>,
}

impl PoolState {
    /// Fold one candidate's compile result into the pool: vet, count, dedup
    /// against the default and earlier survivors. `trace` gates the funnel
    /// counters so a scratch replay (threshold probing) stays invisible.
    fn absorb(
        &mut self,
        vetting: &mut CandidateFilterStats,
        config: RuleConfig,
        result: Result<Arc<CompiledPlan>, scope_optimizer::CompileError>,
        default: &CompiledPlan,
        cheaper_frac: f64,
        trace: bool,
    ) {
        match result {
            Ok(c) => match vet_candidate(default, &c) {
                Ok(()) => {
                    self.n_candidates += 1;
                    if c.est_cost < default.est_cost {
                        self.n_cheaper += 1;
                    }
                    if c.est_cost < default.est_cost * (1.0 - cheaper_frac) {
                        self.clearly_cheaper = true;
                    }
                    if c.signature == default.signature {
                        self.n_same_as_default += 1;
                        if trace {
                            scope_trace::count(Counter::FunnelDuplicate, 1);
                        }
                    } else if !self.seen_signatures.insert(c.signature) {
                        self.n_duplicate_plans += 1;
                        if trace {
                            scope_trace::count(Counter::FunnelDuplicate, 1);
                        }
                    } else {
                        self.recompiled.push((config, c));
                    }
                }
                Err(rejection) => {
                    vetting.note_rejection(&rejection);
                    if trace {
                        scope_trace::count(Counter::FunnelVetoed, 1);
                    }
                }
            },
            Err(err) => {
                vetting.note_compile_error(&err);
                if trace {
                    scope_trace::count(Counter::FunnelCompileFailed, 1);
                }
            }
        }
    }
}

/// How one candidate stands after the bounds-gate's first pass.
enum Disposition {
    /// Statically certain to fail compilation; already counted.
    StaticInvalid,
    /// Compiled (or folded onto a canonical-equivalent compile).
    Done(Result<Arc<CompiledPlan>, scope_optimizer::CompileError>),
    /// Compile deferred: the cost lower bound exceeds the default's cost,
    /// so this candidate can only matter if the execution threshold ends up
    /// above `lb`. `canonical` is `Some` when the lint gate may fold it.
    Deferred { canonical: Option<RuleSet>, lb: f64 },
}

impl Pipeline {
    pub fn new(ab: ABTester, params: PipelineParams) -> Pipeline {
        let cache = Arc::new(CompileCache::new(params.cache_capacity));
        Pipeline { ab, params, cache }
    }

    /// A pipeline sharing an existing compile cache (e.g. one cache across
    /// a multi-day sweep, or a bench harness that wants to inspect stats).
    pub fn with_cache(ab: ABTester, params: PipelineParams, cache: Arc<CompileCache>) -> Pipeline {
        Pipeline { ab, params, cache }
    }

    /// Worker count for the parallel stages.
    fn effective_threads(&self) -> usize {
        if self.params.n_threads == 0 {
            available_threads()
        } else {
            self.params.n_threads
        }
    }

    /// The job's customer hints as a rule set — the rules
    /// [`effective_config`] forces on regardless of candidate sampling.
    fn hint_set(job: &Job) -> RuleSet {
        let mut forced = RuleSet::EMPTY;
        for &raw in &job.hints {
            if (raw as usize) < NUM_RULES {
                forced.insert(RuleId(raw));
            }
        }
        forced
    }

    /// Compile a *candidate* through the shared cache (panic-isolated,
    /// budgeted). `config` must already be effective (hints merged); the
    /// cache key is exactly what the search consumes, which is what makes
    /// it sound. The budget bounds *fresh* compile effort only — a cache
    /// hit spent its effort when first compiled, so it is served even under
    /// a budget that would reject recompiling from scratch.
    fn compile_cached(
        &self,
        job: &Job,
        obs: &scope_ir::ObservableCatalog,
        fingerprint: u64,
        config: &RuleConfig,
    ) -> Result<Arc<CompiledPlan>, scope_optimizer::CompileError> {
        // Funnel accounting: whether this candidate was answered from the
        // cache or cost a fresh compile (the closure only runs on a miss).
        let fresh = std::cell::Cell::new(false);
        let result = self.cache.get_or_compile_with_model(
            fingerprint,
            config,
            &self.params.cost_model,
            || {
                fresh.set(true);
                catch_compile_panics(|| {
                    compile_with_model(
                        &job.plan,
                        obs,
                        config,
                        &self.params.compile_budget,
                        &self.params.cost_model,
                    )
                })
            },
        );
        if fresh.get() {
            scope_trace::count(Counter::FunnelCompiled, 1);
        } else if result.is_ok() {
            scope_trace::count(Counter::FunnelCacheHit, 1);
        }
        result
    }

    /// Compile a job's *default* (effective) configuration through the
    /// shared cache. Defaults are the measurement baseline, not candidates,
    /// so they are exempt from the per-candidate compile budget — exactly
    /// as in the historical serial pipeline.
    fn compile_default_cached(
        &self,
        job: &Job,
        obs: &scope_ir::ObservableCatalog,
        fingerprint: u64,
        config: &RuleConfig,
    ) -> Result<Arc<CompiledPlan>, scope_optimizer::CompileError> {
        self.cache
            .get_or_compile_with_model(fingerprint, config, &self.params.cost_model, || {
                compile_with_model(
                    &job.plan,
                    obs,
                    config,
                    &CompileBudget::default(),
                    &self.params.cost_model,
                )
            })
    }

    /// Compile and A/B-execute a job's default plan.
    pub fn default_run(&self, job: &Job) -> Option<(Arc<CompiledPlan>, RunMetrics)> {
        let (compiled, run) = self.default_run_outcome(job)?;
        Some((compiled, run.metrics))
    }

    /// Like [`Self::default_run`], but reports how the run ended so callers
    /// can skip jobs whose baseline is untrustworthy.
    pub fn default_run_outcome(&self, job: &Job) -> Option<(Arc<CompiledPlan>, FaultedRun)> {
        let obs = job.catalog.observe();
        let config = effective_config(job, &RuleConfig::default_config());
        let fingerprint = plan_catalog_fingerprint(&job.plan, &obs);
        let compiled = self
            .compile_default_cached(job, &obs, fingerprint, &config)
            .ok()?;
        let run = self
            .ab
            .run_with_retry(job, &compiled.plan, 0, &self.params.retry);
        Some((compiled, run))
    }

    /// Run the full discovery pipeline over one day's jobs, fanning both
    /// stages out over `params.n_threads` workers. Degrades gracefully
    /// under injected faults: jobs whose default run dies are skipped
    /// (counted in `failed_defaults`), failed candidate trials are
    /// discarded (counted in `failed_candidates`), and no failure ever
    /// panics the pipeline or leaks NaN into the rankings.
    ///
    /// Deterministic for a given caller RNG state: per-job RNGs are derived
    /// from a splittable seed (`seed ⊕ job.id`) drawn once from `rng`, so
    /// the report is identical at any worker count and any cache size.
    pub fn discover<R: Rng + ?Sized>(&self, jobs: &[Job], rng: &mut R) -> DiscoveryReport {
        let run_start = Instant::now();
        let n_threads = self.effective_threads();
        let cache_before = self.cache.stats();
        // Delta snapshot: the tracer registry is process-global, so report
        // only what this run adds. Captured lazily (behind the enabled
        // gate) to keep the disabled tracer free.
        let metrics_before = scope_trace::enabled().then(MetricsSnapshot::capture);
        let _discover_span = scope_trace::span("discover");
        let mut report = DiscoveryReport::default();

        // Stage 1 (parallel): default compile + baseline A/B run per job.
        // Indices (not zipped results) carry job identity so a dropped
        // panicked chunk cannot misalign jobs and outcomes. Compile
        // scratch (memo arena + implement vectors) is per worker thread:
        // the optimizer's thread-local scratch is born with the scoped
        // worker and reused across every compile in its chunk.
        let indices: Vec<usize> = (0..jobs.len()).collect();
        let stage_start = Instant::now();
        let stage_span = scope_trace::span("discover.defaults");
        let defaults: Vec<(usize, DefaultOutcome)> = run_chunked_on(
            &indices,
            n_threads,
            |&i| {
                let job = &jobs[i];
                let _span = scope_trace::span_with("default_run", jobs[i].id.0);
                let outcome = match self.default_run_outcome(job) {
                    None => DefaultOutcome::NoCompile,
                    Some((compiled, run)) => {
                        if !run.outcome.is_success() {
                            DefaultOutcome::Failed
                        } else if run.metrics.runtime < self.params.min_runtime_s
                            || run.metrics.runtime > self.params.max_runtime_s
                        {
                            DefaultOutcome::OutOfWindow
                        } else {
                            DefaultOutcome::InWindow(compiled, run.metrics)
                        }
                    }
                };
                Some((i, outcome))
            },
            |&i| format!("job {}", jobs[i].id.0),
        );
        drop(stage_span);
        report.timings.default_runs_s = stage_start.elapsed().as_secs_f64();

        // Select jobs in the runtime window, then sample (serial: consumes
        // the caller RNG exactly as the historical serial pipeline did).
        let mut in_window: Vec<(&Job, Arc<CompiledPlan>, RunMetrics)> = Vec::new();
        for (i, outcome) in defaults {
            match outcome {
                DefaultOutcome::NoCompile => {}
                DefaultOutcome::Failed => report.failed_defaults += 1,
                DefaultOutcome::OutOfWindow => report.out_of_window += 1,
                DefaultOutcome::InWindow(compiled, metrics) => {
                    in_window.push((&jobs[i], compiled, metrics));
                }
            }
        }
        in_window.shuffle(rng);
        let keep = ((in_window.len() as f64) * self.params.sample_frac).ceil() as usize;
        in_window.truncate(keep);

        // Stage 2 (parallel): analyze each selected job with its own RNG,
        // split from one seed drawn off the caller RNG. Collection is in
        // item order, so the outcome order matches the serial pipeline's.
        let job_seed: u64 = rng.gen();
        let stage_start = Instant::now();
        let stage_span = scope_trace::span("discover.analyze");
        let analyzed: Vec<Option<JobOutcome>> = run_chunked_on(
            &in_window,
            n_threads,
            |(job, compiled, metrics)| {
                let _span = scope_trace::span_with("analyze_job", job.id.0);
                let mut job_rng = StdRng::seed_from_u64(job_seed ^ job.id.0);
                Some(self.analyze_job(job, compiled, *metrics, &mut job_rng))
            },
            |(job, _, _)| format!("job {}", job.id.0),
        );
        drop(stage_span);
        report.timings.analyze_s = stage_start.elapsed().as_secs_f64();

        for outcome in analyzed {
            match outcome {
                Some(outcome) => {
                    report.failed_candidates += outcome.n_failed;
                    report.vetting.merge(&outcome.vetting);
                    report.duplicate_plans += outcome.n_same_as_default + outcome.n_duplicate_plans;
                    report.outcomes.push(outcome);
                }
                None => report.not_selected += 1,
            }
        }
        report.cache = self.cache.stats().since(&cache_before);
        report.timings.total_s = run_start.elapsed().as_secs_f64();
        if let Some(before) = metrics_before {
            report.metrics = MetricsSnapshot::capture().since(&before);
        }
        report
    }

    /// §5–§6 for a single job whose default compilation is already known.
    /// Returns `None` when neither execution heuristic selects the job.
    pub fn analyze_job<R: Rng + ?Sized>(
        &self,
        job: &Job,
        default: &CompiledPlan,
        default_metrics: RunMetrics,
        rng: &mut R,
    ) -> Option<JobOutcome> {
        // Per-job work hoisted out of the per-candidate loop: one catalog
        // observation, one fingerprint, one span approximation.
        let obs = job.catalog.observe();
        let fingerprint = plan_catalog_fingerprint(&job.plan, &obs);
        let span = approximate_span_cached(&job.plan, &obs, Some(&self.cache));
        let configs =
            candidate_configs_effective(&span, &Self::hint_set(job), self.params.m_candidates, rng);

        // Recompile every candidate under the budget, with panic isolation
        // and the shared cache, then vet each survivor against the default
        // plan (validator + differential fingerprint). A candidate that
        // panics, blows the budget, produces an invalid plan, or computes a
        // different result is discarded and counted — never executed.
        //
        // Static gate (when `params.lint_gate`): before any compile, the
        // `scope-lint` analyzer classifies the candidate against this job's
        // plan. `Invalid` verdicts are certain `NoImplementation` failures
        // — pre-lint these compiled, failed with a non-fatal error, and
        // were silently skipped, so skipping them sooner is invisible to
        // every other counter. `Redundant` verdicts replay the stored
        // result of the canonical-equivalent compile (success *or* error),
        // walking the exact counter paths a fresh, bit-identical compile
        // would have walked.
        //
        // Signature dedup: a survivor whose signature equals the default's
        // *is* the default plan, and one that repeats an earlier survivor's
        // signature is the same plan under different raw bits. Both stay in
        // the candidate statistics but are kept out of the execution pool,
        // so `execute_top_k` slots only go to genuinely distinct plans.
        // Bounds gate (when `params.bounds_gate`): the abstract
        // interpreter derives each candidate's *sound* whole-plan cost
        // lower bound from this job's plan and the enabled rule set — no
        // compile. A candidate whose bound exceeds the default's cost is
        // deferred; after the eager compiles fix the execution threshold
        // (the k-th cheapest distinct alternative), deferred candidates
        // the threshold cannot rule out are resolved, and the rest are
        // retired unseen. A final replay in original candidate order
        // rebuilds the pool so signature-dedup ownership, stable-sort tie
        // order, and every dynamic counter match the gate-off run exactly.
        let lint = self.params.lint_gate.then(|| JobLint::new(&job.plan));
        let bounds = self
            .params
            .bounds_gate
            .then(|| PlanBounds::analyze(&job.plan, &obs));
        let mut by_canonical: HashMap<
            RuleSet,
            Result<Arc<CompiledPlan>, scope_optimizer::CompileError>,
        > = HashMap::new();
        let mut vetting = CandidateFilterStats::default();
        // Static lint classification shared by both paths; `None` means
        // certainly-infeasible (already counted), `Some` carries the
        // canonical bits candidate compiles fold on.
        let classify = |lint: &JobLint,
                        config: &RuleConfig,
                        vetting: &mut CandidateFilterStats|
         -> Option<RuleSet> {
            match lint.classify(config) {
                ConfigVerdict::Invalid { .. } => {
                    vetting.static_invalid += 1;
                    scope_trace::count(Counter::LintInvalid, 1);
                    scope_trace::count(Counter::FunnelStaticRejected, 1);
                    None
                }
                ConfigVerdict::Redundant { canonical } => {
                    scope_trace::count(Counter::LintRedundant, 1);
                    Some(canonical)
                }
                ConfigVerdict::Dead { .. } => {
                    scope_trace::count(Counter::LintDead, 1);
                    Some(*config.enabled())
                }
                ConfigVerdict::Valid => {
                    scope_trace::count(Counter::LintValid, 1);
                    Some(*config.enabled())
                }
            }
        };
        // Compile one candidate, folding onto a canonical-equivalent
        // stored compile when the lint gate identified one.
        let compile_via = |canonical: Option<RuleSet>,
                           config: &RuleConfig,
                           by_canonical: &mut HashMap<
            RuleSet,
            Result<Arc<CompiledPlan>, scope_optimizer::CompileError>,
        >,
                           vetting: &mut CandidateFilterStats|
         -> Result<Arc<CompiledPlan>, scope_optimizer::CompileError> {
            match canonical {
                Some(bits) => match by_canonical.get(&bits) {
                    Some(stored) => {
                        vetting.static_redundant += 1;
                        stored.clone()
                    }
                    None => {
                        let fresh = self.compile_cached(job, &obs, fingerprint, config);
                        by_canonical.insert(bits, fresh.clone());
                        fresh
                    }
                },
                None => self.compile_cached(job, &obs, fingerprint, config),
            }
        };
        let mut state = PoolState::default();
        match &bounds {
            None => {
                for config in configs {
                    scope_trace::count(Counter::FunnelGenerated, 1);
                    let canonical = match &lint {
                        Some(lint) => match classify(lint, &config, &mut vetting) {
                            None => continue,
                            Some(bits) => Some(bits),
                        },
                        None => None,
                    };
                    let result = compile_via(canonical, &config, &mut by_canonical, &mut vetting);
                    state.absorb(
                        &mut vetting,
                        config,
                        result,
                        default,
                        self.params.cheaper_frac,
                        true,
                    );
                }
            }
            Some(bounds) => {
                // Phase 1: classify everything; compile eagerly only when
                // the cost lower bound does not already exceed the
                // default's cost (such a candidate can never be cheaper,
                // same-as-default, or trigger selection — it can only
                // claim a late execution slot).
                let mut slots: Vec<(RuleConfig, Disposition)> = Vec::new();
                for config in configs {
                    scope_trace::count(Counter::FunnelGenerated, 1);
                    let canonical = match &lint {
                        Some(lint) => match classify(lint, &config, &mut vetting) {
                            None => {
                                slots.push((config, Disposition::StaticInvalid));
                                continue;
                            }
                            Some(bits) => Some(bits),
                        },
                        None => None,
                    };
                    // Model-aware: under a corrected model the compiled
                    // costs shrink or grow with the correction factors, so
                    // the pruning floor must be widened the same way
                    // (bit-identical to `cost_lo` for the default model).
                    let lb = bounds.cost_lo_model(config.enabled(), &self.params.cost_model);
                    let disp = if lb > default.est_cost {
                        Disposition::Deferred { canonical, lb }
                    } else {
                        Disposition::Done(compile_via(
                            canonical,
                            &config,
                            &mut by_canonical,
                            &mut vetting,
                        ))
                    };
                    slots.push((config, disp));
                }
                // Phase 2: the execution threshold — the k-th cheapest
                // distinct vetted alternative among the eager compiles
                // (scratch replay; counters untouched). Soundness: every
                // deferred candidate's compiled cost would be ≥ its lower
                // bound, and a pool of ≥ k alternatives at or below the
                // threshold survives into the final replay, so a pruned
                // candidate (bound strictly above the threshold) can never
                // displace an executed one under the strict-`<` stable
                // sort — with the gate off it would compile, vet, and then
                // lose the same comparison.
                let top_k = self.params.execute_top_k;
                let threshold = if top_k == 0 {
                    f64::NEG_INFINITY
                } else {
                    let mut scratch = PoolState::default();
                    let mut scratch_vetting = CandidateFilterStats::default();
                    for (config, disp) in &slots {
                        if let Disposition::Done(result) = disp {
                            scratch.absorb(
                                &mut scratch_vetting,
                                config.clone(),
                                result.clone(),
                                default,
                                self.params.cheaper_frac,
                                false,
                            );
                        }
                    }
                    let mut ests: Vec<f64> =
                        scratch.recompiled.iter().map(|(_, c)| c.est_cost).collect();
                    if ests.len() < top_k {
                        f64::INFINITY
                    } else {
                        ests.sort_by(f64::total_cmp);
                        ests[top_k - 1]
                    }
                };
                // Phase 3: resolve the deferred candidates the threshold
                // cannot rule out; the rest are retired without a compile.
                for (config, disp) in &mut slots {
                    if let Disposition::Deferred { canonical, lb } = disp {
                        if *lb <= threshold {
                            *disp = Disposition::Done(compile_via(
                                *canonical,
                                config,
                                &mut by_canonical,
                                &mut vetting,
                            ));
                        }
                    }
                }
                // Phase 4: replay in original candidate order so dedup
                // ownership and sort-tie order match the gate-off run.
                for (config, disp) in slots {
                    match disp {
                        Disposition::StaticInvalid => {}
                        Disposition::Deferred { .. } => {
                            vetting.static_bounded += 1;
                            scope_trace::count(Counter::FunnelBoundsPruned, 1);
                        }
                        Disposition::Done(result) => {
                            state.absorb(
                                &mut vetting,
                                config,
                                result,
                                default,
                                self.params.cheaper_frac,
                                true,
                            );
                        }
                    }
                }
            }
        }
        let PoolState {
            n_candidates,
            n_cheaper,
            n_same_as_default,
            n_duplicate_plans,
            clearly_cheaper,
            mut recompiled,
            ..
        } = state;

        // §6.1 selection heuristics.
        let outlier = default_metrics.runtime > default.est_cost * self.params.outlier_ratio;
        let reason = if clearly_cheaper {
            SelectionReason::CheaperPlans
        } else if outlier {
            SelectionReason::LowCostHighRuntime
        } else {
            return None;
        };

        // Execute the K cheapest distinct alternatives. Trials that fail or
        // time out (after the retry policy gives up) are evidence against
        // the candidate, not a reason to abort the job: discard and count.
        recompiled.sort_by(|a, b| a.1.est_cost.total_cmp(&b.1.est_cost));
        recompiled.truncate(self.params.execute_top_k);
        let mut executed = Vec::new();
        let mut n_failed = 0usize;
        for (config, c) in recompiled {
            scope_trace::count(Counter::FunnelExecuted, 1);
            let run = self.ab.run_with_retry(job, &c.plan, 0, &self.params.retry);
            if !run.outcome.is_success() || !run.metrics.is_valid() {
                n_failed += 1;
                continue;
            }
            executed.push(CandidateOutcome {
                config,
                est_cost: c.est_cost,
                signature: c.signature,
                metrics: run.metrics,
            });
        }
        scope_trace::record(Histogram::CandidatesExecutedPerJob, executed.len() as u64);

        Some(JobOutcome {
            job_id: job.id,
            template: job.template,
            day: job.day,
            group: default.signature,
            default_cost: default.est_cost,
            default_metrics,
            span_size: span.len(),
            n_candidates,
            n_cheaper,
            n_same_as_default,
            n_duplicate_plans,
            reason,
            executed,
            n_failed,
            vetting,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_workload::{Workload, WorkloadProfile};

    fn pipeline() -> Pipeline {
        Pipeline::new(
            ABTester::new(11),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                ..PipelineParams::default()
            },
        )
    }

    #[test]
    fn discovery_finds_improvements_on_a_small_day() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(!report.outcomes.is_empty(), "no jobs analyzed");
        for o in &report.outcomes {
            assert!(o.executed.len() <= 5);
            assert!(o.n_candidates > 0);
            assert!(o.span_size > 0);
        }
        // The planted divergences guarantee at least one improving job even
        // at this tiny scale.
        assert!(
            !report.improved(5.0).is_empty(),
            "expected at least one >5% improvement"
        );
    }

    #[test]
    fn outcome_metric_helpers_are_consistent() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(2);
        let report = p.discover(&jobs, &mut rng);
        let o = report.outcomes.first().expect("an outcome");
        let best = o.best_by(Metric::Runtime).expect("executed candidates");
        assert!(best.metrics.runtime <= o.executed[0].metrics.runtime);
        assert!(o.best_known_runtime() <= o.default_metrics.runtime);
        let changes = o.change_when_optimizing(Metric::CpuTime).unwrap();
        // Optimizing CPU: its own column must be the best achievable.
        let direct = o
            .executed
            .iter()
            .map(|c| pct_change(o.default_metrics.cpu_time, c.metrics.cpu_time))
            .fold(f64::INFINITY, f64::min);
        assert!((changes[1] - direct).abs() < 1e-9);
    }

    #[test]
    fn cheap_selection_reason_reported() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(3);
        let report = p.discover(&jobs, &mut rng);
        assert!(report
            .outcomes
            .iter()
            .any(|o| o.reason == SelectionReason::CheaperPlans));
    }

    #[test]
    fn faultless_discovery_is_unchanged_by_the_fault_plumbing() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = pipeline();
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert_eq!(report.failed_defaults, 0);
        assert_eq!(report.failed_candidates, 0);
        for o in &report.outcomes {
            assert_eq!(o.n_failed, 0);
        }
        // The *dynamic* guardrail must be invisible on healthy rules: no
        // legitimate configuration panics, blows the generous default
        // budget, emits an invalid plan, or changes the job's result
        // fingerprint. (The static analyzer may still retire certainly
        // infeasible or redundant candidates before compile — those are
        // counted separately and change nothing observable.)
        assert_eq!(report.dynamic_rejections(), 0);
        assert_eq!(report.vetting.panicked, 0);
        assert_eq!(report.vetting.over_budget, 0);
        assert_eq!(report.vetting.invalid, 0);
        assert_eq!(report.vetting.diverged, 0);
    }

    /// Strip the static-analyzer counters from a report so runs with the
    /// lint gate on and off can be compared field-for-field.
    fn lint_insensitive_view(report: &DiscoveryReport) -> String {
        let strip = |mut v: CandidateFilterStats| {
            v.static_invalid = 0;
            v.static_redundant = 0;
            v
        };
        let vetting = strip(report.vetting);
        let outcomes: Vec<JobOutcome> = report
            .outcomes
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.vetting = strip(o.vetting);
                o
            })
            .collect();
        // Cache lookup counts are excluded: folding redundant candidates
        // legitimately avoids lookups without changing any result.
        format!(
            "{:?}|{}|{}|{}|{}|{:?}|{}",
            outcomes,
            report.not_selected,
            report.out_of_window,
            report.failed_defaults,
            report.failed_candidates,
            vetting,
            report.duplicate_plans,
        )
    }

    #[test]
    fn lint_gate_preserves_discovery_bit_for_bit() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let run = |lint_gate: bool| {
            let p = Pipeline::new(
                ABTester::new(11),
                PipelineParams {
                    m_candidates: 120,
                    execute_top_k: 5,
                    sample_frac: 1.0,
                    lint_gate,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(1);
            p.discover(&jobs, &mut rng)
        };
        let with = run(true);
        let without = run(false);
        // The gate only skips certainly-failing compiles and replays
        // canonical-equivalent ones, so every legacy field — outcomes
        // (plans, costs, signatures, metrics), dedup counts, dynamic
        // guardrail counters — must be bit-identical.
        assert_eq!(
            lint_insensitive_view(&with),
            lint_insensitive_view(&without)
        );
        assert_eq!(
            with.vetting.dynamic_total(),
            without.vetting.dynamic_total()
        );
        assert_eq!(without.vetting.static_total(), 0, "gate off must not count");
        assert!(
            with.vetting.static_total() > 0,
            "expected the analyzer to retire or fold at least one candidate"
        );
    }

    /// Strip the counters the bounds gate legitimately changes — the
    /// candidate census over the retired tail and the static funnel — so
    /// gate-on and gate-off runs can be compared field-for-field on
    /// everything observable (executed configs/plans/costs/metrics,
    /// selection reasons, dedup against the default, dynamic guardrails).
    fn bounds_insensitive_view(report: &DiscoveryReport) -> String {
        let strip = |mut v: CandidateFilterStats| {
            v.static_invalid = 0;
            v.static_redundant = 0;
            v.static_bounded = 0;
            v
        };
        let vetting = strip(report.vetting);
        let outcomes: Vec<JobOutcome> = report
            .outcomes
            .iter()
            .map(|o| {
                let mut o = o.clone();
                o.vetting = strip(o.vetting);
                o.n_candidates = 0;
                o.n_duplicate_plans = 0;
                o
            })
            .collect();
        format!(
            "{:?}|{}|{}|{}|{}|{:?}",
            outcomes,
            report.not_selected,
            report.out_of_window,
            report.failed_defaults,
            report.failed_candidates,
            vetting,
        )
    }

    #[test]
    fn bounds_gate_preserves_discovery_bit_for_bit() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let run = |bounds_gate: bool, seed: u64| {
            let p = Pipeline::new(
                ABTester::new(11),
                PipelineParams {
                    m_candidates: 120,
                    execute_top_k: 5,
                    sample_frac: 1.0,
                    bounds_gate,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(seed);
            p.discover(&jobs, &mut rng)
        };
        for seed in [1, 2, 3] {
            let with = run(true, seed);
            let without = run(false, seed);
            assert_eq!(
                bounds_insensitive_view(&with),
                bounds_insensitive_view(&without),
                "seed {seed}: bounds gate changed an observable result"
            );
            // Every executed alternative — the hints discovery would ship —
            // must match bit for bit, config bits included.
            for (a, b) in with.outcomes.iter().zip(without.outcomes.iter()) {
                assert_eq!(a.executed.len(), b.executed.len());
                for (x, y) in a.executed.iter().zip(b.executed.iter()) {
                    assert_eq!(x.config.enabled(), y.config.enabled());
                    assert_eq!(x.signature, y.signature);
                    assert!((x.est_cost - y.est_cost).abs() == 0.0);
                }
            }
            assert_eq!(without.vetting.static_bounded, 0, "gate off must not count");
        }
        // At least one seed must show the gate actually retiring compiles,
        // or the whole phase ladder is dead weight.
        let pruned: usize = [1, 2, 3]
            .iter()
            .map(|&s| run(true, s).vetting.static_bounded)
            .sum();
        assert!(pruned > 0, "bounds gate never pruned a candidate");
    }

    #[test]
    fn idle_feedback_store_preserves_discovery_bit_for_bit() {
        use crate::feedback::CorrectionStore;
        use scope_optimizer::{CostModel, CostWeights};

        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let run = |model: CostModel, seed: u64| {
            let p = Pipeline::new(
                ABTester::new(11),
                PipelineParams {
                    m_candidates: 120,
                    execute_top_k: 5,
                    sample_frac: 1.0,
                    cost_model: model,
                    ..PipelineParams::default()
                },
            );
            let mut rng = StdRng::seed_from_u64(seed);
            p.discover(&jobs, &mut rng)
        };
        // A store that has *ingested* plenty of signal but never crossed a
        // day boundary hands out the identity model — pending corrections
        // must be invisible to discovery.
        let mut store = CorrectionStore::new();
        for token in 0..20u64 {
            store.ingest(
                42,
                token,
                &scope_optimizer::CostEstimate {
                    cpu: 1.0,
                    io: 1.0,
                    ..scope_optimizer::CostEstimate::ZERO
                },
                &RunMetrics {
                    runtime: 6.0,
                    cpu_time: 3.0,
                    io_time: 3.0,
                    memory: 0.0,
                },
                false,
            );
        }
        let idle = store.model_for(42, CostWeights::DEFAULT);
        assert_eq!(
            idle.fingerprint_bits(),
            CostModel::DEFAULT.fingerprint_bits()
        );
        for seed in [1, 2, 3] {
            let baseline = run(CostModel::DEFAULT, seed);
            let with_store = run(idle, seed);
            assert_eq!(
                bounds_insensitive_view(&baseline),
                bounds_insensitive_view(&with_store),
                "seed {seed}: an unpromoted feedback store changed discovery"
            );
            for (a, b) in baseline.outcomes.iter().zip(with_store.outcomes.iter()) {
                assert_eq!(a.executed.len(), b.executed.len());
                for (x, y) in a.executed.iter().zip(b.executed.iter()) {
                    assert_eq!(x.config.enabled(), y.config.enabled());
                    assert_eq!(x.signature, y.signature);
                    assert!((x.est_cost - y.est_cost).abs() == 0.0);
                }
            }
        }
    }

    #[test]
    fn tiny_compile_budget_discards_candidates_but_discovery_completes() {
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        let p = Pipeline::new(
            ABTester::new(11),
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                // Far below what any real compile needs: every candidate
                // recompile must be discarded as over-budget, while the
                // default compiles (not budget-limited here) still anchor
                // the day.
                compile_budget: CompileBudget::with_max_tasks(1),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(report.vetting.over_budget > 0, "budget never fired");
        assert_eq!(report.vetting.panicked, 0);
        // With no surviving candidates no job is selected for execution,
        // but nothing panics and the day completes on default plans.
        assert!(report.outcomes.iter().all(|o| o.n_candidates == 0));
    }

    #[test]
    fn discovery_survives_injected_faults_and_discards_failures() {
        use scope_exec::FaultProfile;
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        // A cluster bad enough that many trials die even after retries.
        let mut profile = FaultProfile::with_vertex_failures(5e-3);
        profile.max_retries = 1;
        let ab = ABTester::new(11).with_faults(profile);
        let p = Pipeline::new(
            ab,
            PipelineParams {
                m_candidates: 120,
                execute_top_k: 5,
                sample_frac: 1.0,
                retry: scope_exec::RetryPolicy::no_retries(),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        // The guarantee under test: no panic, no NaN, failures accounted.
        let report = p.discover(&jobs, &mut rng);
        let failed: usize = report.outcomes.iter().map(|o| o.n_failed).sum();
        assert_eq!(report.failed_candidates, failed);
        assert!(
            report.failed_defaults > 0 || failed > 0,
            "this fault rate should kill at least one trial"
        );
        for o in &report.outcomes {
            for c in &o.executed {
                assert!(c.metrics.is_valid());
            }
            // best_by must stay well-defined on whatever survived.
            if !o.executed.is_empty() {
                assert!(o.best_by(Metric::Runtime).is_some());
                assert!(o.best_runtime_change_pct().is_finite());
            }
        }
    }

    #[test]
    fn jobs_with_failing_defaults_are_skipped_not_analyzed() {
        use scope_exec::FaultProfile;
        let w = Workload::generate(WorkloadProfile::workload_a(0.06));
        let jobs = w.day(0);
        // Every attempt of every stage dies: no default baseline survives.
        let mut profile = FaultProfile::with_vertex_failures(1.0);
        profile.max_retries = 0;
        let ab = ABTester::new(11).with_faults(profile);
        let p = Pipeline::new(
            ab,
            PipelineParams {
                sample_frac: 1.0,
                retry: scope_exec::RetryPolicy::no_retries(),
                ..PipelineParams::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(1);
        let report = p.discover(&jobs, &mut rng);
        assert!(report.failed_defaults > 0);
        assert!(
            report.outcomes.is_empty(),
            "no job should survive a 100% vertex failure rate"
        );
    }
}
