//! Empirical discovery of independent rule subsets (§5.2 / §8).
//!
//! The paper assumes rule *categories* are mutually independent to shrink
//! the configuration search space, and names finer-grained independence
//! discovery as future work: "such improvements can discover independent
//! subsets of rules, which will make the space of rule configurations
//! smaller". This module implements that extension: probe pairs of span
//! rules for interaction and partition the span into independent groups
//! via union-find.
//!
//! Two rules *interact* on a job if disabling them together produces an
//! effect the single disables do not predict — the pair's signature delta
//! (vs the all-enabled baseline) touches rules outside the union of the
//! single-disable deltas. Rules that never interact can be searched
//! separately, reducing `2^(a+b)` configurations to `2^a + 2^b`.

use scope_ir::{ObservableCatalog, PlanGraph};
use scope_optimizer::{compile, RuleCatalog, RuleConfig, RuleId, RuleSet};

use crate::span::JobSpan;

/// A partition of a span into independent groups.
#[derive(Clone, Debug, PartialEq)]
pub struct IndependentGroups {
    /// Disjoint rule sets; rules in different sets were never observed to
    /// interact on this job.
    pub groups: Vec<RuleSet>,
    /// Number of compilations spent probing.
    pub compiles: usize,
}

impl IndependentGroups {
    /// `log2` of the configuration-space size under the discovered
    /// partition: `Σ 2^|g|` versus the naive `2^Σ|g|`.
    pub fn search_space_log2(&self) -> f64 {
        let total: f64 = self
            .groups
            .iter()
            .map(|g| (2.0f64).powi(g.len() as i32))
            .sum();
        total.log2()
    }

    /// The group containing `rule`, if any.
    pub fn group_of(&self, rule: RuleId) -> Option<&RuleSet> {
        self.groups.iter().find(|g| g.contains(rule))
    }
}

/// Union-find over span-rule indexes.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Probe pairwise interactions among the span's rules and partition them
/// into independent groups. `max_pairs` bounds the probing budget (pairs
/// beyond it are conservatively merged into one group).
pub fn discover_independent_groups(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    span: &JobSpan,
    max_pairs: usize,
) -> IndependentGroups {
    let rules: Vec<RuleId> = span.rules.iter().collect();
    let n = rules.len();
    let mut compiles = 0usize;
    let full = RuleCatalog::global().non_required();

    // Signature under a configuration disabling `set`; None = no compile.
    let run = |disabled: &RuleSet, compiles: &mut usize| -> Option<RuleSet> {
        *compiles += 1;
        let config = RuleConfig::from_enabled(full.difference(disabled));
        compile(plan, obs, &config).ok().map(|c| c.signature.0)
    };

    // Baseline (nothing disabled) and single-rule probes.
    let base = run(&RuleSet::EMPTY, &mut compiles);
    let mut singles: Vec<Option<RuleSet>> = Vec::with_capacity(n);
    for &r in &rules {
        let mut d = RuleSet::EMPTY;
        d.insert(r);
        singles.push(run(&d, &mut compiles));
    }

    // Symmetric difference, used to compose independent effects.
    fn xor(a: &RuleSet, b: &RuleSet) -> RuleSet {
        a.difference(b).union(&b.difference(a))
    }

    let mut dsu = Dsu::new(n);
    let mut budget = max_pairs;
    'outer: for i in 0..n {
        if singles[i].is_none() {
            // Load-bearing rule: disabling it alone already fails, so it can
            // never be toggled regardless of other rules — a singleton group,
            // not an interaction with everything.
            continue;
        }
        for j in (i + 1)..n {
            if singles[j].is_none() {
                continue;
            }
            if dsu.find(i) == dsu.find(j) {
                continue; // already known to interact transitively
            }
            if budget == 0 {
                // Conservative: merge everything not yet separated.
                for k in 1..n {
                    dsu.union(0, k);
                }
                break 'outer;
            }
            budget -= 1;
            let mut d = RuleSet::EMPTY;
            d.insert(rules[i]);
            d.insert(rules[j]);
            let pair = run(&d, &mut compiles);
            let interacts = match (&pair, &singles[i], &singles[j], &base) {
                (Some(p), Some(si), Some(sj), Some(b)) => {
                    // Two rules are independent when disabling them together
                    // only moves rules that one of the single disables
                    // already moved — the pair introduces no *new* effect.
                    // (Exact XOR composition is too strict: global cost
                    // coupling legitimately reorders choices within each
                    // rule's known effect set.)
                    let delta_i = xor(si, b);
                    let delta_j = xor(sj, b);
                    let delta_pair = xor(p, b);
                    !delta_pair.difference(&delta_i.union(&delta_j)).is_empty()
                }
                // A compile failure appearing only under the pair (or only
                // under a single) is itself an interaction.
                (None, Some(_), Some(_), Some(_)) => true,
                _ => true,
            };
            if interacts {
                dsu.union(i, j);
            }
        }
    }

    // Materialize groups.
    let mut by_root: std::collections::HashMap<usize, RuleSet> = std::collections::HashMap::new();
    for (idx, &r) in rules.iter().enumerate() {
        by_root
            .entry(dsu.find(idx))
            .or_insert(RuleSet::EMPTY)
            .insert(r);
    }
    let mut groups: Vec<RuleSet> = by_root.into_values().collect();
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    IndependentGroups { groups, compiles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::approximate_span;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{DomainId, TableId};
    use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
    use scope_ir::TrueCatalog;

    fn job() -> (PlanGraph, ObservableCatalog) {
        let mut cat = TrueCatalog::new();
        let k0 = cat.add_column(50_000, 0.0, DomainId(0));
        let a = cat.add_column(200, 0.0, DomainId(1));
        let k1 = cat.add_column(50_000, 0.0, DomainId(0));
        let b = cat.add_column(1_000, 0.0, DomainId(2));
        cat.add_table(2_000_000, 120, 11, vec![k0, a]);
        cat.add_table(800_000, 80, 22, vec![k1, b]);
        let mut g = PlanGraph::new();
        let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = g.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate::atom(PredAtom::unknown(a, CmpOp::Eq, Literal::Int(7))),
            },
            vec![s0],
        );
        let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
        let j = g.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(k0, k1)],
            },
            vec![f, s1],
        );
        let agg = g.add_unchecked(
            LogicalOp::GroupBy {
                keys: vec![b],
                aggs: vec![AggFunc::Count],
                partial: false,
            },
            vec![j],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
        g.set_root(o);
        (g, cat.observe())
    }

    #[test]
    fn partition_covers_span_disjointly() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        let groups = discover_independent_groups(&plan, &obs, &span, 500);
        let mut union = RuleSet::EMPTY;
        let mut total = 0;
        for g in &groups.groups {
            assert!(union.intersection(g).is_empty(), "groups overlap");
            union = union.union(g);
            total += g.len();
        }
        assert_eq!(total, span.len(), "partition must cover the span");
        assert_eq!(union, span.rules);
    }

    #[test]
    fn independence_shrinks_the_search_space() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        let groups = discover_independent_groups(&plan, &obs, &span, 500);
        // At least some independence must be discovered for this job (e.g.
        // scan implementations vs aggregation implementations).
        assert!(groups.groups.len() >= 2, "no independence found");
        assert!(
            groups.search_space_log2() < span.len() as f64,
            "partitioned space {} not smaller than 2^{}",
            groups.search_space_log2(),
            span.len()
        );
    }

    #[test]
    fn zero_budget_collapses_to_one_group() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        let groups = discover_independent_groups(&plan, &obs, &span, 0);
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0], span.rules);
    }

    #[test]
    fn group_of_finds_members() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        let groups = discover_independent_groups(&plan, &obs, &span, 500);
        for rule in span.rules.iter() {
            assert!(groups.group_of(rule).is_some());
        }
        assert!(
            groups.group_of(RuleId(0)).is_none(),
            "required rule not in span"
        );
    }
}
