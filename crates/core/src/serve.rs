//! The failure-hardened online serving layer ("steering as a service").
//!
//! QO-Advisor survived production because its serving path was boring and
//! safe: hint lookup is O(1), never blocks on compilation, and *every*
//! failure degrades to the unsteered default plan instead of an error.
//! This module is that path for the reproduction — a long-running
//! steering service driven by streaming job arrival
//! ([`scope_exec::arrival`]) instead of `compile_day` batches:
//!
//! * [`ServingTable`] — the sharded, lock-light read path: rule-signature
//!   → [`ServingEntry`], rebuilt by copy-on-write snapshot swaps from the
//!   [`FlightController`]'s state so readers only ever take a shard read
//!   lock for the instant it takes to clone an `Arc`. Entries carry an
//!   FNV-style checksum so a torn write is *detected and refused* (served
//!   default) rather than served corrupt. [`ServingTable::retire`]
//!   removes a group synchronously, which is what makes "never serve a
//!   rolled-back or quarantined hint" a hard invariant even when a torn
//!   snapshot swap leaves shards at mixed versions.
//! * [`CircuitBreaker`] — wraps the flighting/revalidation interactions
//!   (journal writes, background probes): trips open after N consecutive
//!   failures, half-opens on a timer, closes again on a clean probe.
//! * [`DegradedMode`] — the typed degradation ladder
//!   Healthy → HintsStale → DefaultOnly, walked down and back up one rung
//!   per tick from observed shed/timeout rates and breaker state.
//! * [`SteeringService`] — ties it together: deterministic admission
//!   control with explicit load shedding at the inflight ceiling (shed
//!   requests are *served the default config*, never errored), a
//!   per-request decision deadline with hard default fallback, and a
//!   decision function that is a pure read so the parallel fan-out
//!   ([`run_chunked_on`]) is bit-identical at any thread count.
//!
//! Determinism contract: [`SteeringService::serve_day`] runs a sequential
//! admission/mode pass over arrivals ordered by `(arrival_us, job_id)`
//! (all stateful transitions happen here), then computes the admitted
//! decisions in parallel as pure functions of the immutable table
//! snapshot — so 1, 2, and 4 serving threads produce bit-identical
//! decision streams, which `exp_serving` asserts under every fault
//! profile.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BinaryHeap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use scope_exec::faults::ServeFaultProfile;
use scope_optimizer::RuleConfig;
use scope_trace::{count, record, Counter, Histogram};

use crate::deploy::HintStatus;
use crate::flight::{flight_salt, FlightController};
use crate::par::run_chunked_on;

/// Hash a sequence of `Hash` pieces with the std SipHash-backed hasher —
/// deterministic for fixed inputs, the same property the rollout split
/// and plan fingerprints already rely on.
fn hash64<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// A unit-interval draw that is a pure function of its arguments (same
/// construction as `scope_exec::arrival`): the serving layer's only
/// source of "randomness", so every fault roll replays bit-identically.
fn unit(seed: u64, day: u32, idx: u64, stream: u64) -> f64 {
    let h = hash64(&(seed, day, idx, stream));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------
// Serving table
// ---------------------------------------------------------------------

/// One published hint on the read path. Self-contained and checksummed:
/// a reader can validate an entry without consulting any other shard or
/// version, which is what makes torn snapshot swaps safe to detect.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingEntry {
    /// Group key (default-signature bit string).
    pub group: String,
    /// The steered configuration to serve.
    pub config: RuleConfig,
    /// Rollout exposure at publish time (1..=100; 0-exposure groups are
    /// never published).
    pub exposure_pct: u8,
    /// Per-flight salt for the deterministic traffic split.
    pub salt: u64,
    /// Publish version that wrote this entry.
    pub version: u64,
    /// Checksum over every other field.
    pub check: u64,
}

impl ServingEntry {
    pub fn new(
        group: String,
        config: RuleConfig,
        exposure_pct: u8,
        salt: u64,
        version: u64,
    ) -> ServingEntry {
        let mut e = ServingEntry {
            group,
            config,
            exposure_pct,
            salt,
            version,
            check: 0,
        };
        e.check = e.checksum();
        e
    }

    /// The checksum the `check` field must carry.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        hash64(&(
            &self.group,
            &self.config,
            self.exposure_pct,
            self.salt,
            self.version,
        ))
    }

    /// Whether the entry survived storage intact.
    #[must_use]
    pub fn is_intact(&self) -> bool {
        self.check == self.checksum()
    }

    /// A torn-write twin of this entry (checksum deliberately wrong) —
    /// used by the chaos harness to plant detectable corruption.
    #[must_use]
    pub fn corrupted(mut self) -> ServingEntry {
        self.check ^= 0xDEAD_BEEF;
        self
    }
}

/// What a table lookup found.
#[derive(Clone, Debug, PartialEq)]
pub enum Lookup {
    /// An intact entry.
    Hit(ServingEntry),
    /// No entry for the group.
    Miss,
    /// An entry was present but failed its checksum — the caller must
    /// serve the default config.
    Torn,
}

/// An immutable shard snapshot. Readers clone the `Arc` and search the
/// map without holding any lock.
#[derive(Debug, Default)]
struct Shard {
    entries: BTreeMap<String, ServingEntry>,
    version: u64,
}

/// The sharded, lock-light rule-signature → hint map. Writers build a
/// whole replacement [`Shard`] off to the side and swap it in under the
/// shard's write lock (copy-on-write); readers hold the read lock only
/// long enough to clone the `Arc`.
pub struct ServingTable {
    shards: Box<[RwLock<Arc<Shard>>]>,
}

impl ServingTable {
    /// A table with `n_shards` shards (clamped to at least 1).
    #[must_use]
    pub fn new(n_shards: usize) -> ServingTable {
        let shards = (0..n_shards.max(1))
            .map(|_| RwLock::new(Arc::new(Shard::default())))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ServingTable { shards }
    }

    fn shard_of(&self, group: &str) -> usize {
        (hash64(&group) % self.shards.len() as u64) as usize
    }

    fn shard_snapshot(&self, i: usize) -> Arc<Shard> {
        Arc::clone(&self.shards[i].read().expect("shard lock poisoned"))
    }

    /// O(1)-ish lookup on the read path: hash to a shard, clone the
    /// snapshot `Arc`, search the immutable map. A checksum-corrupt entry
    /// is reported as [`Lookup::Torn`], never returned.
    #[must_use]
    pub fn lookup(&self, group: &str) -> Lookup {
        let shard = self.shard_snapshot(self.shard_of(group));
        match shard.entries.get(group) {
            None => Lookup::Miss,
            Some(e) if e.is_intact() => Lookup::Hit(e.clone()),
            Some(_) => {
                count(Counter::ServeTornReads, 1);
                Lookup::Torn
            }
        }
    }

    /// Copy-on-write snapshot swap: distribute `entries` to their shards
    /// and swap each shard's `Arc`. When `complete_shards` is `Some(k)`
    /// only the first `k` shards are swapped — the publisher "crashed"
    /// mid-publish (torn swap) — leaving later shards at their previous
    /// version. Returns the number of entries that actually landed.
    pub fn publish(&self, entries: Vec<ServingEntry>, complete_shards: Option<usize>) -> usize {
        let version = entries.iter().map(|e| e.version).max().unwrap_or(0);
        let mut per_shard: Vec<BTreeMap<String, ServingEntry>> =
            (0..self.shards.len()).map(|_| BTreeMap::new()).collect();
        for e in entries {
            per_shard[self.shard_of(&e.group)].insert(e.group.clone(), e);
        }
        let stop = complete_shards
            .unwrap_or(self.shards.len())
            .min(self.shards.len());
        let mut landed = 0usize;
        for (i, entries) in per_shard.into_iter().enumerate() {
            if i >= stop {
                break;
            }
            landed += entries.len();
            let next = Arc::new(Shard { entries, version });
            *self.shards[i].write().expect("shard lock poisoned") = next;
        }
        count(Counter::ServeTableSwaps, 1);
        record(Histogram::ServeTableEntries, landed as u64);
        landed
    }

    /// Synchronously remove `group` from its shard (rollback/quarantine).
    /// Works at any shard version, so a group retired after a *torn*
    /// publish is still gone from whatever snapshot its shard carries —
    /// the invariant behind "zero decisions on rolled-back hints".
    pub fn retire(&self, group: &str) -> bool {
        let i = self.shard_of(group);
        let mut guard = self.shards[i].write().expect("shard lock poisoned");
        if !guard.entries.contains_key(group) {
            return false;
        }
        let mut entries = guard.entries.clone();
        entries.remove(group);
        *guard = Arc::new(Shard {
            entries,
            version: guard.version,
        });
        count(Counter::ServeRetired, 1);
        true
    }

    /// Total published entries (sums shard snapshots; approximate under
    /// concurrent writes).
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len())
            .map(|i| self.shard_snapshot(i).entries.len())
            .sum()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard snapshot versions — mixed values betray a torn swap.
    #[must_use]
    pub fn shard_versions(&self) -> Vec<u64> {
        (0..self.shards.len())
            .map(|i| self.shard_snapshot(i).version)
            .collect()
    }
}

/// Build the publishable entries for a controller's current state: every
/// flight with non-zero exposure whose hint is still [`HintStatus::Active`].
/// Quarantined, suspended, candidate, and rolled-back groups are *never*
/// published.
#[must_use]
pub fn build_entries(flights: &FlightController, version: u64) -> Vec<ServingEntry> {
    let mut entries = Vec::new();
    for (group, state) in flights.flights() {
        let exposure = state.stage.exposure_pct(&flights.config);
        if exposure == 0 {
            continue;
        }
        let Some(hint) = flights.store.hint(group) else {
            continue;
        };
        if hint.status != HintStatus::Active {
            continue;
        }
        entries.push(ServingEntry::new(
            group.clone(),
            hint.config.clone(),
            exposure,
            flight_salt(group),
            version,
        ));
    }
    entries
}

// ---------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------

/// Breaker state machine (virtual-clock driven, so tests and the chaos
/// harness replay it deterministically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Operations flow through.
    Closed,
    /// Tripped: operations are skipped until the cooldown expires.
    Open {
        /// Virtual time at which the breaker half-opens.
        until_us: u64,
    },
    /// Cooldown expired: one probe operation is allowed through; its
    /// outcome decides Closed vs re-Open.
    HalfOpen,
}

/// A consecutive-failure circuit breaker around the flighting/
/// revalidation interactions (journal writes, background probes).
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    /// Consecutive failures that trip the breaker.
    pub threshold: u32,
    /// Virtual µs the breaker stays open before half-opening.
    pub cooldown_us: u64,
    /// Lifetime Closed→Open transitions.
    pub trips: u64,
    /// Lifetime Open→HalfOpen transitions.
    pub half_opens: u64,
}

impl CircuitBreaker {
    #[must_use]
    pub fn new(threshold: u32, cooldown_us: u64) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            threshold: threshold.max(1),
            cooldown_us,
            trips: 0,
            half_opens: 0,
        }
    }

    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether the breaker currently blocks operations (Open and still
    /// cooling down at `now_us`).
    #[must_use]
    pub fn is_open(&self, now_us: u64) -> bool {
        matches!(self.state, BreakerState::Open { until_us } if now_us < until_us)
    }

    /// Ask to run one operation at virtual time `now_us`. Open breakers
    /// half-open once the cooldown expires (allowing a probe).
    pub fn allows(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_us } => {
                if now_us >= until_us {
                    self.state = BreakerState::HalfOpen;
                    self.half_opens += 1;
                    count(Counter::ServeBreakerHalfOpens, 1);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report the outcome of an allowed operation.
    pub fn record(&mut self, ok: bool, now_us: u64) {
        if ok {
            self.consecutive_failures = 0;
            if self.state == BreakerState::HalfOpen {
                self.state = BreakerState::Closed;
            }
            return;
        }
        self.consecutive_failures += 1;
        let trip = match self.state {
            // A failed probe re-trips immediately.
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.threshold,
            BreakerState::Open { .. } => false,
        };
        if trip {
            self.state = BreakerState::Open {
                until_us: now_us + self.cooldown_us,
            };
            self.trips += 1;
            self.consecutive_failures = 0;
            count(Counter::ServeBreakerTrips, 1);
        }
    }
}

// ---------------------------------------------------------------------
// Degraded-mode ladder
// ---------------------------------------------------------------------

/// The service's typed degradation ladder. Transitions are one rung per
/// tick in either direction — hysteresis lives in the tick cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradedMode {
    /// Full service: hints served, table refreshed from flighting.
    Healthy,
    /// Hints still served from the existing table, but refreshes are
    /// suspended (flighting interactions failing or shedding elevated).
    HintsStale,
    /// Every request gets the default config; the table is not consulted.
    DefaultOnly,
}

impl DegradedMode {
    /// One rung worse.
    #[must_use]
    pub fn down(self) -> DegradedMode {
        match self {
            DegradedMode::Healthy => DegradedMode::HintsStale,
            DegradedMode::HintsStale | DegradedMode::DefaultOnly => DegradedMode::DefaultOnly,
        }
    }

    /// One rung better.
    #[must_use]
    pub fn up(self) -> DegradedMode {
        match self {
            DegradedMode::DefaultOnly => DegradedMode::HintsStale,
            DegradedMode::HintsStale | DegradedMode::Healthy => DegradedMode::Healthy,
        }
    }

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegradedMode::Healthy => "healthy",
            DegradedMode::HintsStale => "hints_stale",
            DegradedMode::DefaultOnly => "default_only",
        }
    }
}

// ---------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------

/// Tunables for the steering service. Defaults target the virtual-µs
/// clock of [`scope_exec::arrival`].
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Serving-table shards.
    pub shards: usize,
    /// Per-request decision budget (µs); expiry → hard default fallback.
    pub deadline_us: u64,
    /// Simulated healthy decision latency (µs).
    pub base_latency_us: u64,
    /// Latency billed to a shed request (µs) — the admission check only.
    pub shed_latency_us: u64,
    /// Admission ceiling: arrivals beyond this many inflight decisions
    /// are shed (served default).
    pub max_inflight: usize,
    /// Consecutive flighting-op failures that trip the breaker.
    pub breaker_failures: u32,
    /// Breaker cooldown before half-opening (virtual µs).
    pub breaker_cooldown_us: u64,
    /// Mode-ladder evaluation cadence (virtual µs).
    pub tick_us: u64,
    /// Bad-request fraction per tick at or above which the mode steps
    /// down one rung.
    pub degrade_frac: f64,
    /// Bad-request fraction per tick at or below which the mode steps
    /// back up one rung (requires a closed breaker).
    pub recover_frac: f64,
    /// Seed for the deterministic fault rolls.
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            shards: 8,
            deadline_us: 1_000,
            base_latency_us: 120,
            shed_latency_us: 5,
            max_inflight: 64,
            breaker_failures: 3,
            breaker_cooldown_us: 4 * 3_600_000_000, // 4 virtual hours
            tick_us: 3_600_000_000,                 // 1 virtual hour
            degrade_frac: 0.10,
            recover_frac: 0.02,
            seed: 2021,
        }
    }
}

/// One streaming steering request: the job, its precomputed group key
/// (the default plan's rule signature, computed once when the recurring
/// job was first seen — the serving path never compiles), and its virtual
/// arrival time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeRequest {
    pub job_id: u64,
    pub group_key: String,
    pub arrival_us: u64,
}

/// Why a request got the config it got. Every variant except `Steered`
/// means "the default config" — there is no error path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DecisionReason {
    /// Served the hint (in the rollout split, entry intact).
    Steered,
    /// No published hint for the group.
    NoHint,
    /// Hint exists but the job hashed outside the exposure split.
    HeldBack,
    /// Shed by admission control at the inflight ceiling.
    Shed,
    /// Decision budget expired; hard fallback.
    DeadlineExpired,
    /// Service is in [`DegradedMode::DefaultOnly`].
    DegradedDefault,
    /// The entry failed its checksum (torn write) and was refused.
    TornEntry,
}

impl DecisionReason {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DecisionReason::Steered => "steered",
            DecisionReason::NoHint => "no_hint",
            DecisionReason::HeldBack => "held_back",
            DecisionReason::Shed => "shed",
            DecisionReason::DeadlineExpired => "deadline_expired",
            DecisionReason::DegradedDefault => "degraded_default",
            DecisionReason::TornEntry => "torn_entry",
        }
    }
}

/// One steering decision. Always carries a servable config — callers
/// never see an error.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    pub job_id: u64,
    pub arrival_us: u64,
    /// Decision latency (µs, virtual). Capped at the deadline by
    /// construction: an expired budget *is* the fallback.
    pub latency_us: u64,
    pub steered: bool,
    /// The group whose hint was served (only when `steered`).
    pub group: Option<String>,
    pub config: RuleConfig,
    pub reason: DecisionReason,
    /// Service mode at decision time.
    pub mode: DegradedMode,
}

/// Stable fingerprint of a decision stream — the bit-identity probe the
/// bench compares across thread counts.
#[must_use]
pub fn decisions_fingerprint(decisions: &[Decision]) -> u64 {
    let mut h = DefaultHasher::new();
    for d in decisions {
        (
            d.job_id,
            d.arrival_us,
            d.latency_us,
            d.steered,
            &d.group,
            &d.config,
            d.reason.name(),
            d.mode.name(),
        )
            .hash(&mut h);
    }
    h.finish()
}

/// Per-request annotation produced by the sequential admission pass.
#[derive(Clone, Copy, Debug)]
struct Admission {
    /// `None` = admitted in time; otherwise the forced-default reason
    /// (Shed or DeadlineExpired).
    forced: Option<DecisionReason>,
    latency_us: u64,
    mode: DegradedMode,
}

/// Aggregates for one served day.
#[derive(Clone, Debug)]
pub struct DayServeReport {
    pub decisions: Vec<Decision>,
    pub requests: usize,
    pub steered: usize,
    pub defaults: usize,
    pub shed: usize,
    pub deadline_expired: usize,
    pub torn_entries: usize,
    /// Mode transitions during the day.
    pub mode_transitions: u64,
    /// Breaker trips during the day.
    pub breaker_trips: u64,
    pub final_mode: DegradedMode,
    pub p99_latency_us: u64,
    pub max_latency_us: u64,
    pub fingerprint: u64,
}

/// The long-running steering service.
pub struct SteeringService {
    pub table: ServingTable,
    pub config: ServiceConfig,
    pub breaker: CircuitBreaker,
    mode: DegradedMode,
    mode_transitions: u64,
    publishes: u64,
}

impl SteeringService {
    #[must_use]
    pub fn new(config: ServiceConfig) -> SteeringService {
        let breaker = CircuitBreaker::new(config.breaker_failures, config.breaker_cooldown_us);
        SteeringService {
            table: ServingTable::new(config.shards),
            config,
            breaker,
            mode: DegradedMode::Healthy,
            mode_transitions: 0,
            publishes: 0,
        }
    }

    #[must_use]
    pub fn mode(&self) -> DegradedMode {
        self.mode
    }

    /// Lifetime mode-ladder transitions.
    #[must_use]
    pub fn mode_transitions(&self) -> u64 {
        self.mode_transitions
    }

    /// Snapshot publishes attempted so far.
    #[must_use]
    pub fn publishes(&self) -> u64 {
        self.publishes
    }

    fn set_mode(&mut self, next: DegradedMode) {
        if next != self.mode {
            self.mode = next;
            self.mode_transitions += 1;
            count(Counter::ServeModeTransitions, 1);
        }
    }

    /// Rebuild the serving table from the flight controller's current
    /// state (copy-on-write swap). In [`DegradedMode::HintsStale`] or
    /// worse the refresh is suspended (the existing table keeps serving).
    /// The fault profile may tear this publish partway through its
    /// shards. Returns entries landed (0 when suspended).
    pub fn publish_from(&mut self, flights: &FlightController, fault: &ServeFaultProfile) -> usize {
        if self.mode != DegradedMode::Healthy {
            return 0;
        }
        let publish_index = self.publishes;
        self.publishes += 1;
        let version = self.publishes;
        let mut entries = build_entries(flights, version);
        let torn = fault
            .torn_swap
            .filter(|t| t.publish == publish_index)
            .map(|t| {
                if t.corrupt_entry {
                    // Plant one torn entry write: corrupt the last entry
                    // that will land in a completed shard.
                    let stop = t.shards_completed.min(self.config.shards.max(1));
                    if let Some(pos) = entries
                        .iter()
                        .rposition(|e| self.table.shard_of(&e.group) < stop)
                    {
                        let torn_entry = entries[pos].clone().corrupted();
                        entries[pos] = torn_entry;
                    }
                }
                t.shards_completed
            });
        self.table.publish(entries, torn)
    }

    /// Synchronously retire a group (rollback / quarantine). Must be
    /// called before the flight controller's rollback is considered
    /// complete — this is what keeps retired hints out of every future
    /// decision regardless of snapshot staleness.
    pub fn retire(&mut self, group: &str) -> bool {
        self.table.retire(group)
    }

    /// Run one flighting/revalidation maintenance operation through the
    /// circuit breaker at virtual time `now_us`. `stalled` is the
    /// deterministic stall roll for this op (true = the journal write
    /// stalled). Returns whether the op ran and succeeded.
    pub fn maintain(&mut self, now_us: u64, stalled: bool) -> bool {
        if !self.breaker.allows(now_us) {
            return false;
        }
        self.breaker.record(!stalled, now_us);
        !stalled
    }

    /// Walk the mode ladder at a tick boundary from the tick's observed
    /// bad-request fraction and breaker state.
    fn tick_mode(&mut self, tick_requests: usize, tick_bad: usize, now_us: u64) {
        let frac = if tick_requests == 0 {
            0.0
        } else {
            tick_bad as f64 / tick_requests as f64
        };
        let breaker_open = self.breaker.is_open(now_us);
        if frac >= self.config.degrade_frac {
            self.set_mode(self.mode.down());
        } else if breaker_open {
            // Flighting machinery down: hints go stale but keep serving.
            self.set_mode(self.mode.max(DegradedMode::HintsStale));
        } else if frac <= self.config.recover_frac {
            self.set_mode(self.mode.up());
        }
    }

    /// Serve one virtual day of streaming requests under a fault profile.
    ///
    /// Pass 1 (sequential, stateful): arrivals ordered by
    /// `(arrival_us, job_id)` run through admission control (inflight
    /// ceiling → shed), the deterministic latency model (slow-lookup
    /// faults → deadline expiry), per-tick maintenance ops through the
    /// breaker, and the mode ladder.
    ///
    /// Pass 2 (parallel, pure): admitted requests resolve against the
    /// immutable table snapshot via [`run_chunked_on`] with `n_threads`
    /// workers — order-preserving, so the decision stream is
    /// bit-identical at any thread count.
    pub fn serve_day(
        &mut self,
        requests: &[ServeRequest],
        fault: &ServeFaultProfile,
        day: u32,
        n_threads: usize,
    ) -> DayServeReport {
        let cfg = self.config.clone();
        let breaker_trips_before = self.breaker.trips;
        let mode_transitions_before = self.mode_transitions;

        // Stream order: virtual arrival time, job id as tiebreak.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].arrival_us, requests[i].job_id));

        let mut admissions: Vec<Admission> = vec![
            Admission {
                forced: None,
                latency_us: 0,
                mode: DegradedMode::Healthy,
            };
            requests.len()
        ];
        // Completion times of inflight decisions (min-heap via Reverse).
        let mut inflight: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
        let mut tick = 0u64;
        let mut tick_requests = 0usize;
        let mut tick_bad = 0usize;

        for &i in &order {
            let r = &requests[i];
            // Cross any tick boundaries before this arrival: run one
            // maintenance op per tick through the breaker, then walk the
            // mode ladder on the tick's stats.
            while cfg.tick_us > 0 && r.arrival_us >= (tick + 1) * cfg.tick_us {
                tick += 1;
                let now = tick * cfg.tick_us;
                let stalled = fault.journal_stall_prob > 0.0
                    && unit(cfg.seed, day, tick, 10) < fault.journal_stall_prob;
                self.maintain(now, stalled);
                self.tick_mode(tick_requests, tick_bad, now);
                tick_requests = 0;
                tick_bad = 0;
            }

            while let Some(&std::cmp::Reverse(done)) = inflight.peek() {
                if done <= r.arrival_us {
                    inflight.pop();
                } else {
                    break;
                }
            }

            tick_requests += 1;
            let mode = self.mode;
            let a = if inflight.len() >= cfg.max_inflight {
                tick_bad += 1;
                Admission {
                    forced: Some(DecisionReason::Shed),
                    latency_us: cfg.shed_latency_us,
                    mode,
                }
            } else {
                let mut latency = cfg.base_latency_us;
                if fault.slow_lookup_prob > 0.0
                    && unit(cfg.seed, day, r.job_id, 20) < fault.slow_lookup_prob
                {
                    latency += fault.slow_lookup_extra_us;
                }
                if latency > cfg.deadline_us {
                    // The budget expires; the fallback is served *at* the
                    // deadline — p99 is bounded by construction.
                    tick_bad += 1;
                    inflight.push(std::cmp::Reverse(r.arrival_us + cfg.deadline_us));
                    Admission {
                        forced: Some(DecisionReason::DeadlineExpired),
                        latency_us: cfg.deadline_us,
                        mode,
                    }
                } else {
                    inflight.push(std::cmp::Reverse(r.arrival_us + latency));
                    Admission {
                        forced: None,
                        latency_us: latency,
                        mode,
                    }
                }
            };
            admissions[i] = a;
        }

        // Pass 2: pure decisions, fanned out order-preserving.
        let table = &self.table;
        let idxs: Vec<usize> = (0..requests.len()).collect();
        let decisions: Vec<Decision> = run_chunked_on(
            &idxs,
            n_threads.max(1),
            |&i| Some(decide(table, &requests[i], &admissions[i])),
            |&i| format!("serve request {}", requests[i].job_id),
        );

        // Aggregates + metrics.
        let mut report = DayServeReport {
            requests: decisions.len(),
            steered: 0,
            defaults: 0,
            shed: 0,
            deadline_expired: 0,
            torn_entries: 0,
            mode_transitions: self.mode_transitions - mode_transitions_before,
            breaker_trips: self.breaker.trips - breaker_trips_before,
            final_mode: self.mode,
            p99_latency_us: 0,
            max_latency_us: 0,
            fingerprint: decisions_fingerprint(&decisions),
            decisions,
        };
        let mut latencies: Vec<u64> = Vec::with_capacity(report.requests);
        for d in &report.decisions {
            count(Counter::ServeRequests, 1);
            record(Histogram::ServeDecisionMicros, d.latency_us);
            latencies.push(d.latency_us);
            if d.steered {
                report.steered += 1;
                count(Counter::ServeSteered, 1);
            } else {
                report.defaults += 1;
                count(Counter::ServeDefault, 1);
            }
            match d.reason {
                DecisionReason::Shed => {
                    report.shed += 1;
                    count(Counter::ServeShed, 1);
                }
                DecisionReason::DeadlineExpired => {
                    report.deadline_expired += 1;
                    count(Counter::ServeDeadlineExpired, 1);
                }
                DecisionReason::TornEntry => report.torn_entries += 1,
                _ => {}
            }
        }
        latencies.sort_unstable();
        if !latencies.is_empty() {
            let p99_idx = ((latencies.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
            report.p99_latency_us = latencies[p99_idx.min(latencies.len() - 1)];
            report.max_latency_us = *latencies.last().unwrap();
        }
        record(Histogram::ServeInflight, report.requests as u64);
        report
    }
}

/// The pure per-request decision: a function of the request, its
/// admission annotation, and the immutable table snapshot only. Never
/// errors — every path yields a servable config.
fn decide(table: &ServingTable, r: &ServeRequest, a: &Admission) -> Decision {
    let default = |reason: DecisionReason| Decision {
        job_id: r.job_id,
        arrival_us: r.arrival_us,
        latency_us: a.latency_us,
        steered: false,
        group: None,
        config: RuleConfig::default_config(),
        reason,
        mode: a.mode,
    };
    if let Some(reason) = a.forced {
        return default(reason);
    }
    if a.mode == DegradedMode::DefaultOnly {
        return default(DecisionReason::DegradedDefault);
    }
    match table.lookup(&r.group_key) {
        Lookup::Miss => default(DecisionReason::NoHint),
        Lookup::Torn => default(DecisionReason::TornEntry),
        Lookup::Hit(e) => {
            if scope_exec::in_rollout(r.job_id, e.salt, e.exposure_pct) {
                Decision {
                    job_id: r.job_id,
                    arrival_us: r.arrival_us,
                    latency_us: a.latency_us,
                    steered: true,
                    group: Some(e.group),
                    config: e.config,
                    reason: DecisionReason::Steered,
                    mode: a.mode,
                }
            } else {
                default(DecisionReason::HeldBack)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn entry(group: &str, exposure: u8, version: u64) -> ServingEntry {
        ServingEntry::new(
            group.to_string(),
            RuleConfig::default_config(),
            exposure,
            flight_salt(group),
            version,
        )
    }

    fn request(job_id: u64, group: &str, arrival_us: u64) -> ServeRequest {
        ServeRequest {
            job_id,
            group_key: group.to_string(),
            arrival_us,
        }
    }

    #[test]
    fn entries_checksum_and_detect_corruption() {
        let e = entry("g1", 25, 1);
        assert!(e.is_intact());
        assert!(!e.clone().corrupted().is_intact());
    }

    #[test]
    fn table_publishes_looks_up_and_retires() {
        let t = ServingTable::new(8);
        assert!(t.is_empty());
        let landed = t.publish(vec![entry("g1", 25, 1), entry("g2", 5, 1)], None);
        assert_eq!(landed, 2);
        assert_eq!(t.len(), 2);
        assert!(matches!(t.lookup("g1"), Lookup::Hit(e) if e.group == "g1"));
        assert_eq!(t.lookup("missing"), Lookup::Miss);
        assert!(t.retire("g1"));
        assert!(!t.retire("g1"), "already retired");
        assert_eq!(t.lookup("g1"), Lookup::Miss);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn torn_publish_leaves_mixed_versions_but_retire_still_works() {
        let t = ServingTable::new(4);
        let groups: Vec<String> = (0..32).map(|i| format!("group-{i}")).collect();
        let v1: Vec<ServingEntry> = groups.iter().map(|g| entry(g, 100, 1)).collect();
        t.publish(v1, None);
        let v2: Vec<ServingEntry> = groups.iter().map(|g| entry(g, 100, 2)).collect();
        // Tear after 2 of 4 shards.
        t.publish(v2, Some(2));
        let versions = t.shard_versions();
        assert!(
            versions.contains(&1) && versions.contains(&2),
            "{versions:?}"
        );
        // Every entry is still individually intact and retirable.
        for g in &groups {
            match t.lookup(g) {
                Lookup::Hit(e) => assert!(e.is_intact()),
                other => panic!("lost {g}: {other:?}"),
            }
            assert!(t.retire(g));
            assert_eq!(t.lookup(g), Lookup::Miss, "{g} served after retire");
        }
    }

    #[test]
    fn corrupt_entries_are_refused_not_served() {
        let t = ServingTable::new(2);
        t.publish(
            vec![entry("ok", 100, 1), entry("bad", 100, 1).corrupted()],
            None,
        );
        assert!(matches!(t.lookup("ok"), Lookup::Hit(_)));
        assert_eq!(t.lookup("bad"), Lookup::Torn);
    }

    #[test]
    fn breaker_trips_half_opens_and_recovers() {
        let mut b = CircuitBreaker::new(3, 100);
        assert!(b.allows(0));
        b.record(false, 0);
        b.record(false, 1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(false, 2);
        assert_eq!(b.state(), BreakerState::Open { until_us: 102 });
        assert_eq!(b.trips, 1);
        assert!(!b.allows(50), "still cooling down");
        assert!(b.allows(102), "cooldown expired → half-open probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.half_opens, 1);
        // Failed probe re-trips immediately.
        b.record(false, 103);
        assert_eq!(b.state(), BreakerState::Open { until_us: 203 });
        assert_eq!(b.trips, 2);
        // Clean probe closes.
        assert!(b.allows(203));
        b.record(true, 204);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn mode_ladder_steps_one_rung_at_a_time() {
        assert_eq!(DegradedMode::Healthy.down(), DegradedMode::HintsStale);
        assert_eq!(DegradedMode::HintsStale.down(), DegradedMode::DefaultOnly);
        assert_eq!(DegradedMode::DefaultOnly.down(), DegradedMode::DefaultOnly);
        assert_eq!(DegradedMode::DefaultOnly.up(), DegradedMode::HintsStale);
        assert_eq!(DegradedMode::HintsStale.up(), DegradedMode::Healthy);
        assert_eq!(DegradedMode::Healthy.up(), DegradedMode::Healthy);
    }

    fn service_with_table(groups: &[&str]) -> SteeringService {
        let s = SteeringService::new(ServiceConfig {
            // Short ticks so day-scale tests cross many boundaries.
            tick_us: 1_000_000,
            breaker_cooldown_us: 3_000_000,
            ..ServiceConfig::default()
        });
        let entries: Vec<ServingEntry> = groups.iter().map(|g| entry(g, 100, 1)).collect();
        s.table.publish(entries, None);
        s
    }

    #[test]
    fn served_stream_is_bit_identical_across_thread_counts() {
        let groups = ["g1", "g2", "g3"];
        let requests: Vec<ServeRequest> = (0..300)
            .map(|i| request(i, groups[(i % 3) as usize], (i * 7_919) % 20_000_000))
            .collect();
        let fault = ServeFaultProfile::slow_lookups();
        let mut prints = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut s = service_with_table(&groups);
            let report = s.serve_day(&requests, &fault, 0, threads);
            assert_eq!(report.requests, requests.len());
            prints.push(report.fingerprint);
        }
        assert_eq!(prints[0], prints[1]);
        assert_eq!(prints[1], prints[2]);
    }

    #[test]
    fn every_shed_or_expired_request_is_served_the_default() {
        let mut s = service_with_table(&["g1"]);
        s.config.max_inflight = 2;
        // A tight burst: everyone arrives within one decision latency.
        let requests: Vec<ServeRequest> = (0..50).map(|i| request(i, "g1", 1_000 + i)).collect();
        let report = s.serve_day(&requests, &ServeFaultProfile::none(), 0, 2);
        assert!(report.shed > 0, "ceiling of 2 must shed a 50-burst");
        for d in &report.decisions {
            if matches!(
                d.reason,
                DecisionReason::Shed | DecisionReason::DeadlineExpired
            ) {
                assert!(!d.steered);
                assert_eq!(d.config, RuleConfig::default_config());
            }
            assert!(d.latency_us <= s.config.deadline_us);
        }
    }

    #[test]
    fn deadline_expiry_caps_latency_and_falls_back() {
        let mut s = service_with_table(&["g1"]);
        let fault = ServeFaultProfile {
            slow_lookup_prob: 1.0,
            slow_lookup_extra_us: 50_000,
            ..ServeFaultProfile::none()
        };
        let requests: Vec<ServeRequest> =
            (0..40).map(|i| request(i, "g1", i * 2_000_000)).collect();
        let report = s.serve_day(&requests, &fault, 0, 1);
        assert_eq!(report.deadline_expired, report.requests);
        assert_eq!(report.steered, 0);
        assert_eq!(report.max_latency_us, s.config.deadline_us);
    }

    #[test]
    fn journal_stalls_trip_the_breaker_and_stale_the_mode() {
        let mut s = service_with_table(&["g1"]);
        let fault = ServeFaultProfile {
            journal_stall_prob: 1.0,
            ..ServeFaultProfile::none()
        };
        // Spread arrivals across many ticks so maintenance runs often.
        let requests: Vec<ServeRequest> =
            (0..60).map(|i| request(i, "g1", i * 1_000_000)).collect();
        let report = s.serve_day(&requests, &fault, 0, 1);
        assert!(report.breaker_trips >= 1, "stalls must trip the breaker");
        assert!(
            s.mode() >= DegradedMode::HintsStale,
            "open breaker must stale the mode, got {:?}",
            s.mode()
        );
        // Stale, not dead: hints keep serving.
        assert!(report.steered > 0);
    }

    #[test]
    fn degraded_default_only_serves_no_hints_and_recovers() {
        let mut s = service_with_table(&["g1"]);
        s.config.max_inflight = 1;
        // Tick 0-1: an overload burst drives the bad fraction over the
        // degrade threshold twice → Healthy → HintsStale → DefaultOnly.
        let mut requests: Vec<ServeRequest> = (0..40).map(|i| request(i, "g1", 100 + i)).collect();
        requests.extend((100..140).map(|i| request(i, "g1", 1_000_100 + (i - 100))));
        // Ticks 2..8: calm traffic far below recover_frac → walks back up.
        requests.extend((200..208).map(|i| request(i, "g1", (i - 198) * 1_000_000)));
        let report = s.serve_day(&requests, &ServeFaultProfile::none(), 0, 2);
        assert!(
            report
                .decisions
                .iter()
                .any(|d| d.reason == DecisionReason::DegradedDefault),
            "overload must reach DefaultOnly"
        );
        assert_eq!(s.mode(), DegradedMode::Healthy, "calm traffic must recover");
        assert!(report.mode_transitions >= 4, "down twice and back up twice");
    }

    #[test]
    fn publish_from_is_suspended_while_degraded() {
        let mut s = SteeringService::new(ServiceConfig::default());
        s.set_mode(DegradedMode::HintsStale);
        let flights = FlightController::new(crate::flight::FlightConfig::default());
        assert_eq!(s.publish_from(&flights, &ServeFaultProfile::none()), 0);
        assert_eq!(s.publishes(), 0);
    }

    /// Satellite: scoped-thread stress test for the snapshot-swap read
    /// path. A writer cycles flight stage transitions — each round it
    /// publishes a stable cohort plus one fresh "victim" group at rising
    /// exposure (Canary → Ramping → Deployed), then retires the victim
    /// (RolledBack) and advances a monotone `retired_rounds` counter —
    /// while reader threads hammer lookups. Invariants: every hit is
    /// checksum-intact (no torn reads), and once `retired_rounds` shows a
    /// victim's rollback, that victim is never served again (victims are
    /// never re-published, so the check is race-free). Runs under Miri
    /// (small iteration count) via the CI job's `serve::` filter.
    #[test]
    fn concurrent_lookups_race_stage_transitions_safely() {
        use std::sync::atomic::AtomicUsize;

        let iters: usize = if cfg!(miri) { 12 } else { 1_500 };
        let table = ServingTable::new(4);
        let stable: Vec<String> = (0..6).map(|i| format!("stable-group-{i}")).collect();
        let retired_rounds = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let victim_name = |round: usize| format!("victim-{round}");

        std::thread::scope(|s| {
            let table = &table;
            let stable = &stable;
            let retired_rounds = &retired_rounds;
            let stop = &stop;
            let victim_name = &victim_name;

            s.spawn(move || {
                for round in 0..iters {
                    let version = round as u64 + 1;
                    let victim = victim_name(round);
                    // Canary → Ramping → Deployed: republish the whole
                    // set (stable cohort + this round's victim) at
                    // rising exposure.
                    for exposure in [5u8, 25, 100] {
                        let mut entries: Vec<ServingEntry> = stable
                            .iter()
                            .map(|g| {
                                ServingEntry::new(
                                    g.clone(),
                                    RuleConfig::default_config(),
                                    exposure,
                                    flight_salt(g),
                                    version,
                                )
                            })
                            .collect();
                        entries.push(ServingEntry::new(
                            victim.clone(),
                            RuleConfig::default_config(),
                            exposure,
                            flight_salt(&victim),
                            version,
                        ));
                        table.publish(entries, None);
                    }
                    // RolledBack: retire the victim, *then* advance the
                    // counter (release) — readers that observe the new
                    // count must observe the retire too.
                    table.retire(&victim);
                    retired_rounds.store(round + 1, Ordering::Release);
                }
                stop.store(true, Ordering::Release);
            });

            for _ in 0..3 {
                s.spawn(move || {
                    let mut hits = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        // Everything retired so far must stay gone.
                        let retired = retired_rounds.load(Ordering::Acquire);
                        if retired > 0 {
                            let gone = victim_name(retired - 1);
                            match table.lookup(&gone) {
                                Lookup::Miss => {}
                                other => panic!("{gone} served after rollback: {other:?}"),
                            }
                        }
                        // The stable cohort and the in-flight victim may
                        // hit or miss, but a hit must never be torn.
                        for g in stable {
                            match table.lookup(g) {
                                Lookup::Hit(e) => {
                                    hits += 1;
                                    assert!(e.is_intact(), "torn read of {g}");
                                }
                                Lookup::Torn => panic!("torn read of {g}"),
                                Lookup::Miss => {}
                            }
                        }
                        let current = victim_name(retired);
                        match table.lookup(&current) {
                            Lookup::Hit(e) => assert!(e.is_intact(), "torn read of {current}"),
                            Lookup::Torn => panic!("torn read of {current}"),
                            Lookup::Miss => {}
                        }
                    }
                    // Readers must have actually observed live entries.
                    assert!(hits > 0 || cfg!(miri));
                });
            }
        });
    }
}
