//! Summary statistics over pipeline outcomes (Table 3 and the §6.2
//! narrative numbers).

use scope_ir::stats::mean;

use crate::pipeline::JobOutcome;

/// Table 3's per-workload row: mean runtime change (seconds and percent)
/// when always choosing the best-known configuration (which may be the
/// default).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BestKnownSummary {
    pub n_jobs: usize,
    /// Mean of (best − default) runtime in seconds (≤ 0).
    pub mean_delta_runtime_s: f64,
    /// Mean percentage change (≤ 0).
    pub mean_delta_pct: f64,
}

/// Compute the Table 3 summary for a set of outcomes.
pub fn best_known_summary(outcomes: &[JobOutcome]) -> BestKnownSummary {
    let deltas: Vec<f64> = outcomes
        .iter()
        .map(|o| o.best_known_runtime() - o.default_metrics.runtime)
        .collect();
    let pcts: Vec<f64> = outcomes
        .iter()
        .map(|o| {
            let d = o.default_metrics.runtime;
            if d > 0.0 {
                100.0 * (o.best_known_runtime() - d) / d
            } else {
                0.0
            }
        })
        .collect();
    BestKnownSummary {
        n_jobs: outcomes.len(),
        mean_delta_runtime_s: mean(&deltas),
        mean_delta_pct: mean(&pcts),
    }
}

/// Percentage of outcomes whose best alternative improved runtime by more
/// than `threshold_pct`.
pub fn improved_fraction(outcomes: &[JobOutcome], threshold_pct: f64) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    let improved = outcomes
        .iter()
        .filter(|o| o.best_runtime_change_pct() < -threshold_pct)
        .count();
    improved as f64 / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{CandidateOutcome, SelectionReason};
    use scope_exec::RunMetrics;
    use scope_ir::ids::{JobId, TemplateId};
    use scope_optimizer::{RuleConfig, RuleSignature};

    fn outcome(default_rt: f64, best_rt: f64) -> JobOutcome {
        JobOutcome {
            job_id: JobId(1),
            template: TemplateId(2),
            day: 0,
            group: RuleSignature::default(),
            default_cost: 100.0,
            default_metrics: RunMetrics {
                runtime: default_rt,
                cpu_time: 10.0,
                io_time: 10.0,
                memory: 1e6,
            },
            span_size: 5,
            n_candidates: 10,
            n_cheaper: 2,
            n_same_as_default: 0,
            n_duplicate_plans: 0,
            reason: SelectionReason::CheaperPlans,
            n_failed: 0,
            vetting: crate::guard::CandidateFilterStats::default(),
            executed: vec![CandidateOutcome {
                config: RuleConfig::default_config(),
                est_cost: 90.0,
                signature: RuleSignature::default(),
                metrics: RunMetrics {
                    runtime: best_rt,
                    cpu_time: 10.0,
                    io_time: 10.0,
                    memory: 1e6,
                },
            }],
        }
    }

    #[test]
    fn best_known_uses_default_when_alternatives_regress() {
        let outcomes = vec![outcome(100.0, 150.0), outcome(100.0, 40.0)];
        let s = best_known_summary(&outcomes);
        assert_eq!(s.n_jobs, 2);
        // Job 1 keeps default (Δ 0), job 2 saves 60s → mean −30s / −30%.
        assert!((s.mean_delta_runtime_s + 30.0).abs() < 1e-9);
        assert!((s.mean_delta_pct + 30.0).abs() < 1e-9);
    }

    #[test]
    fn improved_fraction_counts_thresholded_wins() {
        let outcomes = vec![
            outcome(100.0, 150.0),
            outcome(100.0, 40.0),
            outcome(100.0, 97.0),
        ];
        assert!((improved_fraction(&outcomes, 5.0) - 1.0 / 3.0).abs() < 1e-9);
        assert!((improved_fraction(&outcomes, 1.0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(improved_fraction(&[], 5.0), 0.0);
    }
}
