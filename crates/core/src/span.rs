//! Job span approximation — Algorithm 1 of the paper.
//!
//! The *span* of a job is the set of non-required rules that can affect its
//! final plan (Definition 5.1). Algorithm 1 approximates it by repeatedly
//! compiling the job, disabling every (non-required) rule that appeared in
//! the signature, and recompiling to surface the alternative rules the
//! optimizer falls back to — until no new rules appear or the job stops
//! compiling.

use scope_ir::{ObservableCatalog, PlanGraph};
use scope_optimizer::{
    compile, plan_catalog_fingerprint, CompileCache, RuleCatalog, RuleConfig, RuleSet,
    RuleSignature,
};

/// Result of the span approximation.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpan {
    /// Non-required rules observed to impact the final plan.
    pub rules: RuleSet,
    /// Number of compile iterations performed.
    pub iterations: usize,
    /// Whether iteration stopped because compilation failed (implicit rule
    /// dependencies — §4 challenge (1)).
    pub hit_compile_failure: bool,
}

impl JobSpan {
    /// Span rules belonging to a given catalog category.
    pub fn in_category(&self, category: scope_optimizer::RuleCategory) -> RuleSet {
        let cat = RuleCatalog::global();
        self.rules
            .iter()
            .filter(|id| cat.rule(*id).category == category)
            .collect()
    }

    /// Number of rules in the span.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Maximum Algorithm-1 iterations (the loop converges much earlier in
/// practice; this is a safety bound).
pub const MAX_SPAN_ITERATIONS: usize = 64;

/// Approximate the span of a job (Algorithm 1).
///
/// Starts from the configuration enabling **all** non-required rules
/// (including off-by-default ones, per the algorithm's `config ←
/// {1..220}`), then iteratively disables every rule that contributed to
/// the plan.
/// One refinement over the paper's listing: when disabling the last batch
/// of on-rules makes the job stop compiling (e.g. every exchange
/// implementation is gone), that batch is re-enabled and *pinned* — kept
/// enabled but excluded from further disabling — and iteration continues.
/// Without this, Algorithm 1 terminates after two iterations on any
/// distributed job and misses all alternative implementations. The paper's
/// production system necessarily handles this implicitly.
pub fn approximate_span(plan: &PlanGraph, obs: &ObservableCatalog) -> JobSpan {
    approximate_span_cached(plan, obs, None)
}

/// [`approximate_span`] with an optional [`CompileCache`]. Algorithm 1
/// compiles the same configuration more than once whenever the pinning
/// recovery fires (the recovery trial that fixes compilation is re-compiled
/// verbatim on the next loop iteration), and its first iteration (the
/// all-non-required-rules configuration) recurs across repeated span runs
/// of the same job — both become cache hits. Results are bit-identical
/// with and without a cache.
pub fn approximate_span_cached(
    plan: &PlanGraph,
    obs: &ObservableCatalog,
    cache: Option<&CompileCache>,
) -> JobSpan {
    let fingerprint = cache.map(|_| plan_catalog_fingerprint(plan, obs));
    // Ok(signature) | Err(()) — the algorithm needs nothing else from a
    // compile, and hits avoid rebuilding the memo.
    let try_compile = |config: &RuleConfig| -> Result<RuleSignature, ()> {
        match cache {
            Some(c) => c
                .get_or_compile(fingerprint.unwrap_or_default(), config, || {
                    compile(plan, obs, config)
                })
                .map(|compiled| compiled.signature)
                .map_err(|_| ()),
            None => compile(plan, obs, config)
                .map(|compiled| compiled.signature)
                .map_err(|_| ()),
        }
    };
    let cat = RuleCatalog::global();
    let non_required = cat.non_required();
    let mut enabled = non_required;
    let mut pinned = RuleSet::EMPTY;
    let mut last_disabled = RuleSet::EMPTY;
    let mut span = RuleSet::EMPTY;
    let mut iterations = 0;
    let mut hit_compile_failure = false;

    while iterations < MAX_SPAN_ITERATIONS {
        iterations += 1;
        let config = RuleConfig::from_enabled(enabled);
        match try_compile(&config) {
            Ok(signature) => {
                // GET_ON_RULES: signature rules still disableable (required
                // rules keep firing forever; pinned rules proved
                // load-bearing).
                let on_rules = signature.0.intersection(&enabled).difference(&pinned);
                if on_rules.is_empty() {
                    break;
                }
                span = span.union(&on_rules);
                enabled = enabled.difference(&on_rules);
                last_disabled = on_rules;
            }
            Err(_) => {
                hit_compile_failure = true;
                if last_disabled.is_empty() {
                    break;
                }
                // Recovery, phase 1: test each rule of the batch alone —
                // if re-enabling a single rule fixes compilation, pin just
                // that rule and leave the rest disabled so their
                // alternatives keep surfacing.
                let mut recovered = false;
                for id in last_disabled.iter() {
                    iterations += 1;
                    let mut trial = enabled;
                    trial.insert(id);
                    if try_compile(&RuleConfig::from_enabled(trial)).is_ok() {
                        enabled.insert(id);
                        pinned.insert(id);
                        recovered = true;
                        break;
                    }
                    if iterations >= MAX_SPAN_ITERATIONS {
                        break;
                    }
                }
                // Phase 2 (several culprits): accumulate re-enables until
                // the job compiles again.
                if !recovered {
                    for id in last_disabled.iter() {
                        enabled.insert(id);
                        pinned.insert(id);
                        iterations += 1;
                        if try_compile(&RuleConfig::from_enabled(enabled)).is_ok() {
                            recovered = true;
                            break;
                        }
                        if iterations >= MAX_SPAN_ITERATIONS {
                            break;
                        }
                    }
                }
                last_disabled = RuleSet::EMPTY;
                if !recovered {
                    break;
                }
            }
        }
    }

    JobSpan {
        rules: span,
        iterations,
        hit_compile_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
    use scope_ir::ids::{DomainId, TableId};
    use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
    use scope_ir::TrueCatalog;
    use scope_optimizer::RuleCategory;

    fn job() -> (PlanGraph, ObservableCatalog) {
        let mut cat = TrueCatalog::new();
        let k0 = cat.add_column(50_000, 0.0, DomainId(0));
        let a = cat.add_column(200, 0.0, DomainId(1));
        let k1 = cat.add_column(50_000, 0.0, DomainId(0));
        let b = cat.add_column(1_000, 0.0, DomainId(2));
        cat.add_table(2_000_000, 120, 11, vec![k0, a]);
        cat.add_table(800_000, 80, 22, vec![k1, b]);

        let mut g = PlanGraph::new();
        let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = g.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate::atom(PredAtom::unknown(a, CmpOp::Eq, Literal::Int(7))),
            },
            vec![s0],
        );
        let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
        let j = g.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(k0, k1)],
            },
            vec![f, s1],
        );
        let agg = g.add_unchecked(
            LogicalOp::GroupBy {
                keys: vec![b],
                aggs: vec![AggFunc::Count],
                partial: false,
            },
            vec![j],
        );
        let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
        g.set_root(o);
        (g, cat.observe())
    }

    #[test]
    fn span_contains_default_signature_configurables() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        // Everything configurable in the *full-config* signature must be in
        // the span (first iteration adds exactly those).
        let full = RuleConfig::from_enabled(RuleCatalog::global().non_required());
        let compiled = compile(&plan, &obs, &full).unwrap();
        let configurable = compiled
            .signature
            .0
            .difference(RuleCatalog::global().required());
        assert!(configurable.difference(&span.rules).is_empty());
        assert!(span.len() >= configurable.len());
    }

    #[test]
    fn span_discovers_alternative_implementations() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        let impls = span.in_category(RuleCategory::Implementation);
        // At least two join implementations must surface (the default one
        // plus fallbacks discovered by disabling it).
        let cat = RuleCatalog::global();
        let join_impls = impls
            .iter()
            .filter(|id| cat.rule(*id).name.contains("Join"))
            .count();
        assert!(join_impls >= 2, "found {join_impls} join impls in span");
    }

    #[test]
    fn span_excludes_required_rules() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        assert!(span
            .rules
            .intersection(RuleCatalog::global().required())
            .is_empty());
    }

    #[test]
    fn span_iterates_until_exhaustion_or_failure() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        assert!(span.iterations >= 2);
        assert!(span.iterations <= MAX_SPAN_ITERATIONS);
        // Disabling every impl eventually fails compilation, so spans of
        // real jobs typically end on a compile failure.
        assert!(span.hit_compile_failure || span.iterations < MAX_SPAN_ITERATIONS);
    }

    #[test]
    fn span_is_deterministic() {
        let (plan, obs) = job();
        assert_eq!(approximate_span(&plan, &obs), approximate_span(&plan, &obs));
    }

    #[test]
    fn cached_span_is_bit_identical_and_hits_the_cache() {
        let (plan, obs) = job();
        let cache = CompileCache::new(256);
        let cached = approximate_span_cached(&plan, &obs, Some(&cache));
        assert_eq!(cached, approximate_span(&plan, &obs));
        // Re-running the same job's span is served largely from the cache
        // (only failing compiles — which are never cached — re-run).
        let before = cache.stats();
        assert_eq!(approximate_span_cached(&plan, &obs, Some(&cache)), cached);
        assert!(cache.stats().since(&before).hits > 0);
    }

    #[test]
    fn span_is_small_relative_to_catalog() {
        let (plan, obs) = job();
        let span = approximate_span(&plan, &obs);
        // §5.2: "on average only up to 20 rules among the 219 non-required
        // rules"; a single join-agg job should stay well under 60.
        assert!(span.len() < 60, "span unexpectedly large: {}", span.len());
    }
}
