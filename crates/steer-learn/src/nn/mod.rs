//! A dependency-free neural-network implementation sized for the paper's
//! lightweight per-group models.

pub mod matrix;
pub mod mlp;

pub use matrix::Matrix;
pub use mlp::{bce_loss, Mlp};
