//! A minimal dense-matrix type for the learned model. Row-major `f64`
//! storage; only the operations the MLP needs.

use rand::Rng;

/// Row-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// He-style initialization for a layer with `cols` inputs.
    pub fn he_init<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
        let scale = (2.0 / cols.max(1) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Matrix { rows, cols, data }
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Raw storage (for the optimizer's per-parameter state).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `y = W·x` for a vector `x` of length `cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for (yr, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = 0.0;
            for (w, xi) in row.iter().zip(x.iter()) {
                acc += w * xi;
            }
            *yr = acc;
        }
        y
    }

    /// `y = Wᵀ·g` (backprop through the layer).
    pub fn matvec_t(&self, g: &[f64]) -> Vec<f64> {
        debug_assert_eq!(g.len(), self.rows);
        let mut y = vec![0.0; self.cols];
        for (row, &gr) in self.data.chunks_exact(self.cols).zip(g.iter()) {
            for (yi, w) in y.iter_mut().zip(row.iter()) {
                *yi += w * gr;
            }
        }
        y
    }

    /// Accumulate the outer product `grad += g ⊗ x` into `grad`.
    pub fn accumulate_outer(grad: &mut Matrix, g: &[f64], x: &[f64]) {
        debug_assert_eq!(grad.rows, g.len());
        debug_assert_eq!(grad.cols, x.len());
        for (r, gr) in g.iter().enumerate() {
            let row = &mut grad.data[r * grad.cols..(r + 1) * grad.cols];
            for (slot, xi) in row.iter_mut().zip(x.iter()) {
                *slot += gr * xi;
            }
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut m = Matrix::zeros(2, 3);
        // [1 2 3; 4 5 6]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.data_mut()[i] = *v;
        }
        let y = m.matvec(&[1.0, 0.0, -1.0]);
        assert_eq!(y, vec![-2.0, -2.0]);
        let g = m.matvec_t(&[1.0, 1.0]);
        assert_eq!(g, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut grad = Matrix::zeros(2, 2);
        Matrix::accumulate_outer(&mut grad, &[1.0, 2.0], &[3.0, 4.0]);
        Matrix::accumulate_outer(&mut grad, &[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(grad.get(0, 0), 4.0);
        assert_eq!(grad.get(0, 1), 5.0);
        assert_eq!(grad.get(1, 0), 6.0);
        assert_eq!(grad.get(1, 1), 8.0);
    }

    #[test]
    fn he_init_scale_is_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Matrix::he_init(10, 100, &mut rng);
        let bound = (2.0 / 100.0_f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
        assert!(m.data().iter().any(|v| v.abs() > 0.0));
    }
}
