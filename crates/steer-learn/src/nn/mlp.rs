//! The paper's lightweight model (§7.3): a fully-connected network with one
//! hidden layer, sigmoid outputs, binary cross entropy against (min-max
//! normalized) runtime targets, trained with Adam.

use rand::Rng;

use super::matrix::Matrix;

/// Sigmoid.
#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Binary cross entropy for continuous targets in `[0, 1]` (PyTorch's
/// `BCELoss` semantics used by the paper).
pub fn bce_loss(pred: &[f64], target: &[f64]) -> f64 {
    const EPS: f64 = 1e-7;
    pred.iter()
        .zip(target.iter())
        .map(|(&p, &t)| {
            let p = p.clamp(EPS, 1.0 - EPS);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / pred.len().max(1) as f64
}

/// Adam state for one parameter tensor.
#[derive(Clone, Debug)]
struct AdamState {
    m: Vec<f64>,
    v: Vec<f64>,
}

impl AdamState {
    fn new(len: usize) -> AdamState {
        AdamState {
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    fn step(&mut self, params: &mut [f64], grads: &[f64], lr: f64, t: f64) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powf(t);
        let bc2 = 1.0 - B2.powf(t);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            let mh = self.m[i] / bc1;
            let vh = self.v[i] / bc2;
            params[i] -= lr * mh / (vh.sqrt() + EPS);
        }
    }
}

/// One-hidden-layer MLP: `sigmoid(W2·relu(W1·x + b1) + b2)`.
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use steer_learn::nn::Mlp;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(4, 8, 2, &mut rng);
/// let xs = vec![vec![1.0, 0.0, 0.0, 0.0]];
/// let ys = vec![vec![0.0, 1.0]];
/// for _ in 0..200 { mlp.train_batch(&xs, &ys, 0.01); }
/// let pred = mlp.predict(&xs[0]);
/// assert!(pred[0] < pred[1]); // learned the ranking
/// ```
#[derive(Clone, Debug)]
pub struct Mlp {
    w1: Matrix,
    b1: Vec<f64>,
    w2: Matrix,
    b2: Vec<f64>,
    // Adam state.
    s_w1: AdamState,
    s_b1: AdamState,
    s_w2: AdamState,
    s_b2: AdamState,
    t: f64,
}

impl Mlp {
    /// A fresh network with He-initialized weights.
    pub fn new<R: Rng + ?Sized>(input: usize, hidden: usize, output: usize, rng: &mut R) -> Mlp {
        let w1 = Matrix::he_init(hidden, input, rng);
        let w2 = Matrix::he_init(output, hidden, rng);
        Mlp {
            s_w1: AdamState::new(w1.len()),
            s_b1: AdamState::new(hidden),
            s_w2: AdamState::new(w2.len()),
            s_b2: AdamState::new(output),
            w1,
            b1: vec![0.0; hidden],
            w2,
            b2: vec![0.0; output],
            t: 0.0,
        }
    }

    /// Network dimensions `(input, hidden, output)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.w1.cols, self.w1.rows, self.w2.rows)
    }

    /// Number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    /// Borrow the parameter tensors `(w1, b1, w2, b2)` (for persistence).
    pub fn params(&self) -> (&Matrix, &[f64], &Matrix, &[f64]) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    /// Rebuild a network from raw parameters (optimizer state starts
    /// fresh; fine for inference-only deployment).
    pub fn from_params(w1: Matrix, b1: Vec<f64>, w2: Matrix, b2: Vec<f64>) -> Mlp {
        assert_eq!(w1.rows, b1.len());
        assert_eq!(w2.cols, w1.rows);
        assert_eq!(w2.rows, b2.len());
        Mlp {
            s_w1: AdamState::new(w1.len()),
            s_b1: AdamState::new(b1.len()),
            s_w2: AdamState::new(w2.len()),
            s_b2: AdamState::new(b2.len()),
            w1,
            b1,
            w2,
            b2,
            t: 0.0,
        }
    }

    /// Forward pass returning `(hidden pre-activations, outputs)`.
    fn forward_full(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut z1 = self.w1.matvec(x);
        for (z, b) in z1.iter_mut().zip(self.b1.iter()) {
            *z += b;
        }
        let h: Vec<f64> = z1.iter().map(|&z| z.max(0.0)).collect();
        let mut z2 = self.w2.matvec(&h);
        for (z, b) in z2.iter_mut().zip(self.b2.iter()) {
            *z += b;
        }
        let out = z2.iter().map(|&z| sigmoid(z)).collect();
        (z1, out)
    }

    /// Predict the K sigmoid outputs for one input.
    pub fn predict(&self, x: &[f64]) -> Vec<f64> {
        self.forward_full(x).1
    }

    /// One Adam step over a mini-batch; returns the mean BCE loss.
    pub fn train_batch(&mut self, xs: &[Vec<f64>], ys: &[Vec<f64>], lr: f64) -> f64 {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return 0.0;
        }
        let mut g_w1 = Matrix::zeros(self.w1.rows, self.w1.cols);
        let mut g_b1 = vec![0.0; self.b1.len()];
        let mut g_w2 = Matrix::zeros(self.w2.rows, self.w2.cols);
        let mut g_b2 = vec![0.0; self.b2.len()];
        let mut total_loss = 0.0;
        let n = xs.len() as f64;

        for (x, y) in xs.iter().zip(ys.iter()) {
            let (z1, out) = self.forward_full(x);
            total_loss += bce_loss(&out, y);
            // d(BCE)/d(z2) for sigmoid outputs = (p − t) / K.
            let k = out.len() as f64;
            let d_z2: Vec<f64> = out
                .iter()
                .zip(y.iter())
                .map(|(&p, &t)| (p - t) / (k * n))
                .collect();
            let h: Vec<f64> = z1.iter().map(|&z| z.max(0.0)).collect();
            Matrix::accumulate_outer(&mut g_w2, &d_z2, &h);
            for (g, d) in g_b2.iter_mut().zip(d_z2.iter()) {
                *g += d;
            }
            let mut d_h = self.w2.matvec_t(&d_z2);
            for (d, z) in d_h.iter_mut().zip(z1.iter()) {
                if *z <= 0.0 {
                    *d = 0.0;
                }
            }
            Matrix::accumulate_outer(&mut g_w1, &d_h, x);
            for (g, d) in g_b1.iter_mut().zip(d_h.iter()) {
                *g += d;
            }
        }

        self.t += 1.0;
        let t = self.t;
        self.s_w1.step(self.w1.data_mut(), g_w1.data(), lr, t);
        self.s_b1.step(&mut self.b1, &g_b1, lr, t);
        self.s_w2.step(self.w2.data_mut(), g_w2.data(), lr, t);
        self.s_b2.step(&mut self.b2, &g_b2, lr, t);
        total_loss / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bce_loss_basics() {
        assert!(bce_loss(&[0.999999], &[1.0]) < 1e-3);
        assert!(bce_loss(&[0.000001], &[1.0]) > 5.0);
        // Symmetric for complementary predictions.
        let a = bce_loss(&[0.3], &[0.0]);
        let b = bce_loss(&[0.7], &[1.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(4, 6, 2, &mut rng);
        let x = vec![0.3, -0.2, 0.8, 0.1];
        let y = vec![0.0, 1.0];

        // Analytic gradient of w1[0,0] via a training step on a copy with
        // tiny lr is awkward; instead check loss decreases and the forward
        // is smooth, then verify d(loss)/d(w2[0][0]) numerically against
        // the backprop-accumulated value computed inline.
        let (z1, out) = mlp.forward_full(&x);
        let h: Vec<f64> = z1.iter().map(|&z| z.max(0.0)).collect();
        let k = out.len() as f64;
        let analytic = (out[0] - y[0]) / k * h[0];

        let eps = 1e-6;
        let mut plus = mlp.clone();
        let v = plus.w2.get(0, 0);
        plus.w2.set(0, 0, v + eps);
        let lp = bce_loss(&plus.forward_full(&x).1, &y);
        let mut minus = mlp.clone();
        minus.w2.set(0, 0, v - eps);
        let lm = bce_loss(&minus.forward_full(&x).1, &y);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-6,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn training_fits_a_simple_ranking() {
        // Two input patterns, each with a different best output slot; the
        // model must learn to rank them.
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(2, 16, 2, &mut rng);
        let xs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let ys = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let mut last = f64::INFINITY;
        for _ in 0..400 {
            last = mlp.train_batch(&xs, &ys, 0.01);
        }
        assert!(last < 0.1, "loss {last}");
        let p0 = mlp.predict(&xs[0]);
        assert!(p0[0] < p0[1]);
        let p1 = mlp.predict(&xs[1]);
        assert!(p1[0] > p1[1]);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(100, 1024, 10, &mut rng);
        assert_eq!(mlp.num_params(), 100 * 1024 + 1024 + 1024 * 10 + 10);
        assert_eq!(mlp.dims(), (100, 1024, 10));
    }
}
