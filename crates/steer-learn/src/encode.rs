//! Feature encoders (§7.2): min-max normalization for continuous features,
//! one-hot for small alphabets, and a deterministic 50-bin hashing scheme
//! for large-alphabet categorical features.

/// Number of hash bins for large-alphabet categoricals (the paper uses 50).
pub const HASH_BINS: usize = 50;

/// Deterministic bin for a hashed categorical value.
pub fn hash_bin(value: u64) -> usize {
    // Splitmix-style finalizer for good bin spread.
    let mut x = value.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % HASH_BINS as u64) as usize
}

/// Write a one-hot encoding of `index` into `out[offset..offset+width]`.
pub fn one_hot(out: &mut [f64], offset: usize, width: usize, index: usize) {
    debug_assert!(index < width);
    for slot in &mut out[offset..offset + width] {
        *slot = 0.0;
    }
    out[offset + index] = 1.0;
}

/// Column-wise min-max normalizer fitted on training data.
#[derive(Clone, Debug, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Fit on a set of raw feature vectors (all the same length).
    pub fn fit(rows: &[Vec<f64>]) -> Normalizer {
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        for i in 0..dim {
            if !mins[i].is_finite() {
                mins[i] = 0.0;
                maxs[i] = 0.0;
            }
        }
        Normalizer { mins, maxs }
    }

    /// Scale a raw vector into `[0, 1]` per column (constant columns → 0;
    /// out-of-range values are clamped).
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let (lo, hi) = (self.mins[i], self.maxs[i]);
                if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Borrow the fitted bounds `(mins, maxs)` (for persistence).
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.mins, &self.maxs)
    }

    /// Rebuild from saved bounds.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Normalizer {
        assert_eq!(mins.len(), maxs.len());
        Normalizer { mins, maxs }
    }
}

/// Min-max normalize a target vector (per-sample runtimes): the fastest
/// configuration maps to 0, the slowest to 1; constant rows map to all
/// zeros.
pub fn normalize_targets(runtimes: &[f64]) -> Vec<f64> {
    let lo = runtimes.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = runtimes.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if hi > lo {
        runtimes.iter().map(|&r| (r - lo) / (hi - lo)).collect()
    } else {
        vec![0.0; runtimes.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_bin_is_stable_and_bounded() {
        for v in [0u64, 1, 42, u64::MAX] {
            let b = hash_bin(v);
            assert!(b < HASH_BINS);
            assert_eq!(b, hash_bin(v));
        }
        // Different values spread across bins.
        let bins: std::collections::HashSet<usize> = (0..1000).map(hash_bin).collect();
        assert!(bins.len() > 30);
    }

    #[test]
    fn one_hot_sets_single_slot() {
        let mut out = vec![9.0; 6];
        one_hot(&mut out, 1, 4, 2);
        assert_eq!(out, vec![9.0, 0.0, 0.0, 1.0, 0.0, 9.0]);
    }

    #[test]
    fn normalizer_scales_to_unit_interval() {
        let rows = vec![vec![0.0, 10.0, 5.0], vec![10.0, 20.0, 5.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.transform(&rows[0]), vec![0.0, 0.0, 0.0]);
        assert_eq!(n.transform(&rows[1]), vec![1.0, 1.0, 0.0]);
        // Clamping for unseen values.
        assert_eq!(n.transform(&[20.0, -5.0, 7.0]), vec![1.0, 0.0, 0.0]);
        assert_eq!(n.dim(), 3);
    }

    #[test]
    fn target_normalization_maps_best_to_zero() {
        let t = normalize_targets(&[300.0, 100.0, 500.0]);
        assert_eq!(t, vec![0.5, 0.0, 1.0]);
        assert_eq!(normalize_targets(&[5.0, 5.0]), vec![0.0, 0.0]);
    }
}
