//! The feature vector of §7.2: job-level features, per-configuration
//! features (estimated cost + RuleDiff bit vector), and per-operator
//! query-graph slots.

use scope_ir::{Job, OpKind};
use scope_optimizer::{CompiledPlan, RuleDiff, RuleSignature, NUM_RULES};

use crate::encode::{hash_bin, one_hot, HASH_BINS};

/// Per-operator-kind slots: count, mean estimated cost, log mean estimated
/// rows.
const GRAPH_SLOT_WIDTH: usize = 3;

/// Dimensionality of the job-level + query-graph part.
pub fn job_feature_dim() -> usize {
    // log bytes, #inputs, input-name multi-hot, template one-hot, graph slots.
    2 + HASH_BINS + HASH_BINS + OpKind::COUNT * GRAPH_SLOT_WIDTH
}

/// Dimensionality of one configuration's features.
pub fn config_feature_dim() -> usize {
    1 + NUM_RULES
}

/// Total raw feature dimensionality for `k` candidate configurations.
pub fn feature_dim(k: usize) -> usize {
    job_feature_dim() + k * config_feature_dim()
}

/// Job-level + query-graph features, computed from the job and its
/// default-configuration compilation.
pub fn job_features(job: &Job, default: &CompiledPlan) -> Vec<f64> {
    let mut out = vec![0.0; job_feature_dim()];
    out[0] = (job.total_input_bytes() as f64 + 1.0).ln();
    out[1] = job.inputs.len() as f64;
    // Input-name hashing (multi-hot over 50 bins).
    let mut offset = 2;
    for input in &job.inputs {
        out[offset + hash_bin(input.name_hash)] = 1.0;
    }
    offset += HASH_BINS;
    one_hot(&mut out, offset, HASH_BINS, hash_bin(job.template.0));
    offset += HASH_BINS;
    // Query-graph slots from the default physical plan.
    let mut counts = [0.0f64; OpKind::COUNT];
    let mut cost_sums = [0.0f64; OpKind::COUNT];
    let mut row_sums = [0.0f64; OpKind::COUNT];
    for id in default.plan.reachable() {
        let node = default.plan.node(id);
        let slot = phys_slot(node.op.name());
        counts[slot] += 1.0;
        cost_sums[slot] += node.est_cost;
        row_sums[slot] += node.est_rows;
    }
    for kind in 0..OpKind::COUNT {
        let base = offset + kind * GRAPH_SLOT_WIDTH;
        out[base] = counts[kind];
        if counts[kind] > 0.0 {
            out[base + 1] = cost_sums[kind] / counts[kind];
            out[base + 2] = (row_sums[kind] / counts[kind] + 1.0).ln();
        }
    }
    out
}

/// Map a physical operator name to a logical slot (several physical
/// implementations share a logical operator's slot).
fn phys_slot(name: &str) -> usize {
    let kind = match name {
        "Scan" => OpKind::RangeGet,
        "Filter" => OpKind::Filter,
        "Project" => OpKind::Project,
        "HashJoin" | "MergeJoin" | "BroadcastJoin" | "LoopJoin" | "IndexJoin" => OpKind::Join,
        "HashAgg" | "SortAgg" | "StreamAgg" => OpKind::GroupBy,
        "UnionAll" => OpKind::UnionAll,
        "VirtualDataset" => OpKind::VirtualDataset,
        "Top" => OpKind::Top,
        "Sort" => OpKind::Sort,
        "Window" => OpKind::Window,
        "Process" => OpKind::Process,
        "Output" => OpKind::Output,
        // Exchanges land in the (otherwise unused) pre-normalization slot.
        _ => OpKind::Get,
    };
    kind as usize
}

/// Per-configuration features: log estimated cost plus the RuleDiff vector
/// against the default signature.
pub fn config_features(
    default_signature: &RuleSignature,
    est_cost: f64,
    signature: &RuleSignature,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(config_feature_dim());
    out.push((est_cost + 1.0).ln());
    out.extend(RuleDiff::between(default_signature, signature).to_feature_vec());
    out
}

/// Assemble the full raw feature vector for one sample.
pub fn assemble(job_feats: &[f64], per_config: &[Vec<f64>]) -> Vec<f64> {
    let mut out = Vec::with_capacity(job_feats.len() + per_config.len() * config_feature_dim());
    out.extend_from_slice(job_feats);
    for cf in per_config {
        out.extend_from_slice(cf);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::JobId;
    use scope_ir::{InputRef, PlanGraph, TrueCatalog};
    use scope_optimizer::{compile, RuleConfig};

    fn tiny_job() -> Job {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(100, 0.0, scope_ir::ids::DomainId(0));
        cat.add_table(1_000_000, 100, 7, vec![c]);
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(
            scope_ir::LogicalOp::Get {
                table: scope_ir::ids::TableId(0),
            },
            vec![],
        );
        let o = g.add_unchecked(scope_ir::LogicalOp::Output { stream: 1 }, vec![s]);
        g.set_root(o);
        Job::new(
            JobId(1),
            g,
            cat,
            vec![InputRef {
                name_hash: 7,
                bytes: 100_000_000,
            }],
            0,
            50,
        )
    }

    #[test]
    fn job_features_have_documented_shape() {
        let job = tiny_job();
        let obs = job.catalog.observe();
        let compiled = compile(&job.plan, &obs, &RuleConfig::default_config()).unwrap();
        let f = job_features(&job, &compiled);
        assert_eq!(f.len(), job_feature_dim());
        assert!(f[0] > 0.0, "log bytes");
        assert_eq!(f[1], 1.0, "one input");
        // Exactly one input bin and one template bin set.
        let input_bins: f64 = f[2..2 + HASH_BINS].iter().sum();
        assert_eq!(input_bins, 1.0);
        let tmpl_bins: f64 = f[2 + HASH_BINS..2 + 2 * HASH_BINS].iter().sum();
        assert_eq!(tmpl_bins, 1.0);
        // Scan and Output slots are populated.
        let base = 2 + 2 * HASH_BINS;
        assert!(f[base + (OpKind::RangeGet as usize) * 3] >= 1.0);
        assert!(f[base + (OpKind::Output as usize) * 3] >= 1.0);
    }

    #[test]
    fn config_features_embed_rulediff() {
        let job = tiny_job();
        let obs = job.catalog.observe();
        let default = compile(&job.plan, &obs, &RuleConfig::default_config()).unwrap();
        let same = config_features(&default.signature, default.est_cost, &default.signature);
        assert_eq!(same.len(), config_feature_dim());
        assert!(same[1..].iter().all(|&v| v == 0.0), "no diff vs itself");
    }

    #[test]
    fn assemble_concatenates() {
        let jf = vec![1.0; job_feature_dim()];
        let cf = vec![vec![2.0; config_feature_dim()]; 3];
        let full = assemble(&jf, &cf);
        assert_eq!(full.len(), feature_dim(3));
        assert_eq!(full[job_feature_dim()], 2.0);
    }
}
