//! Text persistence for trained choosers.
//!
//! The paper's per-group models (~30 MB each) are deployment artifacts: the
//! online system loads one per job group. This module serializes a trained
//! [`Mlp`] plus its [`Normalizer`] to a dependency-free text format
//! (header line with dimensions, then whitespace-separated `f64`s encoded
//! via `to_bits` hex for exact round-trips).

use crate::encode::Normalizer;
use crate::nn::{Matrix, Mlp};

/// Serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Header missing or malformed.
    BadHeader,
    /// Fewer values than the header promises, or an unparsable value.
    BadPayload,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::BadHeader => write!(f, "malformed model header"),
            PersistError::BadPayload => write!(f, "malformed model payload"),
        }
    }
}

impl std::error::Error for PersistError {}

fn push_floats(out: &mut String, values: impl IntoIterator<Item = f64>) {
    for v in values {
        out.push_str(&format!("{:016x} ", v.to_bits()));
    }
    out.push('\n');
}

fn read_floats<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    n: usize,
) -> Result<Vec<f64>, PersistError> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let tok = tokens.next().ok_or(PersistError::BadPayload)?;
        let bits = u64::from_str_radix(tok, 16).map_err(|_| PersistError::BadPayload)?;
        out.push(f64::from_bits(bits));
    }
    Ok(out)
}

/// Serialize a model and its normalizer.
pub fn save_model(mlp: &Mlp, normalizer: &Normalizer) -> String {
    let (input, hidden, output) = mlp.dims();
    let mut out = String::new();
    out.push_str(&format!(
        "scope-steer-mlp v1 {input} {hidden} {output} {}\n",
        normalizer.dim()
    ));
    let (w1, b1, w2, b2) = mlp.params();
    push_floats(&mut out, w1.data().iter().copied());
    push_floats(&mut out, b1.iter().copied());
    push_floats(&mut out, w2.data().iter().copied());
    push_floats(&mut out, b2.iter().copied());
    let (mins, maxs) = normalizer.bounds();
    push_floats(&mut out, mins.iter().copied());
    push_floats(&mut out, maxs.iter().copied());
    out
}

/// Deserialize a model and its normalizer.
pub fn load_model(text: &str) -> Result<(Mlp, Normalizer), PersistError> {
    let mut tokens = text.split_whitespace();
    for expected in ["scope-steer-mlp", "v1"] {
        if tokens.next() != Some(expected) {
            return Err(PersistError::BadHeader);
        }
    }
    let dim = |t: &mut dyn Iterator<Item = &str>| -> Result<usize, PersistError> {
        t.next()
            .and_then(|v| v.parse().ok())
            .ok_or(PersistError::BadHeader)
    };
    let input = dim(&mut tokens)?;
    let hidden = dim(&mut tokens)?;
    let output = dim(&mut tokens)?;
    let norm_dim = dim(&mut tokens)?;

    let w1 = read_floats(&mut tokens, hidden * input)?;
    let b1 = read_floats(&mut tokens, hidden)?;
    let w2 = read_floats(&mut tokens, output * hidden)?;
    let b2 = read_floats(&mut tokens, output)?;
    let mins = read_floats(&mut tokens, norm_dim)?;
    let maxs = read_floats(&mut tokens, norm_dim)?;

    let mut m1 = Matrix::zeros(hidden, input);
    m1.data_mut().copy_from_slice(&w1);
    let mut m2 = Matrix::zeros(output, hidden);
    m2.data_mut().copy_from_slice(&w2);
    Ok((
        Mlp::from_params(m1, b1, m2, b2),
        Normalizer::from_bounds(mins, maxs),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trip_preserves_predictions_exactly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(12, 16, 4, &mut rng);
        let xs = vec![vec![0.5; 12]];
        let ys = vec![vec![0.0, 1.0, 0.5, 0.25]];
        for _ in 0..20 {
            mlp.train_batch(&xs, &ys, 1e-3);
        }
        let normalizer = Normalizer::fit(&[vec![0.0; 12], vec![2.0; 12]]);
        let text = save_model(&mlp, &normalizer);
        let (loaded, loaded_norm) = load_model(&text).expect("round trip");
        let x: Vec<f64> = (0..12).map(|i| i as f64 / 7.0).collect();
        assert_eq!(mlp.predict(&x), loaded.predict(&x));
        assert_eq!(normalizer.transform(&x), loaded_norm.transform(&x));
    }

    #[test]
    fn header_and_payload_errors() {
        assert_eq!(
            load_model("not a model").unwrap_err(),
            PersistError::BadHeader
        );
        assert_eq!(
            load_model("scope-steer-mlp v2 1 1 1 1").unwrap_err(),
            PersistError::BadHeader
        );
        // Truncated payload.
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(2, 2, 1, &mut rng);
        let norm = Normalizer::fit(&[vec![0.0; 2]]);
        let text = save_model(&mlp, &norm);
        let truncated = &text[..text.len() / 2];
        assert_eq!(load_model(truncated).unwrap_err(), PersistError::BadPayload);
    }

    #[test]
    fn size_scales_with_architecture() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = save_model(
            &Mlp::new(4, 4, 2, &mut rng),
            &Normalizer::fit(&[vec![0.0; 4]]),
        );
        let big = save_model(
            &Mlp::new(64, 64, 8, &mut rng),
            &Normalizer::fit(&[vec![0.0; 64]]),
        );
        assert!(big.len() > small.len() * 20);
    }
}
