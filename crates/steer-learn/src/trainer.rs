//! Training and model selection (§7.3–§7.4): 40/20/40 train/validation/test
//! split, BCE on per-sample min-max-normalized runtimes, learning-rate
//! selection and early stopping on the validation set.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::GroupDataset;
use crate::encode::{normalize_targets, Normalizer};
use crate::nn::mlp::Mlp;

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainParams {
    /// Hidden width (the paper uses 1024; tests shrink this).
    pub hidden: usize,
    /// Learning rates tried; the validation set picks the winner.
    pub lrs: Vec<f64>,
    pub epochs: usize,
    pub batch: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    pub train_frac: f64,
    pub val_frac: f64,
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            hidden: 1024,
            lrs: vec![1e-3, 3e-4],
            epochs: 150,
            batch: 16,
            patience: 20,
            train_frac: 0.4,
            val_frac: 0.2,
            seed: 0,
        }
    }
}

/// Index split of a dataset.
#[derive(Clone, Debug, Default)]
pub struct Split {
    pub train: Vec<usize>,
    pub val: Vec<usize>,
    pub test: Vec<usize>,
}

/// Random 40/20/40 split.
pub fn split_indices<R: Rng + ?Sized>(n: usize, p: &TrainParams, rng: &mut R) -> Split {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_train = ((n as f64) * p.train_frac).round() as usize;
    let n_val = ((n as f64) * p.val_frac).round() as usize;
    Split {
        train: idx[..n_train.min(n)].to_vec(),
        val: idx[n_train.min(n)..(n_train + n_val).min(n)].to_vec(),
        test: idx[(n_train + n_val).min(n)..].to_vec(),
    }
}

/// A trained per-group chooser.
pub struct LearnedChooser {
    pub model: Mlp,
    pub normalizer: Normalizer,
    /// Validation loss of the selected model.
    pub val_loss: f64,
    /// Learning rate that won model selection.
    pub lr: f64,
}

impl LearnedChooser {
    /// Pick the configuration index (argmin of predicted normalized
    /// runtime) for a raw feature vector.
    pub fn choose(&self, raw_features: &[f64]) -> usize {
        let x = self.normalizer.transform(raw_features);
        let pred = self.model.predict(&x);
        // NaN-last: a diverged model (NaN predictions) degrades to a
        // deterministic choice instead of panicking the serving path.
        pred.iter()
            .enumerate()
            .min_by(|a, b| scope_ir::stats::nan_last_cmp(*a.1, *b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Train a chooser for one group dataset. Returns the chooser and the split
/// used (so evaluation reports on the held-out test set).
pub fn train_group<R: Rng + ?Sized>(
    ds: &GroupDataset,
    params: &TrainParams,
    rng: &mut R,
) -> (LearnedChooser, Split) {
    assert!(!ds.is_empty(), "empty dataset");
    let split = split_indices(ds.len(), params, rng);
    let normalizer = Normalizer::fit(
        &split
            .train
            .iter()
            .map(|&i| ds.samples[i].features.clone())
            .collect::<Vec<_>>(),
    );

    let xs: Vec<Vec<f64>> = ds
        .samples
        .iter()
        .map(|s| normalizer.transform(&s.features))
        .collect();
    let ys: Vec<Vec<f64>> = ds
        .samples
        .iter()
        .map(|s| normalize_targets(&s.runtimes))
        .collect();

    let eval_loss = |model: &Mlp, idx: &[usize]| -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        idx.iter()
            .map(|&i| crate::nn::mlp::bce_loss(&model.predict(&xs[i]), &ys[i]))
            .sum::<f64>()
            / idx.len() as f64
    };

    let mut best: Option<LearnedChooser> = None;
    for &lr in &params.lrs {
        let mut model = Mlp::new(ds.feature_dim, params.hidden, ds.k(), rng);
        let mut best_val = f64::INFINITY;
        let mut best_model = model.clone();
        let mut since_improve = 0usize;
        let mut order: Vec<usize> = split.train.clone();
        for _epoch in 0..params.epochs {
            order.shuffle(rng);
            for chunk in order.chunks(params.batch.max(1)) {
                let bx: Vec<Vec<f64>> = chunk.iter().map(|&i| xs[i].clone()).collect();
                let by: Vec<Vec<f64>> = chunk.iter().map(|&i| ys[i].clone()).collect();
                model.train_batch(&bx, &by, lr);
            }
            let val = eval_loss(&model, &split.val);
            if val + 1e-9 < best_val {
                best_val = val;
                best_model = model.clone();
                since_improve = 0;
            } else {
                since_improve += 1;
                if since_improve >= params.patience {
                    break;
                }
            }
        }
        let candidate = LearnedChooser {
            model: best_model,
            normalizer: normalizer.clone(),
            val_loss: best_val,
            lr,
        };
        let better = best
            .as_ref()
            .map(|b| candidate.val_loss < b.val_loss)
            .unwrap_or(true);
        if better {
            best = Some(candidate);
        }
    }
    (best.expect("at least one learning rate"), split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupSample;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_ir::ids::JobId;
    use scope_optimizer::RuleConfig;

    /// Synthetic group: config 1 wins when feature 0 is large, config 0
    /// wins otherwise — learnable from features.
    fn synthetic_dataset(n: usize) -> GroupDataset {
        let mut rng = StdRng::seed_from_u64(5);
        let samples = (0..n)
            .map(|i| {
                let big = rng.gen_bool(0.5);
                let f0 = if big { 1.0 } else { 0.0 };
                let noise: f64 = rng.gen_range(0.95..1.05);
                let (r0, r1) = if big {
                    (1000.0 * noise, 300.0 * noise)
                } else {
                    (200.0 * noise, 600.0 * noise)
                };
                GroupSample {
                    job_id: JobId(i as u64),
                    day: 0,
                    features: vec![f0, rng.gen_range(0.0..1.0), 1.0],
                    runtimes: vec![r0, r1],
                }
            })
            .collect();
        GroupDataset {
            configs: vec![RuleConfig::default_config(); 2],
            samples,
            feature_dim: 3,
            skipped: 0,
        }
    }

    fn fast_params() -> TrainParams {
        TrainParams {
            hidden: 24,
            lrs: vec![3e-3],
            epochs: 80,
            batch: 8,
            patience: 30,
            seed: 1,
            ..TrainParams::default()
        }
    }

    #[test]
    fn split_respects_fractions_and_disjointness() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = split_indices(100, &TrainParams::default(), &mut rng);
        assert_eq!(s.train.len(), 40);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 40);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(s.val.iter())
            .chain(s.test.iter())
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn learns_the_feature_dependent_choice() {
        let ds = synthetic_dataset(200);
        let mut rng = StdRng::seed_from_u64(2);
        let (chooser, split) = train_group(&ds, &fast_params(), &mut rng);
        // On the test split the chooser must beat always-default by a wide
        // margin.
        let mut learned_total = 0.0;
        let mut default_total = 0.0;
        let mut best_total = 0.0;
        for &i in &split.test {
            let s = &ds.samples[i];
            learned_total += s.runtimes[chooser.choose(&s.features)];
            default_total += s.runtimes[0];
            best_total += s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
        }
        assert!(
            learned_total < default_total * 0.85,
            "learned {learned_total} vs default {default_total}"
        );
        assert!(learned_total >= best_total * 0.99);
    }

    #[test]
    fn chooser_is_deterministic_after_training() {
        let ds = synthetic_dataset(60);
        let mut rng = StdRng::seed_from_u64(3);
        let (chooser, _) = train_group(&ds, &fast_params(), &mut rng);
        let f = &ds.samples[0].features;
        assert_eq!(chooser.choose(f), chooser.choose(f));
    }
}
