//! # steer-learn
//!
//! The learning half of the paper (§7): choose one of K candidate rule
//! configurations for an unseen job of a known job group.
//!
//! * [`features`] / [`encode`] — the §7.2 feature vector (job-level,
//!   per-configuration RuleDiff + cost, per-operator query-graph slots)
//!   with min-max / one-hot / 50-bin-hash encodings,
//! * [`nn`] — a from-scratch one-hidden-layer MLP with sigmoid outputs,
//!   Adam, and PyTorch-style continuous binary cross entropy (§7.3),
//! * [`dataset`] — §7.1's per-group dataset: K configurations executed on
//!   every sampled job,
//! * [`trainer`] — 40/20/40 split, validation-based model selection, early
//!   stopping,
//! * [`eval`] — Table 5 statistics and Figure 8 per-query deltas,
//! * [`bandit`] — Bao-style multi-armed-bandit baselines (ε-greedy,
//!   Thompson) and a cost-model chooser, for the §4 scalability argument.

pub mod bandit;
pub mod dataset;
pub mod encode;
pub mod eval;
pub mod features;
pub mod nn;
pub mod persist;
pub mod trainer;

pub use bandit::{
    cost_model_choice, replay_bandit, ArmChooser, EpsilonGreedy, ReplayResult, ThompsonGaussian,
};
pub use dataset::{build_group_dataset, GroupDataset, GroupSample};
pub use encode::{hash_bin, normalize_targets, Normalizer, HASH_BINS};
pub use eval::{evaluate, GroupEval, PerQuery, RuntimeStats};
pub use features::{assemble, config_features, feature_dim, job_features};
pub use nn::{bce_loss, Mlp};
pub use persist::{load_model, save_model, PersistError};
pub use trainer::{split_indices, train_group, LearnedChooser, Split, TrainParams};
