//! Bandit baselines for configuration choice.
//!
//! Bao treats each hint set as an arm of a multi-armed bandit; the paper
//! (§4, challenge 3) argues that formulation does not scale to SCOPE and
//! uses supervised per-group models instead. These baselines make that
//! comparison measurable on the same per-group datasets: an ε-greedy
//! bandit, a Thompson-sampling bandit (Gaussian rewards), and a
//! cost-model chooser (always pick the configuration with the lowest
//! estimated cost — no learning at all).
//!
//! Bandits are *contextless*: they see runtimes, never features, so on
//! groups where the best configuration depends on the day's input size
//! they converge to the best *fixed* arm while the supervised model can
//! switch per job — exactly the gap the paper's design exploits.

use rand::Rng;

use scope_ir::stats::{nan_first_cmp, nan_last_cmp};

use crate::dataset::{GroupDataset, GroupSample};

/// A sequential arm chooser.
pub trait ArmChooser {
    /// Pick an arm for the next sample.
    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize;
    /// Observe the reward (negated normalized runtime) of the chosen arm.
    fn update(&mut self, arm: usize, reward: f64);
}

/// ε-greedy over mean rewards.
#[derive(Clone, Debug)]
pub struct EpsilonGreedy {
    epsilon: f64,
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl EpsilonGreedy {
    pub fn new(arms: usize, epsilon: f64) -> EpsilonGreedy {
        EpsilonGreedy {
            epsilon,
            counts: vec![0; arms],
            means: vec![0.0; arms],
        }
    }
}

impl ArmChooser for EpsilonGreedy {
    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        if rng.gen_bool(self.epsilon) {
            return rng.gen_range(0..self.means.len());
        }
        // Prefer unexplored arms, then the best mean.
        if let Some(i) = self.counts.iter().position(|&c| c == 0) {
            return i;
        }
        // NaN-first ordering: a mean poisoned by a NaN reward can never win
        // the maximum (and can never panic the replay).
        self.means
            .iter()
            .enumerate()
            .max_by(|a, b| nan_first_cmp(*a.1, *b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }
}

/// Thompson sampling with a Gaussian posterior per arm (known-variance
/// approximation: posterior variance `1/(n+1)`).
#[derive(Clone, Debug)]
pub struct ThompsonGaussian {
    counts: Vec<u64>,
    means: Vec<f64>,
}

impl ThompsonGaussian {
    pub fn new(arms: usize) -> ThompsonGaussian {
        ThompsonGaussian {
            counts: vec![0; arms],
            means: vec![0.0; arms],
        }
    }
}

impl ArmChooser for ThompsonGaussian {
    fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        // Only finite samples compete; a posterior poisoned by NaN rewards
        // (or a sample that overflowed) cannot win the draw.
        let mut best: Option<usize> = None;
        let mut best_sample = f64::NEG_INFINITY;
        for i in 0..self.means.len() {
            let sd = 1.0 / ((self.counts[i] as f64) + 1.0).sqrt();
            // Box–Muller normal sample.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let sample = self.means[i] + sd * z;
            if sample.is_finite() && (best.is_none() || sample > best_sample) {
                best_sample = sample;
                best = Some(i);
            }
        }
        match best {
            Some(i) => i,
            None => {
                // Every sampled value was non-finite. Fall back to the
                // deterministic exploration choice — the least-pulled arm
                // (ties to the lowest index) — and count the event.
                scope_trace::count(scope_trace::Counter::BanditDegenerateChoice, 1);
                self.counts
                    .iter()
                    .enumerate()
                    .min_by_key(|&(i, &c)| (c, i))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
        }
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.counts[arm] += 1;
        let n = self.counts[arm] as f64;
        self.means[arm] += (reward - self.means[arm]) / n;
    }
}

/// Result of replaying a chooser over a dataset in submission order.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// Runtime actually paid at each step.
    pub runtimes: Vec<f64>,
    /// Arm chosen at each step.
    pub choices: Vec<usize>,
}

impl ReplayResult {
    pub fn total_runtime(&self) -> f64 {
        self.runtimes.iter().sum()
    }

    /// Mean regret per step against the per-sample best configuration.
    pub fn mean_regret(&self, samples: &[&GroupSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let regret: f64 = samples
            .iter()
            .zip(self.runtimes.iter())
            .map(|(s, &paid)| paid - s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min))
            .sum();
        regret / samples.len() as f64
    }
}

/// Replay a bandit over the dataset's samples in day order (the online
/// protocol Bao uses: choose, execute, observe).
pub fn replay_bandit<C: ArmChooser, R: Rng + ?Sized>(
    ds: &GroupDataset,
    chooser: &mut C,
    rng: &mut R,
) -> ReplayResult {
    let mut ordered: Vec<&GroupSample> = ds.samples.iter().collect();
    ordered.sort_by_key(|s| (s.day, s.job_id));
    let mut runtimes = Vec::with_capacity(ordered.len());
    let mut choices = Vec::with_capacity(ordered.len());
    for s in ordered {
        let arm = chooser.choose(rng);
        let rt = s.runtimes[arm];
        // Reward: negated per-sample normalized runtime (0 = best arm).
        let lo = s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = s.runtimes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let reward = if hi > lo { -(rt - lo) / (hi - lo) } else { 0.0 };
        chooser.update(arm, reward);
        runtimes.push(rt);
        choices.push(arm);
    }
    ReplayResult { runtimes, choices }
}

/// The no-learning baseline: always pick the candidate with the lowest
/// estimated cost (feature layout from `features::config_features`: the
/// log-cost is the first entry of each per-config block).
pub fn cost_model_choice(sample: &GroupSample, k: usize) -> usize {
    let job_dim = crate::features::job_feature_dim();
    let config_dim = crate::features::config_feature_dim();
    // NaN-last: a corrupted cost feature loses the minimum instead of
    // panicking the baseline.
    (0..k)
        .min_by(|&a, &b| {
            let ca = sample.features[job_dim + a * config_dim];
            let cb = sample.features[job_dim + b * config_dim];
            nan_last_cmp(ca, cb)
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GroupSample;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use scope_ir::ids::JobId;
    use scope_optimizer::RuleConfig;

    /// Arm 1 is always best by a wide margin.
    fn static_dataset(n: usize) -> GroupDataset {
        let samples = (0..n)
            .map(|i| GroupSample {
                job_id: JobId(i as u64),
                day: (i / 5) as u32,
                features: vec![0.0; 4],
                runtimes: vec![100.0, 10.0, 80.0],
            })
            .collect();
        GroupDataset {
            configs: vec![RuleConfig::default_config(); 3],
            samples,
            feature_dim: 4,
            skipped: 0,
        }
    }

    /// The best arm flips with the day's parity — unlearnable without
    /// features.
    fn contextual_dataset(n: usize) -> GroupDataset {
        let samples = (0..n)
            .map(|i| {
                let even = (i / 3) % 2 == 0;
                GroupSample {
                    job_id: JobId(i as u64),
                    day: (i / 3) as u32,
                    features: vec![if even { 1.0 } else { 0.0 }; 4],
                    runtimes: if even {
                        vec![100.0, 10.0]
                    } else {
                        vec![10.0, 100.0]
                    },
                }
            })
            .collect();
        GroupDataset {
            configs: vec![RuleConfig::default_config(); 2],
            samples,
            feature_dim: 4,
            skipped: 0,
        }
    }

    #[test]
    fn epsilon_greedy_converges_on_static_best_arm() {
        let ds = static_dataset(300);
        let mut bandit = EpsilonGreedy::new(3, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let result = replay_bandit(&ds, &mut bandit, &mut rng);
        // In the second half, arm 1 dominates the choices.
        let late = &result.choices[150..];
        let best_picks = late.iter().filter(|&&c| c == 1).count();
        assert!(
            best_picks as f64 > late.len() as f64 * 0.8,
            "{best_picks}/150"
        );
    }

    #[test]
    fn thompson_converges_on_static_best_arm() {
        let ds = static_dataset(300);
        let mut bandit = ThompsonGaussian::new(3);
        let mut rng = StdRng::seed_from_u64(2);
        let result = replay_bandit(&ds, &mut bandit, &mut rng);
        let late = &result.choices[150..];
        let best_picks = late.iter().filter(|&&c| c == 1).count();
        assert!(
            best_picks as f64 > late.len() as f64 * 0.8,
            "{best_picks}/150"
        );
    }

    #[test]
    fn bandits_cannot_track_context_switches() {
        let ds = contextual_dataset(240);
        let mut bandit = EpsilonGreedy::new(2, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let result = replay_bandit(&ds, &mut bandit, &mut rng);
        let ordered: Vec<&GroupSample> = {
            let mut v: Vec<&GroupSample> = ds.samples.iter().collect();
            v.sort_by_key(|s| (s.day, s.job_id));
            v
        };
        // Per-sample best is 10; a context-blind policy pays ~55 on half
        // the samples, so mean regret stays large.
        let regret = result.mean_regret(&ordered);
        assert!(regret > 20.0, "regret {regret}");
    }

    #[test]
    fn replay_is_chronological() {
        let ds = static_dataset(20);
        let mut bandit = EpsilonGreedy::new(3, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let result = replay_bandit(&ds, &mut bandit, &mut rng);
        assert_eq!(result.runtimes.len(), 20);
        assert_eq!(result.choices.len(), 20);
        assert!(result.total_runtime() > 0.0);
    }

    /// Runtimes poisoned with NaN and infinity — the rewards themselves go
    /// NaN, so the posteriors degrade in every arm.
    fn poisoned_dataset(n: usize) -> GroupDataset {
        let samples = (0..n)
            .map(|i| GroupSample {
                job_id: JobId(i as u64),
                day: (i / 5) as u32,
                features: vec![0.0; 4],
                runtimes: vec![f64::NAN, f64::INFINITY, 50.0],
            })
            .collect();
        GroupDataset {
            configs: vec![RuleConfig::default_config(); 3],
            samples,
            feature_dim: 4,
            skipped: 0,
        }
    }

    #[test]
    fn replay_tolerates_nan_and_infinite_runtimes() {
        let ds = poisoned_dataset(60);
        let mut eps = EpsilonGreedy::new(3, 0.1);
        let mut rng = StdRng::seed_from_u64(7);
        let result = replay_bandit(&ds, &mut eps, &mut rng);
        assert_eq!(result.runtimes.len(), 60);
        assert!(result.choices.iter().all(|&c| c < 3));

        let mut ts = ThompsonGaussian::new(3);
        let mut rng = StdRng::seed_from_u64(8);
        let result = replay_bandit(&ds, &mut ts, &mut rng);
        assert_eq!(result.runtimes.len(), 60);
        assert!(result.choices.iter().all(|&c| c < 3));
    }

    #[test]
    fn thompson_degenerate_falls_back_deterministically() {
        let mut bandit = ThompsonGaussian::new(3);
        for arm in 0..3 {
            bandit.update(arm, f64::NAN);
        }
        // Every posterior mean is NaN, so every sampled value is NaN: the
        // chooser must fall back to the least-pulled arm, deterministically.
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(bandit.choose(&mut rng), 0);
        assert_eq!(bandit.choose(&mut rng), 0);
    }

    #[test]
    fn cost_model_choice_tolerates_nan_costs() {
        let job_dim = crate::features::job_feature_dim();
        let config_dim = crate::features::config_feature_dim();
        let mut features = vec![0.0; job_dim + 3 * config_dim];
        features[job_dim] = f64::NAN; // config 0 — corrupted, must lose
        features[job_dim + config_dim] = 2.0; // config 1 — cheapest finite
        features[job_dim + 2 * config_dim] = 3.0;
        let s = GroupSample {
            job_id: JobId(1),
            day: 0,
            features,
            runtimes: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(cost_model_choice(&s, 3), 1);
    }

    #[test]
    fn cost_model_choice_reads_the_cost_slot() {
        let job_dim = crate::features::job_feature_dim();
        let config_dim = crate::features::config_feature_dim();
        let mut features = vec![0.0; job_dim + 3 * config_dim];
        features[job_dim] = 5.0; // config 0 log-cost
        features[job_dim + config_dim] = 1.0; // config 1 — cheapest
        features[job_dim + 2 * config_dim] = 3.0; // config 2
        let s = GroupSample {
            job_id: JobId(1),
            day: 0,
            features,
            runtimes: vec![1.0, 1.0, 1.0],
        };
        assert_eq!(cost_model_choice(&s, 3), 1);
    }
}
