//! Dataset construction (§7.1): for one job group, execute each of the K
//! candidate configurations on every sampled job and record runtimes plus
//! raw features.

use scope_exec::ABTester;
use scope_ir::ids::JobId;
use scope_ir::Job;
use scope_optimizer::{compile_job, RuleConfig};

use crate::features::{assemble, config_features, job_features};

/// One training/evaluation sample.
#[derive(Clone, Debug)]
pub struct GroupSample {
    pub job_id: JobId,
    pub day: u32,
    /// Raw (unnormalized) feature vector.
    pub features: Vec<f64>,
    /// Observed runtime of each candidate configuration (index-aligned with
    /// [`GroupDataset::configs`]).
    pub runtimes: Vec<f64>,
}

/// The per-job-group learning dataset.
#[derive(Clone, Debug)]
pub struct GroupDataset {
    /// Candidate configurations; index 0 is always the default (the model
    /// may choose it — Figure 8 jobs "without green or red bars").
    pub configs: Vec<RuleConfig>,
    pub samples: Vec<GroupSample>,
    pub feature_dim: usize,
    /// Jobs dropped because some candidate failed to compile for them.
    pub skipped: usize,
}

impl GroupDataset {
    /// Number of candidate configurations (the paper's K).
    pub fn k(&self) -> usize {
        self.configs.len()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// Build a dataset by compiling and A/B-executing every candidate on every
/// job. Jobs that fail to compile under any candidate are skipped (rare —
/// candidates come from same-group winners).
pub fn build_group_dataset(
    jobs: &[&Job],
    alt_configs: &[RuleConfig],
    ab: &ABTester,
) -> GroupDataset {
    let mut configs = Vec::with_capacity(alt_configs.len() + 1);
    configs.push(RuleConfig::default_config());
    configs.extend(alt_configs.iter().cloned());

    let mut samples = Vec::with_capacity(jobs.len());
    let mut feature_dim = 0;
    let mut skipped = 0;
    'jobs: for job in jobs {
        let Ok(default) = compile_job(job, &configs[0]) else {
            skipped += 1;
            continue;
        };
        let jf = job_features(job, &default);
        let mut per_config = Vec::with_capacity(configs.len());
        let mut runtimes = Vec::with_capacity(configs.len());
        for config in &configs {
            let Ok(compiled) = compile_job(job, config) else {
                skipped += 1;
                continue 'jobs;
            };
            per_config.push(config_features(
                &default.signature,
                compiled.est_cost,
                &compiled.signature,
            ));
            runtimes.push(ab.run(job, &compiled.plan, 0).runtime);
        }
        let features = assemble(&jf, &per_config);
        feature_dim = features.len();
        samples.push(GroupSample {
            job_id: job.id,
            day: job.day,
            features,
            runtimes,
        });
    }
    GroupDataset {
        configs,
        samples,
        feature_dim,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_optimizer::RuleCatalog;
    use scope_workload::{Workload, WorkloadProfile};

    #[test]
    fn dataset_rows_align_configs_and_runtimes() {
        let w = Workload::generate(WorkloadProfile::workload_b(0.15));
        let jobs = w.day(0);
        let refs: Vec<&Job> = jobs.iter().take(6).collect();
        // One alternative: disable the hash join family.
        let cat = RuleCatalog::global();
        let mut alt = RuleConfig::default_config();
        alt.disable(cat.find("HashJoinImpl1").unwrap());
        alt.disable(cat.find("HashJoinImpl2").unwrap());
        let ab = ABTester::new(3);
        let ds = build_group_dataset(&refs, &[alt], &ab);
        assert_eq!(ds.k(), 2);
        assert!(!ds.is_empty());
        for s in &ds.samples {
            assert_eq!(s.runtimes.len(), 2);
            assert_eq!(s.features.len(), ds.feature_dim);
            assert!(s.runtimes.iter().all(|&r| r > 0.0));
        }
    }

    #[test]
    fn default_config_is_index_zero() {
        let w = Workload::generate(WorkloadProfile::workload_b(0.15));
        let jobs = w.day(0);
        let refs: Vec<&Job> = jobs.iter().take(2).collect();
        let ab = ABTester::new(3);
        let ds = build_group_dataset(&refs, &[], &ab);
        assert_eq!(ds.k(), 1);
        assert_eq!(ds.configs[0], RuleConfig::default_config());
    }
}
