//! Evaluation on the held-out test split: the Best / Default / Learned
//! runtime statistics of Table 5 and the per-query deltas of Figure 8.

use scope_ir::ids::JobId;
use scope_ir::stats::{mean, percentile};

use crate::dataset::GroupDataset;
use crate::trainer::{LearnedChooser, Split};

/// Mean / 90th / 99th percentile runtimes (Table 5 columns).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RuntimeStats {
    pub mean: f64,
    pub p90: f64,
    pub p99: f64,
}

impl RuntimeStats {
    pub fn from(runtimes: &[f64]) -> RuntimeStats {
        RuntimeStats {
            mean: mean(runtimes),
            p90: percentile(runtimes, 90.0),
            p99: percentile(runtimes, 99.0),
        }
    }
}

/// One test-set query's outcome (a Figure 8 bar).
#[derive(Clone, Debug)]
pub struct PerQuery {
    pub job_id: JobId,
    pub day: u32,
    pub default_runtime: f64,
    pub learned_runtime: f64,
    pub best_runtime: f64,
    /// Index of the configuration the model picked (0 = default).
    pub chosen: usize,
}

impl PerQuery {
    /// Runtime change of the learned choice vs default (negative =
    /// improvement; zero when the model picks the default).
    pub fn change_s(&self) -> f64 {
        self.learned_runtime - self.default_runtime
    }

    /// Percentage change of the learned choice vs default.
    pub fn change_pct(&self) -> f64 {
        if self.default_runtime > 0.0 {
            100.0 * self.change_s() / self.default_runtime
        } else {
            0.0
        }
    }
}

/// Table 5 row for one job group.
#[derive(Clone, Debug)]
pub struct GroupEval {
    pub best: RuntimeStats,
    pub default: RuntimeStats,
    pub learned: RuntimeStats,
    pub per_query: Vec<PerQuery>,
}

/// Evaluate a chooser over the dataset's test split.
pub fn evaluate(ds: &GroupDataset, chooser: &LearnedChooser, split: &Split) -> GroupEval {
    let mut best = Vec::new();
    let mut default = Vec::new();
    let mut learned = Vec::new();
    let mut per_query = Vec::new();
    for &i in &split.test {
        let s = &ds.samples[i];
        let chosen = chooser.choose(&s.features);
        let b = s.runtimes.iter().cloned().fold(f64::INFINITY, f64::min);
        best.push(b);
        default.push(s.runtimes[0]);
        learned.push(s.runtimes[chosen]);
        per_query.push(PerQuery {
            job_id: s.job_id,
            day: s.day,
            default_runtime: s.runtimes[0],
            learned_runtime: s.runtimes[chosen],
            best_runtime: b,
            chosen,
        });
    }
    GroupEval {
        best: RuntimeStats::from(&best),
        default: RuntimeStats::from(&default),
        learned: RuntimeStats::from(&learned),
        per_query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_stats_match_reference() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = RuntimeStats::from(&xs);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn per_query_changes() {
        let q = PerQuery {
            job_id: JobId(1),
            day: 0,
            default_runtime: 200.0,
            learned_runtime: 150.0,
            best_runtime: 100.0,
            chosen: 2,
        };
        assert_eq!(q.change_s(), -50.0);
        assert_eq!(q.change_pct(), -25.0);
    }
}
