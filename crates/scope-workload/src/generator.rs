//! Workload assembly: a fixed pool of recurring templates over a shared
//! input pool, instantiated day by day.

use rand::rngs::StdRng;
use rand::SeedableRng;

use scope_ir::ids::JobId;
use scope_ir::stats::weighted_index;
use scope_ir::Job;

use crate::inputs::InputPool;
use crate::motifs::Motif;
use crate::profiles::WorkloadProfile;
use crate::template::Template;

/// A generated workload: profile + input pool + recurring templates.
pub struct Workload {
    pub profile: WorkloadProfile,
    pub pool: InputPool,
    pub templates: Vec<Template>,
}

impl Workload {
    /// Build the workload deterministically from its profile.
    pub fn generate(profile: WorkloadProfile) -> Workload {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let pool = InputPool::generate(
            profile.pool_size(),
            profile.input_rows_mu,
            profile.input_rows_sigma,
            profile.drift_sigma,
            &mut rng,
        );
        let weights = profile.mix.weights();
        let catalog = scope_optimizer::RuleCatalog::global();
        let templates = (0..profile.num_templates())
            .map(|idx| {
                let motif = Motif::ALL[weighted_index(&mut rng, &weights)];
                let parts = motif.build(&profile, &pool, &mut rng);
                let dated_inputs = rand::Rng::gen_bool(&mut rng, profile.dated_inputs_prob);
                let hints = if rand::Rng::gen_bool(&mut rng, profile.customer_hint_prob) {
                    // Customers enable off-by-default rules that are
                    // *relevant* to their script: rules anchored on an
                    // operator the plan actually contains.
                    let counts = scope_optimizer::optimizer::normalized_kind_counts(&parts.plan);
                    let relevant: Vec<u16> = catalog
                        .off_by_default()
                        .iter()
                        .filter(|id| {
                            catalog
                                .rule(*id)
                                .action
                                .anchor()
                                .is_some_and(|kind| counts[kind as usize] > 0)
                        })
                        .map(|id| id.0)
                        .collect();
                    if relevant.is_empty() {
                        Vec::new()
                    } else {
                        let n = rand::Rng::gen_range(&mut rng, 1..3usize).min(relevant.len());
                        (0..n)
                            .map(|_| relevant[rand::Rng::gen_range(&mut rng, 0..relevant.len())])
                            .collect()
                    }
                } else {
                    Vec::new()
                };
                Template {
                    idx,
                    motif,
                    parts,
                    dated_inputs,
                    seed: profile.seed,
                    hints,
                }
            })
            .collect();
        Workload {
            profile,
            pool,
            templates,
        }
    }

    /// Expected jobs per active template per day, from the profile ratios.
    fn mean_jobs_per_active(&self) -> f64 {
        (1.0 / self.profile.templates_per_job) / self.profile.template_activity.max(1e-6)
    }

    /// All jobs submitted on `day`, in template order.
    pub fn day(&self, day: u32) -> Vec<Job> {
        let mean = self.mean_jobs_per_active();
        let mut jobs = Vec::with_capacity(self.profile.daily_jobs + 16);
        let mut counter: u64 = 0;
        for template in &self.templates {
            let k = template.jobs_on(day, self.profile.template_activity, mean);
            for n in 0..k {
                let id = JobId(((day as u64) << 40) | counter);
                counter += 1;
                jobs.push(template.instantiate(&self.pool, day, n, id));
            }
        }
        jobs
    }

    /// Jobs for a contiguous range of days.
    pub fn days(&self, days: std::ops::Range<u32>) -> Vec<Vec<Job>> {
        days.map(|d| self.day(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_workload() -> Workload {
        Workload::generate(WorkloadProfile::workload_a(0.08))
    }

    #[test]
    fn daily_job_count_near_target() {
        let w = small_workload();
        let target = w.profile.daily_jobs as f64;
        let counts: Vec<f64> = (0..5).map(|d| w.day(d).len() as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        assert!(
            (mean / target - 1.0).abs() < 0.30,
            "mean {mean} vs target {target}"
        );
    }

    #[test]
    fn table1_shape_ratios_hold() {
        let w = small_workload();
        let jobs = w.day(0);
        let templates: HashSet<_> = jobs.iter().map(|j| j.template).collect();
        let inputs: HashSet<_> = jobs
            .iter()
            .flat_map(|j| j.inputs.iter().map(|i| i.name_hash))
            .collect();
        assert!(templates.len() < jobs.len(), "jobs > templates");
        assert!(
            templates.len() as f64 > jobs.len() as f64 * 0.3,
            "many templates per day"
        );
        assert!(!inputs.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_workload().day(2);
        let b = small_workload().day(2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.template, y.template);
            assert_eq!(x.plan.plan_hash(), y.plan.plan_hash());
        }
    }

    #[test]
    fn recurring_templates_appear_across_days() {
        let w = small_workload();
        let d0: HashSet<_> = w.day(0).iter().map(|j| j.template).collect();
        let d1: HashSet<_> = w.day(1).iter().map(|j| j.template).collect();
        let recurring = d0.intersection(&d1).count();
        assert!(
            recurring as f64 > d0.len() as f64 * 0.4,
            "recurring {recurring} of {}",
            d0.len()
        );
    }

    #[test]
    fn job_ids_are_unique_across_days() {
        let w = small_workload();
        let mut seen = HashSet::new();
        for day in 0..3 {
            for job in w.day(day) {
                assert!(seen.insert(job.id), "duplicate id {:?}", job.id);
            }
        }
    }
}
