//! Recurring templates and their daily instantiation into jobs.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scope_ir::ids::JobId;
use scope_ir::{InputRef, Job, Literal, LogicalOp};

use crate::inputs::InputPool;
use crate::motifs::{Motif, TemplateParts};

/// One recurring template.
#[derive(Clone, Debug)]
pub struct Template {
    /// Index within the workload.
    pub idx: usize,
    pub motif: Motif,
    pub parts: TemplateParts,
    /// Whether this template's scripts embed the date in input names —
    /// yielding a different template id every day (§6.4's identification
    /// flaw).
    pub dated_inputs: bool,
    /// Workload seed (for per-day deterministic randomness).
    pub seed: u64,
    /// Customer rule hints (raw rule ids) this template's script enables.
    pub hints: Vec<u16>,
}

impl Template {
    /// Deterministic per-(template, day, n) rng.
    fn day_rng(&self, day: u32, salt: u64) -> StdRng {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        self.idx.hash(&mut h);
        day.hash(&mut h);
        salt.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }

    /// Instantiate this template's `n`-th job of `day`.
    pub fn instantiate(&self, pool: &InputPool, day: u32, n: u32, job_id: JobId) -> Job {
        let mut rng = self.day_rng(day, 0x10B + n as u64);
        let mut catalog = self.parts.catalog.clone();
        let mut inputs = Vec::with_capacity(self.parts.table_streams.len());
        for (ti, &si) in self.parts.table_streams.iter().enumerate() {
            let stream = &pool.streams[si];
            let rows = stream.rows_on(day);
            let name = if self.dated_inputs {
                stream.dated_name(day)
            } else {
                stream.name_hash
            };
            let table = &mut catalog.tables[ti];
            table.rows = rows;
            table.name_hash = name;
            inputs.push(InputRef {
                name_hash: name,
                bytes: rows.saturating_mul(table.row_bytes as u64),
            });
        }
        // Fresh predicate constants: different job, same template.
        let mut plan = self.parts.plan.clone();
        plan.map_ops(|op| {
            let refresh = |lit: &mut Literal, rng: &mut StdRng| {
                *lit = Literal::Int(rng.gen());
            };
            match op {
                LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                    for atom in &mut predicate.atoms {
                        refresh(&mut atom.literal, &mut rng);
                    }
                }
                LogicalOp::RangeGet { pushed, .. } => {
                    for atom in &mut pushed.atoms {
                        refresh(&mut atom.literal, &mut rng);
                    }
                }
                _ => {}
            }
        });
        let tokens = *[25u32, 50, 100, 150, 200]
            .get(rng.gen_range(0..5))
            .expect("token choice");
        Job::new(job_id, plan, catalog, inputs, day, tokens).with_hints(self.hints.clone())
    }

    /// How many jobs this template submits on `day` (0 when inactive).
    /// The expected count is calibrated so the workload hits its profile's
    /// daily job target.
    pub fn jobs_on(&self, day: u32, activity: f64, mean_jobs: f64) -> u32 {
        let mut rng = self.day_rng(day, 0xAC71);
        if !rng.gen_bool(activity.clamp(0.0, 1.0)) {
            return 0;
        }
        // k = 1 + Binomial(4, p) with 4p = mean_jobs - 1.
        let p = ((mean_jobs - 1.0) / 4.0).clamp(0.0, 1.0);
        let extra = (0..4).filter(|_| rng.gen_bool(p)).count() as u32;
        1 + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::WorkloadProfile;

    fn template() -> (Template, InputPool) {
        let profile = WorkloadProfile::workload_a(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let pool = InputPool::generate(100, 15.0, 2.0, 0.25, &mut rng);
        let parts = Motif::UnionJoinAgg.build(&profile, &pool, &mut rng);
        (
            Template {
                idx: 0,
                motif: Motif::UnionJoinAgg,
                parts,
                dated_inputs: false,
                seed: 99,
                hints: Vec::new(),
            },
            pool,
        )
    }

    #[test]
    fn same_template_same_day_same_n_is_identical() {
        let (t, pool) = template();
        let a = t.instantiate(&pool, 3, 0, JobId(1));
        let b = t.instantiate(&pool, 3, 0, JobId(2));
        assert_eq!(a.template, b.template);
        assert_eq!(a.plan.plan_hash(), b.plan.plan_hash());
    }

    #[test]
    fn template_id_stable_across_days_literals_differ() {
        let (t, pool) = template();
        let d1 = t.instantiate(&pool, 1, 0, JobId(1));
        let d2 = t.instantiate(&pool, 2, 0, JobId(2));
        assert_eq!(d1.template, d2.template, "recurring template identity");
        assert_ne!(d1.plan.plan_hash(), d2.plan.plan_hash(), "fresh literals");
        // Sizes drift.
        assert_ne!(d1.total_input_bytes(), d2.total_input_bytes());
    }

    #[test]
    fn dated_inputs_change_template_identity() {
        let (mut t, pool) = template();
        t.dated_inputs = true;
        let d1 = t.instantiate(&pool, 1, 0, JobId(1));
        let d2 = t.instantiate(&pool, 2, 0, JobId(2));
        assert_ne!(d1.template, d2.template);
    }

    #[test]
    fn catalog_rows_match_stream_drift() {
        let (t, pool) = template();
        let job = t.instantiate(&pool, 5, 0, JobId(1));
        for (ti, &si) in t.parts.table_streams.iter().enumerate() {
            assert_eq!(job.catalog.tables[ti].rows, pool.streams[si].rows_on(5));
        }
    }

    #[test]
    fn jobs_on_is_deterministic_and_calibrated() {
        let (t, _) = template();
        assert_eq!(t.jobs_on(1, 0.95, 1.9), t.jobs_on(1, 0.95, 1.9));
        let total: u32 = (0..2000).map(|d| t.jobs_on(d, 1.0, 2.0)).sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
    }
}
