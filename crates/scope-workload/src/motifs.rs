//! Template motifs: the recurring job shapes of the synthetic workloads.
//!
//! Each motif builds a raw script plan plus the template's ground truth.
//! Several motifs deliberately plant estimate-vs-truth divergences, so the
//! paper's phenomena can emerge:
//!
//! * `etl_cook` — heavy user-defined operators below/above filters (the
//!   off-by-default `SelectOnProcess*` rules matter),
//! * `union_join_agg` — joins above unions (the `CorrelatedJoinOnUnionAll*`
//!   family) and skewed union keys (`UnionAllToVirtualDataset`),
//! * `skew_join_topk` — skewed hash-join keys (`JoinImpl2`/broadcast
//!   alternatives win),
//! * `corr_trap` — correlated predicates whose underestimate lures the
//!   optimizer into broadcast/loop joins,
//! * `rollup`, `shared_cook`, `deep_unions`, `window_pipe` — mostly benign
//!   shapes filling out the workload.

use rand::rngs::StdRng;
use rand::Rng;

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, NodeId, TableId, UdoId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};

use crate::inputs::InputPool;
use crate::profiles::WorkloadProfile;

/// Everything a motif produces.
#[derive(Clone, Debug)]
pub struct TemplateParts {
    pub plan: PlanGraph,
    pub catalog: TrueCatalog,
    /// Pool stream index backing each catalog table (same order).
    pub table_streams: Vec<usize>,
}

/// Motif selector (index aligns with `MotifMix::weights`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Motif {
    EtlCook = 0,
    UnionJoinAgg = 1,
    SkewJoinTopK = 2,
    CorrTrap = 3,
    Rollup = 4,
    SharedCook = 5,
    DeepUnions = 6,
    WindowPipe = 7,
}

impl Motif {
    pub const ALL: [Motif; 8] = [
        Motif::EtlCook,
        Motif::UnionJoinAgg,
        Motif::SkewJoinTopK,
        Motif::CorrTrap,
        Motif::Rollup,
        Motif::SharedCook,
        Motif::DeepUnions,
        Motif::WindowPipe,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Motif::EtlCook => "etl_cook",
            Motif::UnionJoinAgg => "union_join_agg",
            Motif::SkewJoinTopK => "skew_join_topk",
            Motif::CorrTrap => "corr_trap",
            Motif::Rollup => "rollup",
            Motif::SharedCook => "shared_cook",
            Motif::DeepUnions => "deep_unions",
            Motif::WindowPipe => "window_pipe",
        }
    }

    /// Build a template of this motif.
    pub fn build(
        self,
        profile: &WorkloadProfile,
        pool: &InputPool,
        rng: &mut StdRng,
    ) -> TemplateParts {
        let mut b = Builder::new(profile, pool, rng);
        match self {
            Motif::EtlCook => b.etl_cook(),
            Motif::UnionJoinAgg => b.union_join_agg(),
            Motif::SkewJoinTopK => b.skew_join_topk(),
            Motif::CorrTrap => b.corr_trap(),
            Motif::Rollup => b.rollup(),
            Motif::SharedCook => b.shared_cook(),
            Motif::DeepUnions => b.deep_unions(),
            Motif::WindowPipe => b.window_pipe(),
        }
        b.finish()
    }
}

/// Incremental template construction.
struct Builder<'a> {
    cat: TrueCatalog,
    plan: PlanGraph,
    table_streams: Vec<usize>,
    pool: &'a InputPool,
    profile: &'a WorkloadProfile,
    rng: &'a mut StdRng,
    next_domain: u32,
    root: Option<NodeId>,
}

impl<'a> Builder<'a> {
    fn new(profile: &'a WorkloadProfile, pool: &'a InputPool, rng: &'a mut StdRng) -> Self {
        Builder {
            cat: TrueCatalog::new(),
            plan: PlanGraph::new(),
            table_streams: Vec::new(),
            pool,
            profile,
            rng,
            next_domain: 0,
            root: None,
        }
    }

    fn finish(mut self) -> TemplateParts {
        let root = self.root.expect("motif set a root");
        let out = self.plan.add_unchecked(
            LogicalOp::Output {
                stream: self.rng.gen(),
            },
            vec![root],
        );
        self.plan.set_root(out);
        TemplateParts {
            plan: self.plan,
            catalog: self.cat,
            table_streams: self.table_streams,
        }
    }

    fn domain(&mut self) -> DomainId {
        let d = DomainId(self.next_domain);
        self.next_domain += 1;
        d
    }

    /// A schema of `n_attrs` attribute columns plus a key column in
    /// `domain` with the given distinct count and optional skew.
    fn schema(
        &mut self,
        domain: DomainId,
        key_ndv: u64,
        skewed: bool,
        n_attrs: usize,
    ) -> (ColId, Vec<ColId>) {
        let skew = if skewed {
            self.rng.gen_range(0.04..0.25)
        } else {
            0.0
        };
        let key = self.cat.add_column(key_ndv, skew, domain);
        let attrs = (0..n_attrs)
            .map(|_| {
                let ndv = *[10u64, 50, 200, 1_000, 10_000, 100_000]
                    .get(self.rng.gen_range(0..6))
                    .expect("ndv choice");
                let d = self.domain();
                self.cat.add_column(ndv, 0.0, d)
            })
            .collect();
        (key, attrs)
    }

    /// A table over pool stream `stream_idx` exposing `cols`.
    fn table(&mut self, stream_idx: usize, cols: Vec<ColId>) -> TableId {
        let s = &self.pool.streams[stream_idx];
        let t = self
            .cat
            .add_table(s.base_rows, s.row_bytes, s.name_hash, cols);
        self.table_streams.push(stream_idx);
        t
    }

    /// A fact table picked from the pool with at least `min_rows`.
    fn fact_table(&mut self, min_rows: u64, key: ColId, attrs: &[ColId]) -> TableId {
        let idx = self.pool.pick_where(self.rng, |rows| rows >= min_rows);
        let mut cols = vec![key];
        cols.extend_from_slice(attrs);
        self.table(idx, cols)
    }

    /// A small dimension table joined on `domain`. The key is a primary
    /// key: its distinct count equals the table's rows, so joining a fact
    /// against it never inflates cardinality.
    fn dim_table(&mut self, domain: DomainId, _key_ndv_hint: u64) -> (TableId, ColId, ColId) {
        let idx = self
            .pool
            .pick_where(self.rng, |rows| rows < 5_000_000 && rows > 1_000);
        let rows = self.pool.streams[idx].base_rows;
        let key = self.cat.add_column(rows.max(1), 0.0, domain);
        let d = self.domain();
        let attr_ndv = *[10u64, 100, 1000]
            .get(self.rng.gen_range(0..3))
            .expect("ndv");
        let attr = self.cat.add_column(attr_ndv, 0.0, d);
        let t = self.table(idx, vec![key, attr]);
        (t, key, attr)
    }

    fn scan(&mut self, table: TableId) -> NodeId {
        self.plan.add_unchecked(LogicalOp::Get { table }, vec![])
    }

    /// One predicate atom. With probability ½ its ground truth matches the
    /// shape heuristic (benign); otherwise the true selectivity is sampled
    /// independently, creating an estimation gap in either direction.
    fn atom(&mut self, col: ColId, corr_group: Option<u32>) -> PredAtom {
        let ops = [
            CmpOp::Eq,
            CmpOp::Range,
            CmpOp::Between,
            CmpOp::Like,
            CmpOp::InList,
        ];
        let op = ops[self.rng.gen_range(0..ops.len())];
        let ndv = self.cat.columns[col.index()].ndv;
        let true_sel = if corr_group.is_none() && self.rng.gen_bool(0.5) {
            scope_ir::catalog::shape_selectivity(op, ndv)
        } else {
            // Log-uniform in [5e-4, 0.5].
            let ln = self.rng.gen_range((5e-4_f64).ln()..(0.5_f64).ln());
            ln.exp()
        };
        let pred = self.cat.add_pred(true_sel, corr_group);
        PredAtom {
            col,
            op,
            literal: Literal::Int(0), // refreshed per instantiated job
            pred,
        }
    }

    /// A filter of `n` atoms over `cols`; correlated with the profile's
    /// probability.
    fn filter(&mut self, input: NodeId, cols: &[ColId], n: usize) -> NodeId {
        let corr_group = if n >= 2 && self.rng.gen_bool(self.profile.corr_prob) {
            Some(self.cat.add_corr_group(self.rng.gen_range(0.6..0.95)))
        } else {
            None
        };
        let atoms = (0..n)
            .map(|_| {
                let col = cols[self.rng.gen_range(0..cols.len())];
                self.atom(col, corr_group)
            })
            .collect();
        self.plan.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate { atoms },
            },
            vec![input],
        )
    }

    /// A user-defined operator; heavy with the profile's probability.
    fn udo(&mut self) -> UdoId {
        let heavy = self.rng.gen_bool(self.profile.heavy_udo_prob);
        let cpu = if heavy {
            self.rng.gen_range(2.5..9.0)
        } else {
            self.rng.gen_range(0.5..3.0)
        };
        let sel = if self.rng.gen_bool(0.2) {
            self.rng.gen_range(1.2..3.0) // exploding UDO
        } else {
            self.rng.gen_range(0.2..1.1)
        };
        self.cat.add_udo(cpu, sel)
    }

    fn process(&mut self, input: NodeId) -> NodeId {
        let udo = self.udo();
        self.plan
            .add_unchecked(LogicalOp::Process { udo }, vec![input])
    }

    fn project(&mut self, input: NodeId, cols: Vec<ColId>) -> NodeId {
        let computed = self.rng.gen_range(0..3);
        self.plan
            .add_unchecked(LogicalOp::Project { cols, computed }, vec![input])
    }

    fn join(&mut self, l: NodeId, r: NodeId, lk: ColId, rk: ColId) -> NodeId {
        self.plan.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(lk, rk)],
            },
            vec![l, r],
        )
    }

    fn groupby(&mut self, input: NodeId, keys: Vec<ColId>, aggcol: ColId) -> NodeId {
        let aggs = vec![AggFunc::Count, AggFunc::Sum(aggcol)];
        self.plan.add_unchecked(
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial: false,
            },
            vec![input],
        )
    }

    // ---- Motifs ----------------------------------------------------------

    /// scan → [process ↔ select in script order] → project.
    /// Half the scripts filter *after* the (possibly expensive) UDO — the
    /// shape the off-by-default `SelectOnProcess*` rules repair.
    fn etl_cook(&mut self) {
        let d = self.domain();
        let (key, attrs) = self.schema(d, 100_000, false, 4);
        let t = self.fact_table(1_000_000, key, &attrs.clone());
        let scan = self.scan(t);
        let blocks = self.rng.gen_range(1..4);
        let mut node = scan;
        for _ in 0..blocks {
            let n_atoms = self.rng.gen_range(1..4);
            node = if self.rng.gen_bool(0.35) {
                // Badly written script: cook first, filter later.
                let cooked = self.process(node);
                self.filter(cooked, &attrs, n_atoms)
            } else {
                let filtered = self.filter(node, &attrs, n_atoms);
                self.process(filtered)
            };
            if self.rng.gen_bool(0.4) {
                let mut keep = vec![key];
                keep.extend(attrs.iter().copied());
                node = self.project(node, keep);
            }
        }
        if self.rng.gen_bool(0.3) {
            node = self.plan.add_unchecked(
                LogicalOp::Sort {
                    keys: vec![attrs[0]],
                },
                vec![node],
            );
        }
        let mut keep = vec![key];
        keep.extend(attrs.iter().take(2));
        let root = self.project(node, keep);
        self.root = Some(root);
    }

    /// union(filtered streams) ⋈ dim → group-by. Skewed union keys make
    /// `UnionAllToVirtualDataset` and the `CorrelatedJoinOnUnionAll*`
    /// family matter.
    fn union_join_agg(&mut self) {
        let d = self.domain();
        let skewed = self.rng.gen_bool(self.profile.skew_prob);
        let (key, attrs) = self.schema(d, 50_000, skewed, 3);
        let branches = self.rng.gen_range(2..10);
        let mut branch_nodes = Vec::new();
        for _ in 0..branches {
            let t = self.fact_table(100_000, key, &attrs.clone());
            let scan = self.scan(t);
            let n = self.rng.gen_range(1..3);
            let mut node = self.filter(scan, &attrs, n);
            if self.rng.gen_bool(0.4) {
                let mut keep = vec![key];
                keep.extend(attrs.iter().copied());
                node = self.project(node, keep);
            }
            branch_nodes.push(node);
        }
        let union = self.plan.add_unchecked(LogicalOp::UnionAll, branch_nodes);
        let (dim, dkey, dattr) = self.dim_table(d, 50_000);
        let dscan = self.scan(dim);
        let mut joined = self.join(union, dscan, key, dkey);
        if self.rng.gen_bool(0.4) {
            // A second dimension joined on a fresh domain shared by the
            // first dim's attribute.
            let d2 = self.cat.columns[dattr.index()].domain;
            let (dim2, dkey2, _) = self.dim_table(d2, 1_000);
            let dscan2 = self.scan(dim2);
            joined = self.join(joined, dscan2, dattr, dkey2);
        }
        let mut node = self.groupby(joined, vec![dattr], attrs[0]);
        if self.rng.gen_bool(0.35) {
            node = self
                .plan
                .add_unchecked(LogicalOp::Sort { keys: vec![dattr] }, vec![node]);
            let k = self.rng.gen_range(10..500);
            node = self.plan.add_unchecked(LogicalOp::Top { k }, vec![node]);
        }
        self.root = Some(node);
    }

    /// Big skewed-key fact ⋈ dim → group-by → top. The cost model can't see
    /// the skew, so the default hash join's busiest vertex dominates.
    fn skew_join_topk(&mut self) {
        let d = self.domain();
        let (key, attrs) = self.schema(d, 20_000, true, 4);
        let t = self.fact_table(50_000_000, key, &attrs.clone());
        let scan = self.scan(t);
        let n = self.rng.gen_range(1..3);
        let f = self.filter(scan, &attrs, n);
        // Star join: the skewed key dim, plus 0..2 attribute dims.
        let (dim, dkey, dattr) = self.dim_table(d, 20_000);
        let dscan = self.scan(dim);
        let mut joined = self.join(f, dscan, key, dkey);
        let extra_dims = self.rng.gen_range(0..3);
        for i in 0..extra_dims {
            let attr = attrs[i % attrs.len()];
            let ad = self.cat.columns[attr.index()].domain;
            let (adim, adkey, _) = self.dim_table(ad, 1_000);
            let adscan = self.scan(adim);
            joined = self.join(joined, adscan, attr, adkey);
        }
        if self.rng.gen_bool(0.3) {
            joined = self
                .plan
                .add_unchecked(LogicalOp::Window { keys: vec![dattr] }, vec![joined]);
        }
        let gb = self.groupby(joined, vec![dattr], attrs[0]);
        let top_k = self.rng.gen_range(10..1000);
        let top = self
            .plan
            .add_unchecked(LogicalOp::Top { k: top_k }, vec![gb]);
        self.root = Some(top);
    }

    /// Correlated filters shrink the *estimate* far below the truth; the
    /// filtered side then looks broadcastable. Disabling
    /// `BroadcastJoinImpl`/`LoopJoinImpl` repairs the plan.
    fn corr_trap(&mut self) {
        let d = self.domain();
        // Pick both streams first so the join-key distinct count can track
        // the larger side — an FK↔FK join whose fanout stays ≈ min(l, r)
        // instead of exploding.
        let l_idx = self.pool.pick_where(self.rng, |rows| rows >= 20_000_000);
        let r_idx = self.pool.pick_where(self.rng, |rows| rows >= 10_000_000);
        let key_ndv = self.pool.streams[l_idx]
            .base_rows
            .max(self.pool.streams[r_idx].base_rows)
            .max(200_000);
        let (lkey, lattrs) = self.schema(d, key_ndv, false, 3);
        let mut lcols = vec![lkey];
        lcols.extend_from_slice(&lattrs);
        let big = self.table(l_idx, lcols);
        let lscan = self.scan(big);

        let (rkey, rattrs) = self.schema(d, key_ndv, false, 3);
        let mut rcols = vec![rkey];
        rcols.extend_from_slice(&rattrs);
        let right = self.table(r_idx, rcols);
        let rscan = self.scan(right);
        // Strongly correlated chain with individually-tiny estimated
        // selectivities (Eq on high-ndv columns) but a large true
        // selectivity.
        let g = self.cat.add_corr_group(self.rng.gen_range(0.8..1.0));
        let atoms: Vec<PredAtom> = (0..3)
            .map(|_| {
                let col = rattrs[self.rng.gen_range(0..rattrs.len())];
                let pred = self.cat.add_pred(self.rng.gen_range(0.05..0.3), Some(g));
                PredAtom {
                    col,
                    op: CmpOp::Eq,
                    literal: Literal::Int(0),
                    pred,
                }
            })
            .collect();
        let rfiltered = self.plan.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate { atoms },
            },
            vec![rscan],
        );
        let joined = self.join(lscan, rfiltered, lkey, rkey);
        let gb = self.groupby(joined, vec![lattrs[0]], lattrs[1]);
        self.root = Some(gb);
    }

    /// Plain reporting rollup — usually well-optimized already.
    fn rollup(&mut self) {
        let d = self.domain();
        let (key, attrs) = self.schema(d, 10_000, false, 4);
        let t = self.fact_table(500_000, key, &attrs.clone());
        let scan = self.scan(t);
        let n = self.rng.gen_range(1..4);
        let mut node = self.filter(scan, &attrs, n);
        let rounds = self.rng.gen_range(1..3);
        for r in 0..rounds {
            let gkey = attrs[r % 2];
            node = self.groupby(node, vec![gkey, attrs[2]], attrs[1]);
            if self.rng.gen_bool(0.5) {
                node = self.filter(node, &[gkey, attrs[2]], 1);
            }
        }
        let sort = self.plan.add_unchecked(
            LogicalOp::Sort {
                keys: vec![attrs[0]],
            },
            vec![node],
        );
        let top = self
            .plan
            .add_unchecked(LogicalOp::Top { k: 100 }, vec![sort]);
        self.root = Some(top);
    }

    /// A shared cooked intermediate feeding two consumers (a DAG).
    fn shared_cook(&mut self) {
        let d = self.domain();
        let skewed = self.rng.gen_bool(self.profile.skew_prob);
        let (key, attrs) = self.schema(d, 50_000, skewed, 4);
        let t = self.fact_table(2_000_000, key, &attrs.clone());
        let scan = self.scan(t);
        let f = self.filter(scan, &attrs, 2);
        let cooked = self.process(f);
        // Branch 1: rollup.
        let gb = self.groupby(cooked, vec![attrs[0]], attrs[1]);
        let top = self.plan.add_unchecked(LogicalOp::Top { k: 50 }, vec![gb]);
        // Branch 2: windowed view over the same cooked data.
        let win = self.plan.add_unchecked(
            LogicalOp::Window {
                keys: vec![attrs[0]],
            },
            vec![cooked],
        );
        let proj = self.project(win, vec![attrs[0], attrs[1]]);
        let gb2 = self.groupby(proj, vec![attrs[0]], attrs[1]);
        let combiner = if self.rng.gen_bool(0.5) {
            LogicalOp::UnionAll
        } else {
            // Some scripts materialize multi-branch results as a virtual
            // dataset explicitly.
            LogicalOp::VirtualDataset
        };
        let combined = self.plan.add_unchecked(combiner, vec![top, gb2]);
        self.root = Some(combined);
    }

    /// Nested unions of many small streams, then a cook — the
    /// `UnionAllOnUnionAll` flattening motif.
    fn deep_unions(&mut self) {
        let d = self.domain();
        let (key, attrs) = self.schema(d, 10_000, false, 3);
        let groups = self.rng.gen_range(2..6);
        let mut inner_unions = Vec::new();
        for _ in 0..groups {
            let branches = self.rng.gen_range(2..5);
            let mut nodes = Vec::new();
            for _ in 0..branches {
                let t = self.fact_table(10_000, key, &attrs.clone());
                let s = self.scan(t);
                nodes.push(s);
            }
            inner_unions.push(self.plan.add_unchecked(LogicalOp::UnionAll, nodes));
        }
        let outer = self.plan.add_unchecked(LogicalOp::UnionAll, inner_unions);
        let cooked = self.process(outer);
        let f = self.filter(cooked, &attrs, 1);
        self.root = Some(f);
    }

    /// scan → window → filter → project.
    fn window_pipe(&mut self) {
        let d = self.domain();
        let (key, attrs) = self.schema(d, 100_000, false, 3);
        let t = self.fact_table(1_000_000, key, &attrs.clone());
        let scan = self.scan(t);
        let win = self.plan.add_unchecked(
            LogicalOp::Window {
                keys: vec![attrs[0]],
            },
            vec![scan],
        );
        let n = self.rng.gen_range(1..3);
        let f = self.filter(win, &attrs, n);
        let proj = self.project(f, vec![key, attrs[0]]);
        self.root = Some(proj);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn build_all() -> Vec<TemplateParts> {
        let profile = WorkloadProfile::workload_a(1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let pool = InputPool::generate(200, 15.0, 2.0, 0.2, &mut rng);
        Motif::ALL
            .iter()
            .map(|m| m.build(&profile, &pool, &mut rng))
            .collect()
    }

    #[test]
    fn every_motif_builds_a_valid_plan() {
        for (i, parts) in build_all().into_iter().enumerate() {
            parts
                .plan
                .validate()
                .unwrap_or_else(|e| panic!("motif {i} invalid: {e}"));
            assert!(parts.plan.size() >= 4, "motif {i} too small");
            assert_eq!(
                parts.table_streams.len(),
                parts.catalog.tables.len(),
                "motif {i} stream mapping"
            );
        }
    }

    #[test]
    fn motifs_compile_under_default_config() {
        use scope_optimizer::{compile, RuleConfig};
        for (i, parts) in build_all().into_iter().enumerate() {
            let obs = parts.catalog.observe();
            let compiled = compile(&parts.plan, &obs, &RuleConfig::default_config())
                .unwrap_or_else(|e| panic!("motif {i} failed to compile: {e}"));
            assert!(compiled.est_cost > 0.0, "motif {i}");
        }
    }

    #[test]
    fn motif_construction_is_deterministic() {
        let profile = WorkloadProfile::workload_b(1.0);
        let mut rng1 = StdRng::seed_from_u64(11);
        let pool1 = InputPool::generate(50, 15.0, 2.0, 0.2, &mut rng1);
        let a = Motif::CorrTrap.build(&profile, &pool1, &mut rng1);
        let mut rng2 = StdRng::seed_from_u64(11);
        let pool2 = InputPool::generate(50, 15.0, 2.0, 0.2, &mut rng2);
        let b = Motif::CorrTrap.build(&profile, &pool2, &mut rng2);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.catalog, b.catalog);
    }

    #[test]
    fn shared_cook_produces_a_dag() {
        let profile = WorkloadProfile::workload_a(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = InputPool::generate(50, 15.0, 2.0, 0.2, &mut rng);
        let parts = Motif::SharedCook.build(&profile, &pool, &mut rng);
        // Some node must have two parents (the cooked intermediate).
        let mut parent_count = vec![0usize; parts.plan.len()];
        for (_, node) in parts.plan.iter() {
            for c in &node.children {
                parent_count[c.index()] += 1;
            }
        }
        assert!(parent_count.iter().any(|&c| c >= 2));
    }
}
