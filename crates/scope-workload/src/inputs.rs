//! The shared input-stream pool.
//!
//! Templates reference streams from a workload-wide pool (many templates
//! cook the same upstream data). Each stream's size drifts day to day by a
//! seeded lognormal factor, shared by every job reading that stream on that
//! day — exactly the "input data streams for these jobs can change daily"
//! behaviour of §3.1.1.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scope_ir::stats::lognormal;

/// One input stream in the pool.
#[derive(Clone, Debug, PartialEq)]
pub struct InputStream {
    /// Hash of the stream name.
    pub name_hash: u64,
    /// Baseline row count.
    pub base_rows: u64,
    /// Row width in bytes.
    pub row_bytes: u32,
    /// Day-to-day multiplicative drift (σ of the underlying normal).
    pub drift_sigma: f64,
}

impl InputStream {
    /// Rows of this stream on `day` — deterministic per (stream, day).
    pub fn rows_on(&self, day: u32) -> u64 {
        let mut h = DefaultHasher::new();
        self.name_hash.hash(&mut h);
        day.hash(&mut h);
        let mut rng = StdRng::seed_from_u64(h.finish());
        let factor = lognormal(&mut rng, 0.0, self.drift_sigma);
        ((self.base_rows as f64) * factor).max(1.0) as u64
    }

    /// The stream's (hashed) name on `day` when names embed dates.
    pub fn dated_name(&self, day: u32) -> u64 {
        let mut h = DefaultHasher::new();
        self.name_hash.hash(&mut h);
        0xDA7Eu16.hash(&mut h);
        day.hash(&mut h);
        h.finish()
    }
}

/// The workload's stream pool.
#[derive(Clone, Debug, Default)]
pub struct InputPool {
    pub streams: Vec<InputStream>,
}

impl InputPool {
    /// Generate `n` streams with `ln(rows) ~ Normal(mu, sigma)`.
    pub fn generate(
        n: usize,
        mu: f64,
        sigma: f64,
        drift_sigma: f64,
        rng: &mut StdRng,
    ) -> InputPool {
        let streams = (0..n)
            .map(|_| {
                let rows = lognormal(rng, mu, sigma).clamp(100.0, 1.5e9) as u64;
                InputStream {
                    name_hash: rng.gen(),
                    base_rows: rows,
                    row_bytes: *[60u32, 80, 100, 120, 160, 240]
                        .get(rng.gen_range(0..6))
                        .expect("width choice"),
                    drift_sigma,
                }
            })
            .collect();
        InputPool { streams }
    }

    /// Pick a stream index, biased towards `pred(rows)`-satisfying streams;
    /// falls back to uniform if none match within a bounded number of
    /// draws.
    pub fn pick_where<F: Fn(u64) -> bool>(&self, rng: &mut StdRng, pred: F) -> usize {
        for _ in 0..32 {
            let i = rng.gen_range(0..self.streams.len());
            if pred(self.streams[i].base_rows) {
                return i;
            }
        }
        rng.gen_range(0..self.streams.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> InputPool {
        let mut rng = StdRng::seed_from_u64(1);
        InputPool::generate(100, 15.0, 2.0, 0.25, &mut rng)
    }

    #[test]
    fn drift_is_deterministic_per_day() {
        let p = pool();
        let s = &p.streams[0];
        assert_eq!(s.rows_on(3), s.rows_on(3));
        // Across many days the size actually varies.
        let distinct: std::collections::HashSet<u64> = (0..10).map(|d| s.rows_on(d)).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn drift_is_centered_on_base() {
        let p = pool();
        let s = &p.streams[1];
        let mean: f64 = (0..200).map(|d| s.rows_on(d) as f64).sum::<f64>() / 200.0;
        let ratio = mean / s.base_rows as f64;
        assert!(ratio > 0.8 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn dated_names_differ_by_day_and_stream() {
        let p = pool();
        let s0 = &p.streams[0];
        let s1 = &p.streams[1];
        assert_ne!(s0.dated_name(1), s0.dated_name(2));
        assert_ne!(s0.dated_name(1), s1.dated_name(1));
        assert_ne!(s0.dated_name(1), s0.name_hash);
    }

    #[test]
    fn sizes_are_heavy_tailed() {
        let p = pool();
        let mut rows: Vec<f64> = p.streams.iter().map(|s| s.base_rows as f64).collect();
        rows.sort_by(f64::total_cmp);
        let median = rows[rows.len() / 2];
        let max = rows[rows.len() - 1];
        assert!(max / median > 20.0, "tail {max}/{median}");
    }

    #[test]
    fn size_sort_tolerates_poisoned_rows() {
        let p = pool();
        let mut rows: Vec<f64> = p.streams.iter().map(|s| s.base_rows as f64).collect();
        rows.push(f64::NAN);
        // total_cmp: the NaN lands after +inf instead of panicking the sort.
        rows.sort_by(f64::total_cmp);
        assert!(rows.last().copied().expect("non-empty").is_nan());
        assert!(rows[..rows.len() - 1].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pick_where_prefers_matching_streams() {
        let p = pool();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let i = p.pick_where(&mut rng, |rows| rows > 1_000_000);
            // Bias holds whenever such streams exist (they do in this pool).
            assert!(p.streams[i].base_rows > 0);
        }
    }
}
