//! Workload profiles for the paper's three production workloads.
//!
//! The defaults are scaled 1/100 from Table 1 (A = 950, B = 150, C = 400
//! jobs per day) with the shape statistics preserved: job-to-template and
//! template-to-input ratios, heavy-tailed input sizes, motif mixtures, and
//! the prevalence of the planted estimate-vs-truth divergences (predicate
//! correlation, join-key skew, heavy user-defined operators).

/// Which production workload a profile models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadTag {
    A,
    B,
    C,
}

impl WorkloadTag {
    pub const ALL: [WorkloadTag; 3] = [WorkloadTag::A, WorkloadTag::B, WorkloadTag::C];

    pub fn name(self) -> &'static str {
        match self {
            WorkloadTag::A => "A",
            WorkloadTag::B => "B",
            WorkloadTag::C => "C",
        }
    }
}

/// Relative weights of the template motifs (see `motifs.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct MotifMix {
    pub etl_cook: f64,
    pub union_join_agg: f64,
    pub skew_join_topk: f64,
    pub corr_trap: f64,
    pub rollup: f64,
    pub shared_cook: f64,
    pub deep_unions: f64,
    pub window_pipe: f64,
}

impl MotifMix {
    pub fn weights(&self) -> [f64; 8] {
        [
            self.etl_cook,
            self.union_join_agg,
            self.skew_join_topk,
            self.corr_trap,
            self.rollup,
            self.shared_cook,
            self.deep_unions,
            self.window_pipe,
        ]
    }
}

/// Generator parameters for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    pub tag: WorkloadTag,
    pub seed: u64,
    /// Approximate number of jobs per day.
    pub daily_jobs: usize,
    /// Recurring templates as a fraction of daily jobs (Table 1 ratios).
    pub templates_per_job: f64,
    /// Input-stream pool size as a fraction of the template count.
    pub inputs_per_template: f64,
    /// Probability a template is active on a given day.
    pub template_activity: f64,
    /// Motif mixture.
    pub mix: MotifMix,
    /// Input size distribution: `ln(rows)` is Normal(mu, sigma).
    pub input_rows_mu: f64,
    pub input_rows_sigma: f64,
    /// Daily multiplicative input drift (σ of the underlying normal).
    pub drift_sigma: f64,
    /// Probability a generated filter chain is correlated.
    pub corr_prob: f64,
    /// Probability a join key is skewed.
    pub skew_prob: f64,
    /// Probability a UDO is heavy (high true per-row cost).
    pub heavy_udo_prob: f64,
    /// Probability a template's input names embed the date, producing a new
    /// template id every day (the identification flaw discussed in §6.4).
    pub dated_inputs_prob: f64,
    /// Probability a template carries customer rule hints enabling one or
    /// two off-by-default rules (§3.3: "rule flags are already available
    /// and often used by customers").
    pub customer_hint_prob: f64,
}

impl WorkloadProfile {
    /// Workload A: the largest and most diverse workload.
    pub fn workload_a(scale: f64) -> WorkloadProfile {
        WorkloadProfile {
            tag: WorkloadTag::A,
            seed: 0xA11CE,
            daily_jobs: scaled(950, scale),
            templates_per_job: 0.51,   // 48K/95K
            inputs_per_template: 0.60, // 29K/48K
            template_activity: 0.93,
            mix: MotifMix {
                etl_cook: 0.22,
                union_join_agg: 0.18,
                skew_join_topk: 0.12,
                corr_trap: 0.10,
                rollup: 0.16,
                shared_cook: 0.08,
                deep_unions: 0.06,
                window_pipe: 0.08,
            },
            input_rows_mu: 16.3, // median ~12M rows
            input_rows_sigma: 2.5,
            drift_sigma: 0.25,
            corr_prob: 0.25,
            skew_prob: 0.25,
            heavy_udo_prob: 0.25,
            dated_inputs_prob: 0.25,
            customer_hint_prob: 0.08,
        }
    }

    /// Workload B: smaller, homogeneous (few distinct signatures — 837 for
    /// 15K jobs in Table 1), dominated by recurring cooking pipelines.
    pub fn workload_b(scale: f64) -> WorkloadProfile {
        WorkloadProfile {
            tag: WorkloadTag::B,
            seed: 0xB0B,
            daily_jobs: scaled(150, scale),
            templates_per_job: 0.70,   // 10.5K/15K
            inputs_per_template: 0.86, // 9K/10.5K
            template_activity: 0.97,
            mix: MotifMix {
                etl_cook: 0.34,
                union_join_agg: 0.26,
                skew_join_topk: 0.10,
                corr_trap: 0.12,
                rollup: 0.10,
                shared_cook: 0.04,
                deep_unions: 0.02,
                window_pipe: 0.02,
            },
            input_rows_mu: 16.8,
            input_rows_sigma: 2.0,
            drift_sigma: 0.20,
            corr_prob: 0.30,
            skew_prob: 0.28,
            heavy_udo_prob: 0.20,
            dated_inputs_prob: 0.15,
            customer_hint_prob: 0.05,
        }
    }

    /// Workload C: long-running analytical jobs; smaller improvements in
    /// percentage terms (§6.2).
    pub fn workload_c(scale: f64) -> WorkloadProfile {
        WorkloadProfile {
            tag: WorkloadTag::C,
            seed: 0xC0C0A,
            daily_jobs: scaled(400, scale),
            templates_per_job: 0.55,   // 22K/40K
            inputs_per_template: 0.84, // 18.5K/22K
            template_activity: 0.94,
            mix: MotifMix {
                etl_cook: 0.14,
                union_join_agg: 0.16,
                skew_join_topk: 0.14,
                corr_trap: 0.08,
                rollup: 0.22,
                shared_cook: 0.10,
                deep_unions: 0.06,
                window_pipe: 0.10,
            },
            input_rows_mu: 17.3, // bigger inputs → longer jobs
            input_rows_sigma: 1.9,
            drift_sigma: 0.18,
            corr_prob: 0.25,
            skew_prob: 0.22,
            heavy_udo_prob: 0.20,
            dated_inputs_prob: 0.20,
            customer_hint_prob: 0.06,
        }
    }

    /// Profile for a tag at a scale.
    pub fn for_tag(tag: WorkloadTag, scale: f64) -> WorkloadProfile {
        match tag {
            WorkloadTag::A => Self::workload_a(scale),
            WorkloadTag::B => Self::workload_b(scale),
            WorkloadTag::C => Self::workload_c(scale),
        }
    }

    /// Number of recurring templates.
    pub fn num_templates(&self) -> usize {
        ((self.daily_jobs as f64) * self.templates_per_job)
            .round()
            .max(1.0) as usize
    }

    /// Size of the shared input-stream pool.
    pub fn pool_size(&self) -> usize {
        ((self.num_templates() as f64) * self.inputs_per_template)
            .round()
            .max(4.0) as usize
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64) * scale).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_match_table1_ratios() {
        let a = WorkloadProfile::workload_a(1.0);
        assert_eq!(a.daily_jobs, 950);
        assert_eq!(a.num_templates(), 485);
        assert!(a.pool_size() < a.num_templates());
        let b = WorkloadProfile::workload_b(1.0);
        assert_eq!(b.daily_jobs, 150);
        assert!(b.num_templates() as f64 / b.daily_jobs as f64 > 0.65);
    }

    #[test]
    fn scaling_shrinks_job_counts() {
        let a = WorkloadProfile::workload_a(0.1);
        assert_eq!(a.daily_jobs, 95);
        assert!(a.num_templates() >= 1);
    }

    #[test]
    fn motif_weights_are_normalizable() {
        for tag in WorkloadTag::ALL {
            let p = WorkloadProfile::for_tag(tag, 1.0);
            let total: f64 = p.mix.weights().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{tag:?} weights sum {total}");
        }
    }
}
