//! # scope-workload
//!
//! Synthetic, production-shaped workload generators standing in for the
//! paper's three SCOPE workloads (Table 1):
//!
//! * [`profiles`] — per-workload parameters (scaled 1/100 by default,
//!   ratios preserved),
//! * [`inputs`] — the shared input-stream pool with deterministic daily
//!   size drift,
//! * [`motifs`] — the recurring job shapes, including the planted
//!   estimate-vs-truth divergences that make rule steering matter,
//! * [`template`] — recurring templates instantiated into daily jobs with
//!   fresh literals (same template id, new plan hash),
//! * [`generator`] — the day-by-day workload assembly.

pub mod generator;
pub mod inputs;
pub mod motifs;
pub mod profiles;
pub mod template;

pub use generator::Workload;
pub use inputs::{InputPool, InputStream};
pub use motifs::{Motif, TemplateParts};
pub use profiles::{MotifMix, WorkloadProfile, WorkloadTag};
pub use template::Template;
