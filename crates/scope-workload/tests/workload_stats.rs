//! Statistical shape tests over the generated workloads: the Table 1 /
//! Figure 2 invariants the experiments rely on.

use std::collections::{HashMap, HashSet};

use scope_ir::OpKind;
use scope_workload::{Motif, Workload, WorkloadProfile, WorkloadTag};

fn workload(tag: WorkloadTag) -> Workload {
    Workload::generate(WorkloadProfile::for_tag(tag, 0.3))
}

#[test]
fn all_workloads_hit_their_daily_targets() {
    for tag in WorkloadTag::ALL {
        let w = workload(tag);
        let counts: Vec<usize> = (0..4).map(|d| w.day(d).len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let target = w.profile.daily_jobs as f64;
        assert!(
            (mean / target - 1.0).abs() < 0.35,
            "{tag:?}: mean {mean} vs target {target}"
        );
    }
}

#[test]
fn template_to_job_ratios_match_profiles() {
    for tag in WorkloadTag::ALL {
        let w = workload(tag);
        let jobs = w.day(0);
        let templates: HashSet<_> = jobs.iter().map(|j| j.template).collect();
        let ratio = templates.len() as f64 / jobs.len() as f64;
        let expected = w.profile.templates_per_job;
        assert!(
            (ratio - expected).abs() < 0.2,
            "{tag:?}: template ratio {ratio:.2} vs profile {expected:.2}"
        );
    }
}

#[test]
fn motif_mixture_is_respected() {
    let w = workload(WorkloadTag::A);
    let mut counts: HashMap<Motif, usize> = HashMap::new();
    for t in &w.templates {
        *counts.entry(t.motif).or_insert(0) += 1;
    }
    let total = w.templates.len() as f64;
    // Every motif appears, and the dominant ones match the profile weights
    // loosely.
    for motif in Motif::ALL {
        assert!(
            counts.get(&motif).copied().unwrap_or(0) > 0,
            "{motif:?} absent"
        );
    }
    let etl_share = counts[&Motif::EtlCook] as f64 / total;
    assert!(
        (etl_share - w.profile.mix.etl_cook).abs() < 0.12,
        "etl share {etl_share}"
    );
}

#[test]
fn input_pool_is_shared_across_templates() {
    let w = workload(WorkloadTag::A);
    let mut stream_users: HashMap<usize, usize> = HashMap::new();
    for t in &w.templates {
        for &s in &t.parts.table_streams {
            *stream_users.entry(s).or_insert(0) += 1;
        }
    }
    let shared = stream_users.values().filter(|&&c| c >= 2).count();
    assert!(
        shared * 2 > stream_users.len(),
        "most streams should feed several templates ({shared}/{})",
        stream_users.len()
    );
}

#[test]
fn plan_sizes_are_heterogeneous() {
    let w = workload(WorkloadTag::A);
    let sizes: Vec<usize> = w.day(0).iter().map(scope_ir::Job::plan_size).collect();
    let min = *sizes.iter().min().unwrap();
    let max = *sizes.iter().max().unwrap();
    assert!(min >= 3);
    assert!(max >= 20, "largest plan only {max} operators");
    assert!(max >= min * 3, "not enough size spread: {min}..{max}");
}

#[test]
fn every_plan_uses_raw_script_operators() {
    // Generated scripts are pre-normalization: they contain `Get`/`Select`,
    // never `RangeGet`/`Filter`.
    let w = workload(WorkloadTag::B);
    for job in w.day(0) {
        let counts = job.plan.op_counts();
        assert!(counts[OpKind::Get as usize] > 0, "job without scans");
        assert_eq!(counts[OpKind::RangeGet as usize], 0);
        assert_eq!(counts[OpKind::Filter as usize], 0);
    }
}

#[test]
fn some_templates_carry_customer_hints() {
    let w = workload(WorkloadTag::A);
    let hinted = w.templates.iter().filter(|t| !t.hints.is_empty()).count();
    assert!(hinted > 0, "no customer hints generated");
    assert!(
        (hinted as f64 / w.templates.len() as f64) < 0.25,
        "too many hinted templates"
    );
    // Hints reference off-by-default rules only.
    let cat = scope_optimizer::RuleCatalog::global();
    for t in &w.templates {
        for &h in &t.hints {
            assert!(cat.off_by_default().contains(scope_optimizer::RuleId(h)));
        }
    }
}

#[test]
fn dated_input_templates_churn_identity() {
    let w = workload(WorkloadTag::A);
    let dated = w.templates.iter().filter(|t| t.dated_inputs).count();
    assert!(dated > 0, "no dated-input templates");
    // A dated template produces different template ids on different days.
    let t = w.templates.iter().find(|t| t.dated_inputs).unwrap();
    let j0 = t.instantiate(&w.pool, 0, 0, scope_ir::ids::JobId(1));
    let j1 = t.instantiate(&w.pool, 1, 0, scope_ir::ids::JobId(2));
    assert_ne!(j0.template, j1.template);
}
