//! # scope-trace
//!
//! A lightweight structured tracing + metrics layer for the steering
//! pipeline, modelled on the flighting telemetry that kept QO-Advisor's
//! production deployment observable: every load-bearing stage (optimizer
//! phases, the exec simulator, discovery) emits *spans* and bumps *typed
//! counters/histograms*, and exporters turn them into a Chrome
//! `trace_event` flamegraph or a machine-readable [`MetricsSnapshot`].
//!
//! Design constraints, in order:
//!
//! 1. **A disabled tracer is a no-op.** Every instrumentation point is
//!    gated on one relaxed atomic load ([`enabled`]); when it is `false`
//!    nothing allocates, locks, or reads the clock. The tracer ships
//!    disabled and is flipped on by benches ([`set_enabled`]).
//! 2. **Tracing must never change results.** Instrumented code takes no
//!    decisions from the tracer; `exp_trace` verifies discovery reports
//!    are bit-identical with tracing on and off.
//! 3. **Cheap when enabled.** Counters and histograms are lock-free
//!    atomics; span events buffer in thread-local storage and drain into
//!    the global sink only on flush (buffer full, thread exit, or
//!    [`take_spans`]).
//!
//! ## Spans
//!
//! [`span`] opens a hierarchical span: monotonic start/end timestamps
//! (microseconds since the process-wide trace epoch), the recording
//! thread, and a parent link to the span enclosing it on the same thread.
//! The returned [`SpanGuard`] closes the span on drop, so instrumentation
//! is one line:
//!
//! ```
//! fn explore_phase() {
//!     let _span = scope_trace::span("compile.explore");
//!     // ... work ...
//! }
//! ```
//!
//! [`span_timed`] additionally records the span's duration into a
//! [`Histogram`], and [`span_with`] attaches a numeric argument (e.g. a
//! job id) that the Chrome exporter surfaces under `args`.
//!
//! ## Counters and histograms
//!
//! [`Counter`] and [`Histogram`] are closed enums — the registry of
//! everything the workspace measures — so recording is an array index and
//! an atomic add, and a [`MetricsSnapshot`] can enumerate the whole state
//! without locks. Snapshots subtract ([`MetricsSnapshot::since`]) so
//! callers report per-run deltas even though the tracer is process-global.

pub mod chrome;
pub mod metrics;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use chrome::chrome_trace;
pub use metrics::{
    count, record, Counter, CounterValue, Histogram, HistogramSnapshot, MetricsSnapshot,
};

/// Master switch. Relaxed is sufficient: the flag only gates *whether*
/// telemetry is recorded, never synchronizes data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether the tracer is recording. One relaxed load — the cost of every
/// instrumentation point when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the tracer on or off. Spans opened while enabled still close
/// normally after a disable (their guards are already live).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide trace epoch: all span timestamps are microseconds
/// since this instant (fixed at first use, monotonic).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One closed span, as drained by [`take_spans`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (e.g. `"compile.explore"`).
    pub name: &'static str,
    /// Unique span id (process-wide).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Small dense id of the recording thread (not the OS tid).
    pub thread: u64,
    /// Caller-supplied argument (0 when unused) — e.g. a job id.
    pub arg: u64,
    /// Start, in microseconds since the trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// Local buffers flush into the global sink when they reach this size.
const FLUSH_THRESHOLD: usize = 4096;

/// Default ceiling on spans retained in the global sink between
/// [`take_spans`] drains. Generous for batch benches; a long-running
/// daemon lowers it via [`set_span_cap`].
const DEFAULT_SPAN_CAP: usize = 1 << 20;

static SPAN_CAP: AtomicUsize = AtomicUsize::new(DEFAULT_SPAN_CAP);

/// Cap the number of closed spans the global sink retains between
/// [`take_spans`] drains. Once the sink is full, further flushes drop
/// their newest spans and bump [`Counter::TraceSpansDropped`] — tracing
/// memory stays bounded no matter how rarely the daemon drains. The cap
/// is clamped to at least 1.
pub fn set_span_cap(cap: usize) {
    SPAN_CAP.store(cap.max(1), Ordering::Relaxed);
}

/// Current sink cap (see [`set_span_cap`]).
#[must_use]
pub fn span_cap() -> usize {
    SPAN_CAP.load(Ordering::Relaxed)
}

static GLOBAL_SPANS: Mutex<Vec<SpanEvent>> = Mutex::new(Vec::new());
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Per-thread span state: the open-span stack (parent links) and a buffer
/// of closed spans. Flushes on drop, so scoped worker threads hand their
/// events to the sink when they exit.
struct ThreadBuf {
    thread: u64,
    stack: Vec<u64>,
    closed: Vec<SpanEvent>,
}

impl ThreadBuf {
    fn new() -> ThreadBuf {
        ThreadBuf {
            thread: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            closed: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.closed.is_empty() {
            return;
        }
        let cap = span_cap();
        let mut sink = GLOBAL_SPANS.lock().expect("span sink poisoned");
        let room = cap.saturating_sub(sink.len());
        if self.closed.len() > room {
            let dropped = (self.closed.len() - room) as u64;
            self.closed.truncate(room);
            // Not gated on `enabled()`: the spans being dropped were
            // recorded while enabled, and the drop must be visible even
            // if the tracer was switched off before this flush.
            metrics::count_always(Counter::TraceSpansDropped, dropped);
        }
        sink.append(&mut self.closed);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// An open span; closes (records start, duration, parent, thread) when
/// dropped. A guard obtained while the tracer is disabled is inert.
#[must_use = "a span closes when its guard drops — bind it to a variable"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

struct LiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    arg: u64,
    start: Instant,
    start_us: u64,
    timed: Option<Histogram>,
}

fn open_span(name: &'static str, arg: u64, timed: Option<Histogram>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = THREAD_BUF.with(|b| {
        let mut b = b.borrow_mut();
        let parent = b.stack.last().copied();
        b.stack.push(id);
        parent
    });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            id,
            parent,
            arg,
            start: Instant::now(),
            start_us: now_us(),
            timed,
        }),
    }
}

/// Open a span named `name` under the current thread's innermost span.
pub fn span(name: &'static str) -> SpanGuard {
    open_span(name, 0, None)
}

/// [`span`] with a numeric argument (job id, candidate index, ...).
pub fn span_with(name: &'static str, arg: u64) -> SpanGuard {
    open_span(name, arg, None)
}

/// [`span`] that also records its duration (µs) into `hist` on close.
pub fn span_timed(name: &'static str, hist: Histogram) -> SpanGuard {
    open_span(name, 0, Some(hist))
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur_us = live.start.elapsed().as_micros() as u64;
        if let Some(hist) = live.timed {
            metrics::record(hist, dur_us);
        }
        THREAD_BUF.with(|b| {
            let mut b = b.borrow_mut();
            // Guards are scoped, so the top of the stack is this span; be
            // tolerant anyway (a mem::forget'd guard must not corrupt
            // parenting forever).
            if let Some(pos) = b.stack.iter().rposition(|&id| id == live.id) {
                b.stack.truncate(pos);
            }
            let thread = b.thread;
            b.closed.push(SpanEvent {
                name: live.name,
                id: live.id,
                parent: live.parent,
                thread,
                arg: live.arg,
                start_us: live.start_us,
                dur_us,
            });
            if b.closed.len() >= FLUSH_THRESHOLD {
                b.flush();
            }
        });
    }
}

/// Drain every closed span recorded so far: the calling thread's buffer
/// plus everything already flushed to the global sink (including buffers
/// of worker threads that have exited). Spans still *open*, and closed
/// spans buffered on other still-live threads, are not included.
pub fn take_spans() -> Vec<SpanEvent> {
    THREAD_BUF.with(|b| b.borrow_mut().flush());
    let mut sink = GLOBAL_SPANS.lock().expect("span sink poisoned");
    std::mem::take(&mut *sink)
}

/// Clear all recorded telemetry: counters, histograms, and drained spans.
/// Best-effort for spans still buffered on other live threads (the
/// pipeline's workers are scoped, so between runs none are alive). Meant
/// for benches and tests that want a clean slate between phases.
pub fn reset() {
    metrics::reset_storage();
    drop(take_spans());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global tracer state is process-wide; serialize the tests that
    /// toggle it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("noop");
            count(Counter::CacheHit, 3);
            record(Histogram::CompileMicros, 17);
        }
        assert!(take_spans().is_empty());
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.counter(Counter::CacheHit), 0);
    }

    #[test]
    fn spans_nest_and_carry_parent_links() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span_with("inner", 42);
            }
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 2);
        // Inner closes first.
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.arg, 42);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.thread, outer.thread);
        assert!(outer.dur_us >= inner.dur_us);
        assert!(outer.start_us <= inner.start_us);
    }

    #[test]
    fn worker_thread_spans_flush_on_exit() {
        let _g = lock();
        set_enabled(true);
        reset();
        let main_tid = std::thread::scope(|s| {
            let h = s.spawn(|| {
                let _s = span("worker");
            });
            h.join().expect("worker");
            let _m = span("main");
            0u64
        });
        let _ = main_tid;
        set_enabled(false);
        let spans = take_spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"worker"), "worker span lost: {names:?}");
        assert!(names.contains(&"main"));
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        let main = spans.iter().find(|s| s.name == "main").unwrap();
        assert_ne!(worker.thread, main.thread);
    }

    #[test]
    fn span_timed_feeds_its_histogram() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = span_timed("timed", Histogram::CompileMicros);
        }
        set_enabled(false);
        let snap = MetricsSnapshot::capture();
        let h = snap.histogram(Histogram::CompileMicros);
        assert_eq!(h.count, 1);
        let _ = take_spans();
    }

    #[test]
    fn span_cap_bounds_sink_and_counts_drops() {
        let _g = lock();
        set_enabled(true);
        reset();
        let before = MetricsSnapshot::capture();
        set_span_cap(3);
        for _ in 0..8 {
            let _s = span("capped");
            // Force a flush per span so the cap is exercised.
            THREAD_BUF.with(|b| b.borrow_mut().flush());
        }
        set_enabled(false);
        let spans = take_spans();
        assert_eq!(spans.len(), 3, "sink exceeded cap: {}", spans.len());
        let snap = MetricsSnapshot::capture().since(&before);
        assert_eq!(snap.counter(Counter::TraceSpansDropped), 5);
        set_span_cap(DEFAULT_SPAN_CAP);
        reset();
    }

    #[test]
    fn take_spans_drains_once() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = span("only");
        }
        set_enabled(false);
        assert_eq!(take_spans().len(), 1);
        assert!(take_spans().is_empty());
    }
}
