//! Chrome `trace_event` exporter.
//!
//! Serializes drained [`SpanEvent`]s into the JSON format understood by
//! `chrome://tracing`, Perfetto (ui.perfetto.dev), and Speedscope: one
//! `"ph":"X"` *complete* event per span, with microsecond `ts`/`dur`, the
//! recording thread as `tid`, and span id / parent / argument under
//! `args` so the hierarchy survives into the viewer.

use crate::SpanEvent;

/// Render `events` as a Chrome `trace_event` JSON document. The output is
/// self-contained (object form with `traceEvents`) and deterministic in
/// the order of `events`.
#[must_use]
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"scope\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
            escape(e.name),
            e.start_us,
            e.dur_us,
            e.thread,
            e.id,
        ));
        if let Some(parent) = e.parent {
            out.push_str(&format!(",\"parent\":{parent}"));
        }
        if e.arg != 0 {
            out.push_str(&format!(",\"arg\":{}", e.arg));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escape; span names are static identifiers, so this
/// only has to be correct, not fast.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, id: u64, parent: Option<u64>) -> SpanEvent {
        SpanEvent {
            name,
            id,
            parent,
            thread: 3,
            arg: if id == 2 { 7 } else { 0 },
            start_us: 10 * id,
            dur_us: 5,
        }
    }

    #[test]
    fn exports_complete_events() {
        let json = chrome_trace(&[ev("discover", 1, None), ev("compile", 2, Some(1))]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"discover\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":20,\"dur\":5"));
        assert!(json.contains("\"parent\":1"));
        assert!(json.contains("\"arg\":7"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(
            chrome_trace(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn escapes_control_and_quote() {
        let json = chrome_trace(&[ev("a\"b\\c", 1, None)]);
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
