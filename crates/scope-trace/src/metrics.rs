//! Typed counters and histograms backed by static atomic arrays.
//!
//! The registry is *closed*: [`Counter`] and [`Histogram`] enumerate every
//! metric the workspace records, so bumping one is an array index plus a
//! relaxed atomic op — no registration, no hashing, no locks — and a
//! [`MetricsSnapshot`] can enumerate the full state wait-free.
//!
//! Histograms use power-of-two buckets (`bucket b` holds values in
//! `[2^(b-1), 2^b)`, bucket 0 holds zero) with exact `count`/`sum` and
//! process-lifetime `min`/`max` gauges, giving approximate quantiles at a
//! fixed 65-slot footprint per histogram.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::enabled;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration order (the storage order).
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of variants (size of the backing atomic array).
            pub const COUNT: usize = $name::ALL.len();

            /// Stable machine-readable name, used in JSON exports.
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Monotonic event counters. Grouped by subsystem:
    /// `cache.*` (compile cache), `lint.*` (static gate verdicts),
    /// `funnel.*` (per-candidate fate inside `Pipeline::discover`),
    /// `exec.*` (simulator + fault layer), `bandit.*` (steer-learn).
    Counter {
        /// Compile-cache lookup that returned a stored plan.
        CacheHit => "cache.hit",
        /// Compile-cache lookup that missed.
        CacheMiss => "cache.miss",
        /// Plan inserted into the compile cache.
        CacheInsert => "cache.insert",
        /// Entry evicted from the compile cache (capacity).
        CacheEviction => "cache.eviction",
        /// Lint gate classified a candidate config as valid.
        LintValid => "lint.valid",
        /// Lint gate classified a candidate config as redundant (folded
        /// onto its canonical twin).
        LintRedundant => "lint.redundant",
        /// Lint gate classified a candidate config as dead (no effect).
        LintDead => "lint.dead",
        /// Lint gate classified a candidate config as statically invalid.
        LintInvalid => "lint.invalid",
        /// Candidate configs generated for a job (funnel entry).
        FunnelGenerated => "funnel.generated",
        /// Candidates rejected by the static lint gate before compiling.
        FunnelStaticRejected => "funnel.static_rejected",
        /// Candidates retired by the abstract-interpretation bounds gate:
        /// their whole-plan cost lower bound exceeded the execution
        /// threshold, so they were never compiled.
        FunnelBoundsPruned => "funnel.bounds_pruned",
        /// Candidates answered from the compile cache.
        FunnelCacheHit => "funnel.cache_hit",
        /// Candidates compiled (cache miss, compile attempted).
        FunnelCompiled => "funnel.compiled",
        /// Candidates whose compile failed (budget, no impl, panic, ...).
        FunnelCompileFailed => "funnel.compile_failed",
        /// Candidates vetoed by the plan-vetting guardrail.
        FunnelVetoed => "funnel.vetoed",
        /// Candidates dropped as duplicate plan signatures.
        FunnelDuplicate => "funnel.duplicate",
        /// Candidates that reached simulated execution.
        FunnelExecuted => "funnel.executed",
        /// Simulated runs completed (success or failure).
        ExecRuns => "exec.runs",
        /// Task retries scheduled by the fault layer.
        ExecRetries => "exec.retries",
        /// Straggler waves observed by the fault layer.
        ExecStragglers => "exec.stragglers",
        /// Speculative copies launched by the fault layer.
        ExecSpeculativeCopies => "exec.speculative_copies",
        /// Runs that ended in `JobOutcome::Failed`.
        ExecFailures => "exec.failures",
        /// Runs that ended in `JobOutcome::TimedOut`.
        ExecTimeouts => "exec.timeouts",
        /// `ThompsonGaussian::choose` saw no finite sample and fell back
        /// to its deterministic arm.
        BanditDegenerateChoice => "bandit.degenerate_choice",
        /// Jobs served a steered plan by the flight controller.
        FlightServedSteered => "flight.served_steered",
        /// Jobs matching a flighted hint but held on the default plan by
        /// the canary hash split.
        FlightHeldBack => "flight.held_back",
        /// Flight stage promotions (Candidate→Canary, ramp-ups, →Deployed).
        FlightPromotions => "flight.promotions",
        /// Flights auto-rolled back by the regression monitor.
        FlightRollbacks => "flight.rollbacks",
        /// Quarantined hints restored to Canary after clean probation.
        FlightRestorations => "flight.restorations",
        /// Per-group daily observations fed to regression monitors.
        FlightObservations => "flight.observations",
        /// Events appended to the flight journal (including torn/lost
        /// writes under an armed crash plan).
        FlightJournalEvents => "flight.journal_events",
        /// Journal/snapshot recoveries performed.
        FlightRecoveries => "flight.recoveries",
        /// Steering-service requests received (admitted or shed).
        ServeRequests => "serve.requests",
        /// Requests answered with a steered (non-default) config.
        ServeSteered => "serve.steered",
        /// Requests answered with the default config (any reason).
        ServeDefault => "serve.default",
        /// Requests shed by admission control (served default, not errored).
        ServeShed => "serve.shed",
        /// Requests whose decision budget expired (hard default fallback).
        ServeDeadlineExpired => "serve.deadline_expired",
        /// Circuit breaker transitions Closed→Open.
        ServeBreakerTrips => "serve.breaker_trips",
        /// Circuit breaker transitions Open→HalfOpen (probe windows).
        ServeBreakerHalfOpens => "serve.breaker_half_opens",
        /// Degraded-mode ladder transitions (either direction).
        ServeModeTransitions => "serve.mode_transitions",
        /// Serving-table snapshot publishes (copy-on-write swaps).
        ServeTableSwaps => "serve.table_swaps",
        /// Serving-table entries failing their checksum (torn reads
        /// detected and refused — served default instead).
        ServeTornReads => "serve.torn_reads",
        /// Serving-table entries retired (rollback / quarantine).
        ServeRetired => "serve.retired",
        /// Span events dropped because the global sink hit its cap.
        TraceSpansDropped => "trace.spans_dropped",
    }
}

metric_enum! {
    /// Value distributions. Units are part of the contract and encoded in
    /// the name suffix (`_us` microseconds, `_ms` milliseconds, bare =
    /// dimensionless count).
    Histogram {
        /// End-to-end `compile_with_budget` latency (µs).
        CompileMicros => "compile.total_us",
        /// Explore-phase latency (µs).
        ExploreMicros => "compile.explore_us",
        /// Implement-phase latency (µs).
        ImplementMicros => "compile.implement_us",
        /// Memo groups after compilation.
        MemoGroups => "compile.memo_groups",
        /// Memo expressions after compilation.
        MemoExprs => "compile.memo_exprs",
        /// Optimizer tasks executed per compile.
        CompileTasks => "compile.tasks",
        /// Compile-cache hit path latency (µs).
        CacheHitMicros => "cache.hit_us",
        /// Compile-cache miss path latency, including the compile (µs).
        CacheMissMicros => "cache.miss_us",
        /// Simulated job runtime (ms of simulated time).
        ExecSimulatedMillis => "exec.simulated_ms",
        /// Per-stage simulated runtime (ms of simulated time).
        StageSimulatedMillis => "exec.stage_simulated_ms",
        /// Candidates executed per job after dedup/top-k.
        CandidatesExecutedPerJob => "funnel.executed_per_job",
        /// Days a flight spent in its stage before auto-rollback.
        FlightDaysToRollback => "flight.days_to_rollback",
        /// Journal events replayed per recovery.
        FlightReplayedEvents => "flight.replayed_events",
        /// Per-request steering decision latency (µs, simulated).
        ServeDecisionMicros => "serve.decision_us",
        /// Serving-table entries published per snapshot swap.
        ServeTableEntries => "serve.table_entries",
        /// Requests admitted concurrently at admission time (inflight
        /// gauge sampled per request).
        ServeInflight => "serve.inflight",
    }
}

/// `bucket 0` = value 0; `bucket b (1..=64)` = values in `[2^(b-1), 2^b)`.
const N_BUCKETS: usize = 65;

#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

struct HistCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl HistCell {
    const fn new() -> HistCell {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; N_BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Number of independent counter lanes. A dense `[AtomicU64; COUNT]`
/// packs eight counters per cache line, so under parallel discovery every
/// thread's every bump bounces the same few lines between cores. Each
/// thread instead hashes to one of these lanes; lanes start on their own
/// cache line (`align(128)` guards against adjacent-line prefetching) and
/// reads sum across lanes. Histograms stay single-copy: they are recorded
/// only behind the `enabled()` gate, which is off on the hot path.
const N_STRIPES: usize = 8;

#[repr(align(128))]
struct CounterLane([AtomicU64; Counter::COUNT]);

impl CounterLane {
    const fn new() -> CounterLane {
        CounterLane([const { AtomicU64::new(0) }; Counter::COUNT])
    }
}

static COUNTERS: [CounterLane; N_STRIPES] = [const { CounterLane::new() }; N_STRIPES];
static HISTOGRAMS: [HistCell; Histogram::COUNT] = [const { HistCell::new() }; Histogram::COUNT];

/// Round-robin lane assignment: threads are spread evenly, and a thread's
/// lane never changes (so its counter lines stay core-local).
static NEXT_LANE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

thread_local! {
    static LANE: usize = NEXT_LANE.fetch_add(1, Ordering::Relaxed) % N_STRIPES;
}

#[inline]
fn lane() -> &'static CounterLane {
    &COUNTERS[LANE.with(|l| *l)]
}

/// Add `delta` to `counter`. No-op while the tracer is disabled.
#[inline]
pub fn count(counter: Counter, delta: u64) {
    if enabled() {
        lane().0[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }
}

/// Add `delta` to `counter` regardless of the enabled gate. Used for
/// bookkeeping that must stay accurate across enable/disable flips
/// (e.g. span-sink drops).
#[inline]
pub(crate) fn count_always(counter: Counter, delta: u64) {
    lane().0[counter as usize].fetch_add(delta, Ordering::Relaxed);
}

/// Current value of one counter, summed across lanes.
fn counter_total(c: Counter) -> u64 {
    COUNTERS
        .iter()
        .map(|lane| lane.0[c as usize].load(Ordering::Relaxed))
        .sum()
}

/// Record one observation of `value` into `hist`. No-op while the tracer
/// is disabled.
#[inline]
pub fn record(hist: Histogram, value: u64) {
    if !enabled() {
        return;
    }
    let cell = &HISTOGRAMS[hist as usize];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.sum.fetch_add(value, Ordering::Relaxed);
    cell.min.fetch_min(value, Ordering::Relaxed);
    cell.max.fetch_max(value, Ordering::Relaxed);
    cell.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
}

/// Zero all counters and histograms (used by [`crate::reset`]).
pub(crate) fn reset_storage() {
    for lane in &COUNTERS {
        for c in &lane.0 {
            c.store(0, Ordering::Relaxed);
        }
    }
    for h in &HISTOGRAMS {
        h.reset();
    }
}

/// A counter's value at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterValue {
    pub name: &'static str,
    pub value: u64,
}

/// A histogram's state at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub name: &'static str,
    /// Observations recorded.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty). Process-lifetime gauge: not
    /// adjusted by [`MetricsSnapshot::since`].
    pub min: u64,
    /// Largest observation (0 when empty). Process-lifetime gauge.
    pub max: u64,
    /// Power-of-two bucket counts (see module docs).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn empty(name: &'static str) -> HistogramSnapshot {
        HistogramSnapshot {
            name,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; N_BUCKETS],
        }
    }

    /// Exact mean of recorded observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) from the bucket counts: the
    /// geometric interior of the bucket holding the target rank, clamped
    /// to the observed `[min, max]` envelope. Exact for single-bucket
    /// histograms; within a factor of two otherwise.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let est = if b == 0 {
                    0u128
                } else {
                    ((1u128 << (b - 1)) + (1u128 << b)) / 2
                };
                let est = u64::try_from(est).unwrap_or(u64::MAX);
                return est.clamp(self.min, self.max.max(self.min));
            }
        }
        self.max
    }
}

/// Point-in-time copy of the full metric registry. [`Default`] is the
/// all-zero snapshot, so `report.metrics` is meaningful even when tracing
/// never ran.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// One entry per [`Counter`], in declaration order.
    pub counters: Vec<CounterValue>,
    /// One entry per [`Histogram`], in declaration order.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|c| CounterValue {
                    name: c.name(),
                    value: 0,
                })
                .collect(),
            histograms: Histogram::ALL
                .iter()
                .map(|h| HistogramSnapshot::empty(h.name()))
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Read the current value of every counter and histogram. Wait-free;
    /// concurrent recording may be partially visible (counts and sums are
    /// each individually consistent).
    #[must_use]
    pub fn capture() -> MetricsSnapshot {
        let counters = Counter::ALL
            .iter()
            .map(|&c| CounterValue {
                name: c.name(),
                value: counter_total(c),
            })
            .collect();
        let histograms = Histogram::ALL
            .iter()
            .map(|&h| {
                let cell = &HISTOGRAMS[h as usize];
                let count = cell.count.load(Ordering::Relaxed);
                let raw_min = cell.min.load(Ordering::Relaxed);
                HistogramSnapshot {
                    name: h.name(),
                    count,
                    sum: cell.sum.load(Ordering::Relaxed),
                    min: if raw_min == u64::MAX { 0 } else { raw_min },
                    max: cell.max.load(Ordering::Relaxed),
                    buckets: cell
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// The delta accumulated since `earlier` (counters, counts, sums, and
    /// buckets subtract; `min`/`max` stay process-lifetime gauges). Lets a
    /// run report only its own activity although the registry is global.
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .zip(&earlier.counters)
            .map(|(now, was)| CounterValue {
                name: now.name,
                value: now.value.saturating_sub(was.value),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .zip(&earlier.histograms)
            .map(|(now, was)| HistogramSnapshot {
                name: now.name,
                count: now.count.saturating_sub(was.count),
                sum: now.sum.saturating_sub(was.sum),
                min: now.min,
                max: now.max,
                buckets: now
                    .buckets
                    .iter()
                    .zip(&was.buckets)
                    .map(|(n, w)| n.saturating_sub(*w))
                    .collect(),
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Value of one counter in this snapshot.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].value
    }

    /// One histogram's state in this snapshot.
    #[must_use]
    pub fn histogram(&self, h: Histogram) -> &HistogramSnapshot {
        &self.histograms[h as usize]
    }

    /// True when nothing was recorded (all counters zero, all histograms
    /// empty) — e.g. tracing was never enabled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0) && self.histograms.iter().all(|h| h.count == 0)
    }

    /// Machine-readable JSON: every counter, plus per-histogram summaries
    /// (`count`/`sum`/`min`/`max`/`mean`/`p50`/`p95`). Raw buckets are
    /// omitted — consumers wanting the distribution use the Rust API.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", c.name, c.value));
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{}}}",
                h.name,
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counter_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Histogram::ALL.iter().map(|h| h.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }

    #[test]
    fn default_snapshot_is_empty_and_aligned() {
        let snap = MetricsSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.counters.len(), Counter::COUNT);
        assert_eq!(snap.histograms.len(), Histogram::COUNT);
        assert_eq!(snap.counter(Counter::BanditDegenerateChoice), 0);
        assert_eq!(snap.histogram(Histogram::MemoGroups).count, 0);
    }

    #[test]
    fn quantiles_track_buckets() {
        let mut h = HistogramSnapshot::empty("test");
        // 10 observations of exactly 100 (bucket 7: [64, 128)).
        h.count = 10;
        h.sum = 1000;
        h.min = 100;
        h.max = 100;
        h.buckets[bucket_of(100)] = 10;
        // Clamped to [min, max] ⇒ exact here.
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 100);
        assert!((h.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn since_subtracts_counts_and_buckets() {
        let mut earlier = MetricsSnapshot::default();
        let mut later = MetricsSnapshot::default();
        let ci = Counter::CacheHit as usize;
        earlier.counters[ci].value = 5;
        later.counters[ci].value = 12;
        let hi = Histogram::CompileMicros as usize;
        earlier.histograms[hi].count = 2;
        earlier.histograms[hi].sum = 20;
        earlier.histograms[hi].buckets[4] = 2;
        later.histograms[hi].count = 5;
        later.histograms[hi].sum = 80;
        later.histograms[hi].buckets[4] = 3;
        later.histograms[hi].buckets[5] = 2;
        later.histograms[hi].min = 9;
        later.histograms[hi].max = 31;

        let delta = later.since(&earlier);
        assert_eq!(delta.counter(Counter::CacheHit), 7);
        let h = delta.histogram(Histogram::CompileMicros);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 60);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[5], 2);
        assert_eq!(h.min, 9);
        assert_eq!(h.max, 31);
    }

    #[test]
    fn striped_counters_sum_across_threads() {
        // `count_always` bypasses the enabled gate, so this test does not
        // perturb (or depend on) the global tracer state beyond the one
        // counter it bumps — read via before/after totals.
        let before = counter_total(Counter::TraceSpansDropped);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        count_always(Counter::TraceSpansDropped, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        count_always(Counter::TraceSpansDropped, 1);
        let after = counter_total(Counter::TraceSpansDropped);
        assert_eq!(after - before, 4 * 1000 + 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let snap = MetricsSnapshot::default();
        let json = snap.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"cache.hit\":0"));
        assert!(json.contains("\"compile.total_us\":{\"count\":0"));
        assert!(json.ends_with("}}"));
    }
}
