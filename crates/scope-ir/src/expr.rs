//! Scalar expressions and predicates.
//!
//! Predicates are conjunctions of [`PredAtom`]s (`col <op> literal`). Each
//! atom optionally carries a [`PredId`] linking it to ground-truth
//! selectivity in the [`crate::catalog::TrueCatalog`]; the *optimizer* never
//! dereferences that id — it estimates selectivity from the atom's shape.

use std::hash::{Hash, Hasher};

use crate::ids::{ColId, PredId};

/// Comparison operators appearing in generated SCOPE scripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `col = literal`
    Eq,
    /// `col <> literal`
    Neq,
    /// `col < literal` / `col > literal` (one-sided range)
    Range,
    /// `col BETWEEN a AND b` (two-sided range)
    Between,
    /// `col LIKE pattern` (string containment)
    Like,
    /// `col IN (v1, .., vk)`
    InList,
}

impl CmpOp {
    /// All operators, for exhaustive iteration in tests and generators.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Neq,
        CmpOp::Range,
        CmpOp::Between,
        CmpOp::Like,
        CmpOp::InList,
    ];
}

/// A literal constant. Literals are *variable values* in the paper's sense:
/// they are erased when computing template hashes.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Literal {
    /// A stable hash of the literal's value (used for *plan* hashes, which —
    /// unlike template hashes — distinguish different constants).
    pub fn value_hash(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            Literal::Int(v) => {
                0u8.hash(&mut h);
                v.hash(&mut h);
            }
            Literal::Float(v) => {
                1u8.hash(&mut h);
                v.to_bits().hash(&mut h);
            }
            Literal::Str(s) => {
                2u8.hash(&mut h);
                s.hash(&mut h);
            }
        }
        h.finish()
    }
}

/// One `column <op> literal` comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct PredAtom {
    /// Column being filtered.
    pub col: ColId,
    /// Comparison operator.
    pub op: CmpOp,
    /// The constant side. Erased from template hashes.
    pub literal: Literal,
    /// Ground-truth handle; [`PredId::UNKNOWN`] if none registered.
    pub pred: PredId,
}

impl PredAtom {
    /// Build an atom with no registered ground truth.
    pub fn unknown(col: ColId, op: CmpOp, literal: Literal) -> Self {
        PredAtom {
            col,
            op,
            literal,
            pred: PredId::UNKNOWN,
        }
    }

    /// Hash of the atom's *shape* (column + operator, no literal, no truth
    /// id) — the part that survives template-hash erasure.
    pub fn shape_hash<H: Hasher>(&self, h: &mut H) {
        self.col.hash(h);
        self.op.hash(h);
    }
}

/// A conjunction of atoms. The empty conjunction is `TRUE`.
///
/// Atom *order* is semantically irrelevant but observable by the optimizer's
/// selectivity estimator (which applies exponential backoff in atom order,
/// like several production engines). Rewrite rules that reorder atoms
/// therefore change estimated — not true — selectivity, which is one of the
/// mechanisms behind the paper's Figure 4 paradox.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Predicate {
    /// The conjuncts, in the order the optimizer will estimate them.
    pub atoms: Vec<PredAtom>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn true_pred() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// A single-atom predicate.
    pub fn atom(atom: PredAtom) -> Self {
        Predicate { atoms: vec![atom] }
    }

    /// Whether this is the trivial `TRUE` predicate.
    pub fn is_true(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the conjunction is empty (i.e., `TRUE`).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjoin two predicates (used by filter-merging rewrite rules).
    pub fn and(mut self, other: Predicate) -> Predicate {
        self.atoms.extend(other.atoms);
        self
    }

    /// Hash of the predicate's shape: order-insensitive over atoms so that
    /// rewrites which merely reorder conjuncts do not change template
    /// identity.
    pub fn shape_hash<H: Hasher>(&self, h: &mut H) {
        let mut acc: u64 = 0;
        for a in &self.atoms {
            let mut ah = std::collections::hash_map::DefaultHasher::new();
            a.shape_hash(&mut ah);
            acc = acc.wrapping_add(std::hash::Hasher::finish(&ah));
        }
        acc.hash(h);
        self.atoms.len().hash(h);
    }

    /// Hash including literal values **and atom order** — used by the memo
    /// to distinguish reordered conjunctions (atom order changes the
    /// backoff estimate, so reordered filters are distinct expressions).
    pub fn ordered_value_hash<H: Hasher>(&self, h: &mut H) {
        for a in &self.atoms {
            a.shape_hash(h);
            a.literal.value_hash().hash(h);
        }
        self.atoms.len().hash(h);
    }

    /// Hash including literal values (order-insensitive), for plan identity.
    pub fn value_hash<H: Hasher>(&self, h: &mut H) {
        let mut acc: u64 = 0;
        for a in &self.atoms {
            let mut ah = std::collections::hash_map::DefaultHasher::new();
            a.shape_hash(&mut ah);
            a.literal.value_hash().hash(&mut ah);
            acc = acc.wrapping_add(std::hash::Hasher::finish(&ah));
        }
        acc.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn shape_of(p: &Predicate) -> u64 {
        let mut h = DefaultHasher::new();
        p.shape_hash(&mut h);
        h.finish()
    }

    fn value_of(p: &Predicate) -> u64 {
        let mut h = DefaultHasher::new();
        p.value_hash(&mut h);
        h.finish()
    }

    fn atom(col: u32, op: CmpOp, lit: i64) -> PredAtom {
        PredAtom::unknown(ColId(col), op, Literal::Int(lit))
    }

    #[test]
    fn true_predicate_is_empty() {
        let p = Predicate::true_pred();
        assert!(p.is_true());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn shape_hash_ignores_literals() {
        let p1 = Predicate::atom(atom(1, CmpOp::Eq, 10));
        let p2 = Predicate::atom(atom(1, CmpOp::Eq, 99));
        assert_eq!(shape_of(&p1), shape_of(&p2));
        let p3 = Predicate::atom(atom(2, CmpOp::Eq, 10));
        assert_ne!(shape_of(&p1), shape_of(&p3));
    }

    #[test]
    fn shape_hash_ignores_atom_order() {
        let a = atom(1, CmpOp::Eq, 10);
        let b = atom(2, CmpOp::Range, 5);
        let p1 = Predicate {
            atoms: vec![a.clone(), b.clone()],
        };
        let p2 = Predicate { atoms: vec![b, a] };
        assert_eq!(shape_of(&p1), shape_of(&p2));
    }

    #[test]
    fn value_hash_distinguishes_literals() {
        let p1 = Predicate::atom(atom(1, CmpOp::Eq, 10));
        let p2 = Predicate::atom(atom(1, CmpOp::Eq, 99));
        assert_ne!(value_of(&p1), value_of(&p2));
    }

    #[test]
    fn and_concatenates_conjuncts() {
        let p1 = Predicate::atom(atom(1, CmpOp::Eq, 10));
        let p2 = Predicate::atom(atom(2, CmpOp::Range, 3));
        let joined = p1.and(p2);
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn literal_hash_discriminates_types() {
        assert_ne!(
            Literal::Int(1).value_hash(),
            Literal::Str("1".to_string()).value_hash()
        );
        assert_ne!(
            Literal::Int(1).value_hash(),
            Literal::Float(1.0).value_hash()
        );
    }
}
