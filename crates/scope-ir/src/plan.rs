//! Arena-allocated logical plan DAGs.
//!
//! SCOPE scripts compile to DAGs of operators (shared subplans are common:
//! one cooked intermediate feeding several outputs). [`PlanGraph`] stores
//! nodes in an append-only arena with the invariant that **children always
//! have smaller ids than their parents**, so arena order is a topological
//! order and cycles are impossible by construction. Rewrites build fresh
//! graphs rather than mutating in place.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::ids::{NodeId, TemplateId};
use crate::ops::{LogicalOp, OpKind};

/// One operator node and its children (edges point *down* towards inputs).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    pub op: LogicalOp,
    pub children: Vec<NodeId>,
}

/// Errors raised when constructing invalid plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// Child id does not precede the node being added (would allow cycles).
    ForwardEdge { child: NodeId },
    /// Child id is out of bounds.
    UnknownChild { child: NodeId },
    /// Child count outside the operator's valid arity.
    BadArity {
        kind: OpKind,
        got: usize,
        min: usize,
        max: usize,
    },
    /// Graph has no root.
    NoRoot,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ForwardEdge { child } => write!(f, "forward edge to node {child}"),
            PlanError::UnknownChild { child } => write!(f, "unknown child node {child}"),
            PlanError::BadArity {
                kind,
                got,
                min,
                max,
            } => write!(
                f,
                "operator {} takes {min}..={max} children, got {got}",
                kind.name()
            ),
            PlanError::NoRoot => write!(f, "plan has no root"),
        }
    }
}

impl std::error::Error for PlanError {}

/// An append-only plan DAG.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PlanGraph {
    nodes: Vec<PlanNode>,
    root: Option<NodeId>,
}

impl PlanGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the arena (including any unreachable ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a node. Children must already exist (smaller ids) and match
    /// the operator's arity.
    pub fn add(&mut self, op: LogicalOp, children: Vec<NodeId>) -> Result<NodeId, PlanError> {
        let id = NodeId(self.nodes.len() as u32);
        let (min, max) = op.arity();
        if children.len() < min || children.len() > max {
            return Err(PlanError::BadArity {
                kind: op.kind(),
                got: children.len(),
                min,
                max,
            });
        }
        for &c in &children {
            if c.index() >= self.nodes.len() {
                return Err(if c >= id {
                    PlanError::ForwardEdge { child: c }
                } else {
                    PlanError::UnknownChild { child: c }
                });
            }
        }
        self.nodes.push(PlanNode { op, children });
        Ok(id)
    }

    /// Append a node, panicking on invalid structure. For generator and test
    /// code where structure is known-good.
    pub fn add_unchecked(&mut self, op: LogicalOp, children: Vec<NodeId>) -> NodeId {
        self.add(op, children).expect("valid plan node")
    }

    /// Mark `id` as the job's root (normally an `Output`).
    pub fn set_root(&mut self, id: NodeId) {
        debug_assert!(id.index() < self.nodes.len());
        self.root = Some(id);
    }

    /// The root node, if set.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id.index()]
    }

    /// Iterate `(id, node)` in arena (= topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &PlanNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Ids of nodes reachable from the root, in ascending (= topological,
    /// children-first) order.
    pub fn reachable(&self) -> Vec<NodeId> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        let mut mark = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut mark[id.index()], true) {
                continue;
            }
            stack.extend(self.node(id).children.iter().copied());
        }
        mark.iter()
            .enumerate()
            .filter_map(|(i, &m)| m.then_some(NodeId(i as u32)))
            .collect()
    }

    /// Validate the whole graph (arity, edge direction, root present).
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.root.is_none() {
            return Err(PlanError::NoRoot);
        }
        for (id, node) in self.iter() {
            let (min, max) = node.op.arity();
            if node.children.len() < min || node.children.len() > max {
                return Err(PlanError::BadArity {
                    kind: node.op.kind(),
                    got: node.children.len(),
                    min,
                    max,
                });
            }
            for &c in &node.children {
                if c >= id {
                    return Err(PlanError::ForwardEdge { child: c });
                }
            }
        }
        Ok(())
    }

    /// Per-node shape hashes (literal-erased, structure-recursive), indexed
    /// by node id. `shape[id]` combines the node's operator shape with its
    /// children's shape hashes in order.
    pub fn shape_hashes(&self) -> Vec<u64> {
        let mut shape = vec![0u64; self.nodes.len()];
        for (id, node) in self.iter() {
            let mut h = DefaultHasher::new();
            node.op.shape_hash(&mut h);
            for &c in &node.children {
                shape[c.index()].hash(&mut h);
            }
            shape[id.index()] = h.finish();
        }
        shape
    }

    /// The recurring-job template hash: the root's shape hash combined with
    /// the input stream names. Literal constants are erased; input names are
    /// retained (paper §3.1.1, §6.4).
    pub fn template_hash(&self, input_names: &[u64]) -> TemplateId {
        let shapes = self.shape_hashes();
        let mut h = DefaultHasher::new();
        if let Some(root) = self.root {
            shapes[root.index()].hash(&mut h);
        }
        for name in input_names {
            name.hash(&mut h);
        }
        TemplateId(h.finish())
    }

    /// Full plan hash including literal values — distinguishes two instances
    /// of the same template with different constants.
    pub fn plan_hash(&self) -> u64 {
        let mut value = vec![0u64; self.nodes.len()];
        for (id, node) in self.iter() {
            let mut h = DefaultHasher::new();
            node.op.value_hash(&mut h);
            for &c in &node.children {
                value[c.index()].hash(&mut h);
            }
            value[id.index()] = h.finish();
        }
        self.root.map(|r| value[r.index()]).unwrap_or(0)
    }

    /// Apply `f` to every operator in the arena (used by the workload
    /// generator to refresh literal values per instantiated job while
    /// preserving structure and template identity).
    pub fn map_ops<F: FnMut(&mut LogicalOp)>(&mut self, mut f: F) {
        for node in &mut self.nodes {
            f(&mut node.op);
        }
    }

    /// Count reachable nodes per [`OpKind`].
    pub fn op_counts(&self) -> [u32; OpKind::COUNT] {
        let mut counts = [0u32; OpKind::COUNT];
        for id in self.reachable() {
            counts[self.node(id).op.kind() as usize] += 1;
        }
        counts
    }

    /// Number of reachable operator nodes.
    pub fn size(&self) -> usize {
        self.reachable().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Literal, PredAtom, Predicate};
    use crate::ids::{ColId, TableId};
    use crate::ops::JoinKind;

    fn filter(col: u32, lit: i64) -> LogicalOp {
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom::unknown(ColId(col), CmpOp::Eq, Literal::Int(lit))),
        }
    }

    /// scan -> filter -> output
    fn linear_plan(lit: i64) -> PlanGraph {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = g.add_unchecked(filter(0, lit), vec![s]);
        let o = g.add_unchecked(LogicalOp::Output { stream: 7 }, vec![f]);
        g.set_root(o);
        g
    }

    #[test]
    fn build_and_validate_linear_plan() {
        let g = linear_plan(5);
        assert_eq!(g.len(), 3);
        assert!(g.validate().is_ok());
        assert_eq!(g.reachable().len(), 3);
    }

    #[test]
    fn arity_is_enforced() {
        let mut g = PlanGraph::new();
        let s = g.add(LogicalOp::Get { table: TableId(0) }, vec![]).unwrap();
        let err = g
            .add(
                LogicalOp::Join {
                    kind: JoinKind::Inner,
                    keys: vec![],
                },
                vec![s],
            )
            .unwrap_err();
        assert!(matches!(err, PlanError::BadArity { got: 1, .. }));
    }

    #[test]
    fn forward_edges_are_rejected() {
        let mut g = PlanGraph::new();
        let err = g.add(filter(0, 1), vec![NodeId(5)]).unwrap_err();
        assert!(matches!(err, PlanError::ForwardEdge { .. }));
    }

    #[test]
    fn template_hash_erases_literals() {
        let g1 = linear_plan(5);
        let g2 = linear_plan(99);
        assert_eq!(g1.template_hash(&[1]), g2.template_hash(&[1]));
        assert_ne!(g1.plan_hash(), g2.plan_hash());
    }

    #[test]
    fn template_hash_includes_input_names() {
        let g = linear_plan(5);
        assert_ne!(g.template_hash(&[1]), g.template_hash(&[2]));
    }

    #[test]
    fn shared_subplan_counted_once() {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = g.add_unchecked(filter(0, 1), vec![s]);
        // Two branches share `f`.
        let t1 = g.add_unchecked(LogicalOp::Top { k: 10 }, vec![f]);
        let t2 = g.add_unchecked(
            LogicalOp::Sort {
                keys: vec![ColId(0)],
            },
            vec![f],
        );
        let u = g.add_unchecked(LogicalOp::UnionAll, vec![t1, t2]);
        let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![u]);
        g.set_root(o);
        assert!(g.validate().is_ok());
        assert_eq!(g.size(), 6);
        assert_eq!(g.op_counts()[OpKind::Get as usize], 1);
    }

    #[test]
    fn unreachable_nodes_are_excluded_from_size() {
        let mut g = linear_plan(5);
        // Garbage node not connected to the root.
        g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.size(), 3);
    }

    #[test]
    fn reachable_is_children_first() {
        let g = linear_plan(5);
        let order = g.reachable();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in g.iter() {
            for &c in &node.children {
                assert!(pos(c) < pos(id));
            }
        }
    }
}
