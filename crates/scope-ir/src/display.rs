//! Human-readable rendering of plans: an indented tree view (with DAG
//! sharing annotated) and Graphviz DOT export.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::ids::NodeId;
use crate::ops::LogicalOp;
use crate::plan::PlanGraph;

fn op_label(op: &LogicalOp) -> String {
    match op {
        LogicalOp::Get { table } => format!("Get(t{table})"),
        LogicalOp::RangeGet { table, pushed } => {
            if pushed.is_true() {
                format!("RangeGet(t{table})")
            } else {
                format!("RangeGet(t{table}, {} pushed preds)", pushed.len())
            }
        }
        LogicalOp::Select { predicate } => format!("Select({} preds)", predicate.len()),
        LogicalOp::Filter { predicate } => format!("Filter({} preds)", predicate.len()),
        LogicalOp::Project { cols, computed } => {
            format!("Project({} cols, {computed} computed)", cols.len())
        }
        LogicalOp::Join { kind, keys } => format!("Join({kind:?}, {} keys)", keys.len()),
        LogicalOp::GroupBy {
            keys,
            aggs,
            partial,
        } => format!(
            "GroupBy({} keys, {} aggs{})",
            keys.len(),
            aggs.len(),
            if *partial { ", partial" } else { "" }
        ),
        LogicalOp::UnionAll => "UnionAll".to_string(),
        LogicalOp::VirtualDataset => "VirtualDataset".to_string(),
        LogicalOp::Top { k } => format!("Top({k})"),
        LogicalOp::Sort { keys } => format!("Sort({} keys)", keys.len()),
        LogicalOp::Window { keys } => format!("Window({} keys)", keys.len()),
        LogicalOp::Process { udo } => format!("Process(udo{udo})"),
        LogicalOp::Output { stream } => format!("Output({stream:08x})"),
    }
}

/// Render the plan as an indented tree rooted at the plan root. Shared
/// subplans are expanded once and referenced as `^N` afterwards.
pub fn render_tree(plan: &PlanGraph) -> String {
    let mut out = String::new();
    let Some(root) = plan.root() else {
        return "<empty plan>".to_string();
    };
    let mut seen = HashSet::new();
    render_rec(plan, root, 0, &mut seen, &mut out);
    out
}

fn render_rec(
    plan: &PlanGraph,
    id: NodeId,
    depth: usize,
    seen: &mut HashSet<NodeId>,
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    if !seen.insert(id) {
        let _ = writeln!(out, "^{id}");
        return;
    }
    let node = plan.node(id);
    let _ = writeln!(out, "[{id}] {}", op_label(&node.op));
    for &c in &node.children {
        render_rec(plan, c, depth + 1, seen, out);
    }
}

/// Export the reachable part of the plan as Graphviz DOT.
pub fn to_dot(plan: &PlanGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=BT;");
    for id in plan.reachable() {
        let node = plan.node(id);
        let _ = writeln!(out, "  n{id} [label=\"{}\"];", op_label(&node.op));
        for &c in &node.children {
            let _ = writeln!(out, "  n{c} -> n{id};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;

    fn shared_plan() -> PlanGraph {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let t = g.add_unchecked(LogicalOp::Top { k: 5 }, vec![s]);
        let u = g.add_unchecked(LogicalOp::UnionAll, vec![t, t]);
        let o = g.add_unchecked(LogicalOp::Output { stream: 1 }, vec![u]);
        g.set_root(o);
        g
    }

    #[test]
    fn tree_render_marks_shared_nodes() {
        let text = render_tree(&shared_plan());
        assert!(text.contains("UnionAll"));
        assert!(
            text.contains("^1"),
            "shared node should render as backref:\n{text}"
        );
    }

    #[test]
    fn dot_contains_all_edges() {
        let dot = to_dot(&shared_plan(), "t");
        assert!(dot.starts_with("digraph"));
        // UnionAll has two edges from the same child.
        assert_eq!(dot.matches("n1 -> n2").count(), 2);
    }

    #[test]
    fn empty_plan_renders_placeholder() {
        assert_eq!(render_tree(&PlanGraph::new()), "<empty plan>");
    }
}
