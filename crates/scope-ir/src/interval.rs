//! Closed, finite, non-negative intervals `[lo, hi]` used by the
//! abstract-interpretation bounds analysis (`scope-lint::bounds`).
//!
//! The invariants are deliberately strict — every constructor and every
//! arithmetic operation preserves them — so downstream consumers (the
//! discovery bounds gate, the branch-and-bound search pruner, the estimator
//! audit) never have to re-check for NaN, infinities, or inverted endpoints:
//!
//! 1. `lo` and `hi` are finite,
//! 2. `0 ≤ lo ≤ hi`.
//!
//! Arithmetic follows standard interval semantics restricted to the
//! non-negative orthant, which is all the plan quantities (rows, bytes,
//! cost seconds) ever need: for monotone operations the endpoint images are
//! the interval endpoints, so `add`/`mul`/`min`/`max` are exact (no
//! sub-distributive widening is required).

/// A closed interval `[lo, hi]` with `0 ≤ lo ≤ hi`, both finite.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Largest magnitude either endpoint may take. Large enough that no
    /// realistic plan quantity (rows, bytes, cost) gets clamped in practice,
    /// small enough that sums and products of a plan's worth of intervals
    /// stay comfortably inside `f64` range.
    pub const MAX_MAG: f64 = 1e300;

    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// Construct `[lo, hi]`, sanitising the endpoints into the invariant:
    /// NaN becomes the identity for that endpoint (`0` for `lo`,
    /// [`Self::MAX_MAG`] for `hi`), infinities and out-of-range magnitudes
    /// are clamped, and the pair is reordered if inverted. Sanitising (rather
    /// than panicking) keeps the analysis *total*: a garbage input widens the
    /// interval, which is sound, instead of aborting the pipeline.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Interval {
        let lo = if lo.is_nan() {
            0.0
        } else {
            lo.clamp(0.0, Self::MAX_MAG)
        };
        let hi = if hi.is_nan() {
            Self::MAX_MAG
        } else {
            hi.clamp(0.0, Self::MAX_MAG)
        };
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Interval { lo, hi }
    }

    /// The degenerate interval `[x, x]` (sanitised like [`Self::new`]).
    #[must_use]
    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    /// Lower endpoint. Always finite and `≥ 0`.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint. Always finite and `≥ self.lo()`.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi − lo` of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `x` lies inside `[lo, hi]` (inclusive). NaN is never
    /// contained.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// Whether `self` is a subset of `other` — i.e. `other` is at least as
    /// wide on both sides. This is the partial order proptests use to check
    /// that widening joins only ever grow intervals.
    #[must_use]
    pub fn subset_of(&self, other: &Interval) -> bool {
        other.lo <= self.lo && self.hi <= other.hi
    }

    /// Interval sum: `[a.lo + b.lo, a.hi + b.hi]`.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Interval {
        Interval::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Interval product. Exact on the non-negative orthant:
    /// `[a.lo · b.lo, a.hi · b.hi]`.
    #[must_use]
    pub fn mul(&self, other: &Interval) -> Interval {
        Interval::new(self.lo * other.lo, self.hi * other.hi)
    }

    /// Scale both endpoints by a non-negative factor.
    #[must_use]
    pub fn scale(&self, k: f64) -> Interval {
        let k = if k.is_nan() { 0.0 } else { k.max(0.0) };
        Interval::new(self.lo * k, self.hi * k)
    }

    /// Pointwise minimum: `[min(a.lo, b.lo), min(a.hi, b.hi)]`.
    #[must_use]
    pub fn min(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Pointwise maximum: `[max(a.lo, b.lo), max(a.hi, b.hi)]`.
    #[must_use]
    pub fn max(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Lattice join (interval hull): the smallest interval containing both.
    /// This is the *widening* join of the analysis — monotone in both
    /// arguments, and both arguments are subsets of the result.
    #[must_use]
    pub fn join(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Clamp both endpoints into `[lo_min, hi_max]` (e.g. a row floor of 1).
    #[must_use]
    pub fn clamp(&self, lo_min: f64, hi_max: f64) -> Interval {
        Interval::new(self.lo.clamp(lo_min, hi_max), self.hi.clamp(lo_min, hi_max))
    }

    /// Raise the lower endpoint to at least `floor` (and the upper endpoint
    /// with it, preserving `lo ≤ hi`).
    #[must_use]
    pub fn floor_at(&self, floor: f64) -> Interval {
        Interval::new(self.lo.max(floor), self.hi.max(floor))
    }

    /// Debug-check the invariants. Release builds compile this to nothing.
    #[inline]
    pub fn debug_check(&self) {
        debug_assert!(
            self.lo.is_finite() && self.hi.is_finite(),
            "interval endpoints must be finite: [{}, {}]",
            self.lo,
            self.hi
        );
        debug_assert!(
            self.lo >= 0.0 && self.lo <= self.hi,
            "interval must satisfy 0 <= lo <= hi: [{}, {}]",
            self.lo,
            self.hi
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sanitises_garbage() {
        let i = Interval::new(f64::NAN, f64::NAN);
        i.debug_check();
        assert_eq!(i.lo(), 0.0);
        assert_eq!(i.hi(), Interval::MAX_MAG);

        let i = Interval::new(f64::INFINITY, -3.0);
        i.debug_check();
        assert_eq!(i.lo(), 0.0);
        assert_eq!(i.hi(), Interval::MAX_MAG);

        let i = Interval::new(5.0, 2.0);
        assert_eq!((i.lo(), i.hi()), (2.0, 5.0));
    }

    #[test]
    fn arithmetic_is_exact_on_points() {
        let a = Interval::point(3.0);
        let b = Interval::point(4.0);
        assert_eq!(a.add(&b), Interval::point(7.0));
        assert_eq!(a.mul(&b), Interval::point(12.0));
        assert_eq!(a.scale(2.0), Interval::point(6.0));
        assert_eq!(a.min(&b), a);
        assert_eq!(a.max(&b), b);
    }

    #[test]
    fn join_is_an_upper_bound() {
        let a = Interval::new(1.0, 4.0);
        let b = Interval::new(2.0, 9.0);
        let j = a.join(&b);
        assert!(a.subset_of(&j) && b.subset_of(&j));
        assert_eq!((j.lo(), j.hi()), (1.0, 9.0));
    }

    #[test]
    fn contains_rejects_nan() {
        let a = Interval::new(0.0, 10.0);
        assert!(a.contains(0.0) && a.contains(10.0) && a.contains(5.0));
        assert!(!a.contains(-0.1) && !a.contains(10.1) && !a.contains(f64::NAN));
    }

    #[test]
    fn floor_and_clamp_preserve_order() {
        let a = Interval::new(0.2, 0.4);
        let f = a.floor_at(1.0);
        assert_eq!((f.lo(), f.hi()), (1.0, 1.0));
        let c = Interval::new(0.0, 100.0).clamp(1.0, 10.0);
        assert_eq!((c.lo(), c.hi()), (1.0, 10.0));
    }
}
