//! Logical operators of the SCOPE-like engine.
//!
//! The operator set mirrors what the paper describes: relational operators,
//! SCOPE's n-ary `UNION ALL` and `VirtualDataset`, and opaque user-defined
//! `Process` operators. Two *pre-normalization* forms exist (`Get`,
//! `Select`); the required normalization rules `GetToRange` and
//! `SelectToFilter` rewrite them into `RangeGet` / `Filter` before cost-based
//! exploration, exactly as Table 2 of the paper lists them among the
//! required rules.

use std::hash::{Hash, Hasher};

use crate::expr::Predicate;
use crate::ids::{ColId, TableId, UdoId};

/// Join kinds supported by generated scripts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    Semi,
}

/// Aggregate functions. The column argument (if any) is part of the
/// template-stable shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum(ColId),
    Min(ColId),
    Max(ColId),
    Avg(ColId),
}

/// A logical operator. Children are stored in the owning
/// [`crate::plan::PlanNode`], not in the operator itself.
#[derive(Clone, Debug, PartialEq)]
pub enum LogicalOp {
    /// Raw input scan as written in the script (pre-normalization).
    Get { table: TableId },
    /// Normalized scan produced by the required `GetToRange` rule. May carry
    /// a predicate pushed into the scan by pushdown rules.
    RangeGet { table: TableId, pushed: Predicate },
    /// Raw filter as written in the script (pre-normalization).
    Select { predicate: Predicate },
    /// Normalized filter produced by the required `SelectToFilter` rule.
    Filter { predicate: Predicate },
    /// Column projection; `computed` counts computed expressions (each adds
    /// CPU cost proportional to input rows).
    Project { cols: Vec<ColId>, computed: u8 },
    /// Equi-join on `keys[i].0 = keys[i].1`.
    Join {
        kind: JoinKind,
        keys: Vec<(ColId, ColId)>,
    },
    /// Grouped aggregation. `partial` marks the local/pre-aggregation half
    /// produced by aggregation-splitting rules.
    GroupBy {
        keys: Vec<ColId>,
        aggs: Vec<AggFunc>,
        partial: bool,
    },
    /// SCOPE's n-ary union-all.
    UnionAll,
    /// SCOPE-specific materialization of its inputs as a virtual dataset
    /// (the target of the `UnionAllToVirtualDataset` rule family).
    VirtualDataset,
    /// Top-k.
    Top { k: u64 },
    /// Total sort on `keys`.
    Sort { keys: Vec<ColId> },
    /// Windowed computation partitioned by `keys`.
    Window { keys: Vec<ColId> },
    /// Opaque user-defined operator (C#/Python in real SCOPE). The true
    /// per-row cost and selectivity live in the true catalog; the optimizer
    /// sees only a global default.
    Process { udo: UdoId },
    /// Job output sink. `stream` is the hash of the output stream name.
    Output { stream: u64 },
}

/// A cheap discriminant for pattern matching, featurization slots, and
/// per-operator statistics. Keep in sync with [`LogicalOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum OpKind {
    Get = 0,
    RangeGet = 1,
    Select = 2,
    Filter = 3,
    Project = 4,
    Join = 5,
    GroupBy = 6,
    UnionAll = 7,
    VirtualDataset = 8,
    Top = 9,
    Sort = 10,
    Window = 11,
    Process = 12,
    Output = 13,
}

impl OpKind {
    /// Total number of operator kinds (size of featurization slot table).
    pub const COUNT: usize = 14;

    /// All kinds, in discriminant order.
    pub const ALL: [OpKind; Self::COUNT] = [
        OpKind::Get,
        OpKind::RangeGet,
        OpKind::Select,
        OpKind::Filter,
        OpKind::Project,
        OpKind::Join,
        OpKind::GroupBy,
        OpKind::UnionAll,
        OpKind::VirtualDataset,
        OpKind::Top,
        OpKind::Sort,
        OpKind::Window,
        OpKind::Process,
        OpKind::Output,
    ];

    /// Stable short name for display.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "Get",
            OpKind::RangeGet => "RangeGet",
            OpKind::Select => "Select",
            OpKind::Filter => "Filter",
            OpKind::Project => "Project",
            OpKind::Join => "Join",
            OpKind::GroupBy => "GroupBy",
            OpKind::UnionAll => "UnionAll",
            OpKind::VirtualDataset => "VirtualDataset",
            OpKind::Top => "Top",
            OpKind::Sort => "Sort",
            OpKind::Window => "Window",
            OpKind::Process => "Process",
            OpKind::Output => "Output",
        }
    }
}

impl LogicalOp {
    /// The operator's kind discriminant.
    pub fn kind(&self) -> OpKind {
        match self {
            LogicalOp::Get { .. } => OpKind::Get,
            LogicalOp::RangeGet { .. } => OpKind::RangeGet,
            LogicalOp::Select { .. } => OpKind::Select,
            LogicalOp::Filter { .. } => OpKind::Filter,
            LogicalOp::Project { .. } => OpKind::Project,
            LogicalOp::Join { .. } => OpKind::Join,
            LogicalOp::GroupBy { .. } => OpKind::GroupBy,
            LogicalOp::UnionAll => OpKind::UnionAll,
            LogicalOp::VirtualDataset => OpKind::VirtualDataset,
            LogicalOp::Top { .. } => OpKind::Top,
            LogicalOp::Sort { .. } => OpKind::Sort,
            LogicalOp::Window { .. } => OpKind::Window,
            LogicalOp::Process { .. } => OpKind::Process,
            LogicalOp::Output { .. } => OpKind::Output,
        }
    }

    /// Valid child-count range `(min, max)` for this operator.
    /// `max == usize::MAX` means unbounded (n-ary union / virtual dataset).
    pub fn arity(&self) -> (usize, usize) {
        match self.kind() {
            OpKind::Get | OpKind::RangeGet => (0, 0),
            OpKind::Join => (2, 2),
            OpKind::UnionAll | OpKind::VirtualDataset => (2, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Hash the *template-stable shape* of the operator: everything except
    /// literal constants. Used by template hashing and memo hash-consing of
    /// shapes.
    pub fn shape_hash<H: Hasher>(&self, h: &mut H) {
        (self.kind() as u8).hash(h);
        match self {
            LogicalOp::Get { table } | LogicalOp::RangeGet { table, .. } => table.hash(h),
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                predicate.shape_hash(h);
            }
            LogicalOp::Project { cols, computed } => {
                cols.hash(h);
                computed.hash(h);
            }
            LogicalOp::Join { kind, keys } => {
                kind.hash(h);
                keys.hash(h);
            }
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } => {
                keys.hash(h);
                aggs.hash(h);
                partial.hash(h);
            }
            LogicalOp::UnionAll | LogicalOp::VirtualDataset => {}
            LogicalOp::Top { k } => k.hash(h),
            LogicalOp::Sort { keys } | LogicalOp::Window { keys } => keys.hash(h),
            LogicalOp::Process { udo } => udo.hash(h),
            LogicalOp::Output { stream } => stream.hash(h),
        }
        // RangeGet's pushed predicate shape participates too: two scans with
        // different pushed filters are different shapes.
        if let LogicalOp::RangeGet { pushed, .. } = self {
            pushed.shape_hash(h);
        }
    }

    /// Hash the full operator including literal values (plan identity).
    pub fn value_hash<H: Hasher>(&self, h: &mut H) {
        self.shape_hash(h);
        match self {
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                predicate.value_hash(h);
            }
            LogicalOp::RangeGet { pushed, .. } => pushed.value_hash(h),
            _ => {}
        }
    }

    /// Hash for memo identity: like [`Self::value_hash`] but sensitive to
    /// predicate-atom *order*, so reordering rewrites produce distinct memo
    /// expressions (their estimates differ under backoff).
    pub fn memo_hash<H: Hasher>(&self, h: &mut H) {
        self.shape_hash(h);
        match self {
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                predicate.ordered_value_hash(h);
            }
            LogicalOp::RangeGet { pushed, .. } => pushed.ordered_value_hash(h),
            _ => {}
        }
    }

    /// The predicate carried by this operator, if any.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => Some(predicate),
            LogicalOp::RangeGet { pushed, .. } if !pushed.is_true() => Some(pushed),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Literal, PredAtom};
    use std::collections::hash_map::DefaultHasher;

    fn shape_of(op: &LogicalOp) -> u64 {
        let mut h = DefaultHasher::new();
        op.shape_hash(&mut h);
        h.finish()
    }

    #[test]
    fn kind_roundtrip_covers_all_ops() {
        // Every OpKind::ALL entry is distinct and names are unique.
        let mut names: Vec<&str> = OpKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OpKind::COUNT);
    }

    #[test]
    fn arity_constraints() {
        assert_eq!(LogicalOp::Get { table: TableId(0) }.arity(), (0, 0));
        assert_eq!(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![],
            }
            .arity(),
            (2, 2)
        );
        assert_eq!(LogicalOp::UnionAll.arity(), (2, usize::MAX));
        assert_eq!(LogicalOp::Top { k: 5 }.arity(), (1, 1));
    }

    #[test]
    fn shape_hash_erases_literals_but_not_structure() {
        let f1 = LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(1), CmpOp::Eq, Literal::Int(3))),
        };
        let f2 = LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(1), CmpOp::Eq, Literal::Int(42))),
        };
        assert_eq!(shape_of(&f1), shape_of(&f2));
        let f3 = LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(2), CmpOp::Eq, Literal::Int(3))),
        };
        assert_ne!(shape_of(&f1), shape_of(&f3));
    }

    #[test]
    fn select_and_filter_have_different_shapes() {
        let p = Predicate::atom(PredAtom::unknown(ColId(1), CmpOp::Eq, Literal::Int(3)));
        let s = LogicalOp::Select {
            predicate: p.clone(),
        };
        let f = LogicalOp::Filter { predicate: p };
        assert_ne!(shape_of(&s), shape_of(&f));
    }

    #[test]
    fn pushed_predicate_participates_in_scan_shape() {
        let bare = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        };
        let pushed = LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::atom(PredAtom::unknown(ColId(1), CmpOp::Eq, Literal::Int(3))),
        };
        assert_ne!(shape_of(&bare), shape_of(&pushed));
    }
}
