//! Newtype identifiers used across the IR.
//!
//! All identifiers are plain `u32` indexes into arenas (plan nodes, catalog
//! tables, columns, predicates) except [`TemplateId`] and [`JobId`], which
//! are 64-bit hashes/counters.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// Index into the backing arena.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A node in a [`crate::plan::PlanGraph`] arena.
    NodeId,
    u32
);
id_type!(
    /// A base table (input stream) in a catalog.
    TableId,
    u32
);
id_type!(
    /// A column in a catalog's global column namespace.
    ColId,
    u32
);
id_type!(
    /// A join-key domain: two columns may be joined only when they share a
    /// domain, which also determines the true join fanout.
    DomainId,
    u32
);
id_type!(
    /// A user-defined operator registered in the catalog.
    UdoId,
    u32
);

/// A predicate atom's identity in the true catalog.
///
/// The workload generator assigns every generated atom a `PredId` pointing at
/// its true selectivity (and, possibly, correlation group). Hand-built plans
/// may use [`PredId::UNKNOWN`], in which case the simulator falls back to the
/// same shape heuristic the optimizer uses — i.e., no estimation error.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl PredId {
    /// Sentinel for predicates with no registered ground truth.
    pub const UNKNOWN: PredId = PredId(u32::MAX);

    /// Whether this predicate has registered ground truth.
    #[inline]
    pub fn is_known(self) -> bool {
        self != Self::UNKNOWN
    }

    /// Index into the true catalog's predicate table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_known() {
            write!(f, "PredId({})", self.0)
        } else {
            write!(f, "PredId(?)")
        }
    }
}

/// A recurring-job template identifier: the structural hash of the query
/// graph with all variable values (predicate literals) erased, but input
/// stream names retained — matching the paper's definition in §3.1.1/§6.4.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TemplateId(pub u64);

impl fmt::Debug for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TemplateId({:016x})", self.0)
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A unique job identifier assigned by the workload generator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JobId({})", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_ordering() {
        let a = NodeId(3);
        let b = NodeId(7);
        assert!(a < b);
        assert_eq!(a.index(), 3);
        assert_eq!(format!("{a:?}"), "NodeId(3)");
        assert_eq!(format!("{a}"), "3");
    }

    #[test]
    fn unknown_pred_is_not_known() {
        assert!(!PredId::UNKNOWN.is_known());
        assert!(PredId(0).is_known());
        assert_eq!(format!("{:?}", PredId::UNKNOWN), "PredId(?)");
    }

    #[test]
    fn template_id_formats_as_hex() {
        let t = TemplateId(0xdead_beef);
        assert_eq!(format!("{t}"), "00000000deadbeef");
    }
}
