//! Small numeric helpers shared across crates: summary statistics and
//! distribution sampling for the simulators and experiment harnesses,
//! plus the NaN-tolerant float comparators every ranking site uses.

use std::cmp::Ordering;

use rand::Rng;

/// Total ascending order on `f64` with **every NaN sorted after every
/// number** (and NaNs of either sign equal to each other).
///
/// This is the comparator for `min_by` and ascending sorts over values
/// that *should* be finite but might not be (a faulted runtime, a
/// degenerate model prediction): a NaN never wins a minimum, never
/// panics, and lands at the tail of a sorted list. Unlike bare
/// [`f64::total_cmp`], `-NaN` cannot sneak below `-inf`.
pub fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Total ascending order on `f64` with **every NaN sorted before every
/// number** — the `max_by` twin of [`nan_last_cmp`]: a NaN never wins a
/// maximum. For a *descending* NaN-last sort, use
/// `sort_by(|a, b| nan_first_cmp(b.key, a.key))`.
pub fn nan_first_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Percentile via linear interpolation on sorted copies. `p` in `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| nan_last_cmp(*a, *b));
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Sample a lognormal variate with the given parameters of the *underlying*
/// normal distribution, via Box–Muller.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (mu + sigma * z).exp()
}

/// Sample an index from unnormalized weights. Panics on empty or all-zero
/// weights.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted_index needs positive total weight");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Percentage change from `base` to `new` (negative = improvement when the
/// metric is a cost). Returns `0` for a zero base.
pub fn pct_change(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (new - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let xs = [9.0, 1.0, 5.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn lognormal_is_positive_and_centered() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..4000).map(|_| lognormal(&mut rng, 0.0, 0.25)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        // Median of lognormal(mu=0) is 1.
        let m = median(&samples);
        assert!((m - 1.0).abs() < 0.05, "median {m}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[weighted_index(&mut rng, &[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn nan_comparators_order_nan_deterministically() {
        let mut xs = [2.0, f64::NAN, -1.0, f64::INFINITY, -f64::NAN, 0.0];
        xs.sort_by(|a, b| nan_last_cmp(*a, *b));
        assert_eq!(&xs[..4], &[-1.0, 0.0, 2.0, f64::INFINITY]);
        assert!(xs[4].is_nan() && xs[5].is_nan());

        let mut ys = [2.0, f64::NAN, -1.0, -f64::NAN];
        ys.sort_by(|a, b| nan_first_cmp(*a, *b));
        assert!(ys[0].is_nan() && ys[1].is_nan());
        assert_eq!(&ys[2..], &[-1.0, 2.0]);

        // min_by under nan_last_cmp never selects NaN; max_by under
        // nan_first_cmp never selects NaN.
        let vals = [f64::NAN, 3.0, 1.0];
        let min = vals
            .iter()
            .copied()
            .min_by(|a, b| nan_last_cmp(*a, *b))
            .unwrap();
        assert_eq!(min, 1.0);
        let max = vals
            .iter()
            .copied()
            .max_by(|a, b| nan_first_cmp(*a, *b))
            .unwrap();
        assert_eq!(max, 3.0);
    }

    #[test]
    fn percentile_tolerates_nan() {
        // NaNs sort last and only distort the top of the distribution.
        let xs = [1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(100.0, 50.0) + 50.0).abs() < 1e-12);
        assert!((pct_change(100.0, 150.0) - 50.0).abs() < 1e-12);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }
}
