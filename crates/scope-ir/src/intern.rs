//! Hash-consing interners for plan expressions and predicate atoms.
//!
//! The optimizer's hot compile path used to carry owned [`LogicalOp`]s
//! through the memo, cloning one per insertion and re-streaming the full
//! memo hash (predicate atoms, literals, key lists) on every dedup probe.
//! [`ExprInterner`] replaces that with integer [`ExprId`] handles: each
//! distinct operator is stored once per compile, and its hash prefix is
//! kept as a *resumable hasher state* so the memo key for `(op, children)`
//! can be finished with just the children — byte-identical to hashing the
//! op from scratch, at integer-append cost.
//!
//! ## Collision semantics (deliberately inherited)
//!
//! The memo has always deduplicated expressions purely by their streamed
//! `memo_hash` — there is no structural equality check behind the hash
//! (see `scope-optimizer/src/memo.rs`). The interner keys its table the
//! same way, on the finished prefix hash alone. Two operators whose memo
//! hash streams collide therefore intern to one id — exactly the behavior
//! the pre-intern memo had for the same pair. Changing either layer to
//! structural equality would *change compile results*; keeping the
//! semantics aligned is what makes the interned path bit-identical.
//!
//! Both interners are scratch structures: [`ExprInterner::clear`] forgets
//! the entries but keeps the allocations, so a thread-local compile scratch
//! reaches a zero-allocation steady state across compiles.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;

use crate::expr::CmpOp;
use crate::ids::ColId;
use crate::ops::{LogicalOp, OpKind};

/// Handle to an interned [`LogicalOp`] (valid for one interner lifetime /
/// until [`ExprInterner::clear`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExprId(pub u32);

impl ExprId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to an interned predicate-atom *shape* (`(column, operator)` —
/// the full input domain of the estimator's per-atom selectivity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AtomId(pub u32);

impl AtomId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-consing store for [`LogicalOp`]s, keyed on the operator's
/// streamed [`LogicalOp::memo_hash`].
#[derive(Debug, Default)]
pub struct ExprInterner {
    ops: Vec<LogicalOp>,
    kinds: Vec<OpKind>,
    /// Hasher state after streaming `op.memo_hash` — cloned and resumed by
    /// the memo to finish `(op, children)` keys without re-hashing the op.
    prefixes: Vec<DefaultHasher>,
    by_hash: HashMap<u64, ExprId>,
}

impl ExprInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern by reference; clones the operator only on first sight.
    pub fn intern(&mut self, op: &LogicalOp) -> ExprId {
        let (prefix, key) = Self::prefix_of(op);
        if let Some(&id) = self.by_hash.get(&key) {
            return id;
        }
        self.push(op.clone(), prefix, key)
    }

    /// Intern an owned operator; moves it in on first sight, drops it on a
    /// hit (never clones).
    pub fn intern_owned(&mut self, op: LogicalOp) -> ExprId {
        let (prefix, key) = Self::prefix_of(&op);
        if let Some(&id) = self.by_hash.get(&key) {
            return id;
        }
        self.push(op, prefix, key)
    }

    fn prefix_of(op: &LogicalOp) -> (DefaultHasher, u64) {
        let mut h = DefaultHasher::new();
        op.memo_hash(&mut h);
        let key = h.finish();
        (h, key)
    }

    fn push(&mut self, op: LogicalOp, prefix: DefaultHasher, key: u64) -> ExprId {
        let id = ExprId(self.ops.len() as u32);
        self.kinds.push(op.kind());
        self.ops.push(op);
        self.prefixes.push(prefix);
        self.by_hash.insert(key, id);
        id
    }

    /// The interned operator.
    #[inline]
    pub fn op(&self, id: ExprId) -> &LogicalOp {
        &self.ops[id.index()]
    }

    /// The operator's kind (cached: no match on the op itself).
    #[inline]
    pub fn kind(&self, id: ExprId) -> OpKind {
        self.kinds[id.index()]
    }

    /// A clone of the hasher state right after `op.memo_hash` was streamed
    /// into a fresh `DefaultHasher`. Feeding the children and finishing
    /// yields the exact key `expr_key` produced before interning existed.
    #[inline]
    pub fn prefix_hasher(&self, id: ExprId) -> DefaultHasher {
        self.prefixes[id.index()].clone()
    }

    /// Number of distinct operators interned.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Forget all entries but keep the allocations (scratch reuse).
    pub fn clear(&mut self) {
        self.ops.clear();
        self.kinds.clear();
        self.prefixes.clear();
        self.by_hash.clear();
    }
}

/// Hash-consing store for predicate-atom shapes. The estimator's
/// per-atom selectivity is a pure function of `(column, operator)` — the
/// literal does not participate — so interning on exactly that pair lets
/// a side table memoize selectivities with zero collision risk.
#[derive(Debug, Default)]
pub struct AtomInterner {
    keys: Vec<(ColId, CmpOp)>,
    by_key: HashMap<(ColId, CmpOp), AtomId>,
}

impl AtomInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an atom shape; returns the id and whether it was new (a new
    /// id always equals the previous [`Self::len`], so parallel side
    /// tables can push in lockstep).
    pub fn intern(&mut self, col: ColId, op: CmpOp) -> (AtomId, bool) {
        if let Some(&id) = self.by_key.get(&(col, op)) {
            return (id, false);
        }
        let id = AtomId(self.keys.len() as u32);
        self.keys.push((col, op));
        self.by_key.insert((col, op), id);
        (id, true)
    }

    /// The interned shape.
    #[inline]
    pub fn shape(&self, id: AtomId) -> (ColId, CmpOp) {
        self.keys[id.index()]
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Forget all entries but keep the allocations (scratch reuse).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.by_key.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Literal, PredAtom, Predicate};
    use crate::ids::TableId;
    use std::hash::Hash;

    fn filter(col: u32, lit: i64) -> LogicalOp {
        LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(col), CmpOp::Eq, Literal::Int(lit))),
        }
    }

    #[test]
    fn interning_is_idempotent_and_distinguishes_values() {
        let mut i = ExprInterner::new();
        let a = i.intern(&filter(0, 1));
        let b = i.intern(&filter(0, 1));
        let c = i.intern(&filter(0, 2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.kind(a), OpKind::Filter);
        assert_eq!(i.op(a), &filter(0, 1));
    }

    #[test]
    fn intern_owned_matches_intern_by_ref() {
        let mut i = ExprInterner::new();
        let a = i.intern(&filter(3, 7));
        let b = i.intern_owned(filter(3, 7));
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn prefix_hasher_resumes_to_the_legacy_expr_key() {
        // The pre-intern memo computed:
        //   h = DefaultHasher::new(); op.memo_hash(&mut h);
        //   children.hash(&mut h); h.finish()
        // Resuming the interned prefix must produce the identical key.
        let ops = [
            filter(1, 42),
            LogicalOp::RangeGet {
                table: TableId(3),
                pushed: Predicate::atom(PredAtom::unknown(ColId(2), CmpOp::Range, Literal::Int(9))),
            },
            LogicalOp::UnionAll,
            LogicalOp::Top { k: 10 },
        ];
        let children_cases: [&[u32]; 3] = [&[], &[0], &[5, 2, 5]];
        let mut i = ExprInterner::new();
        for op in &ops {
            let id = i.intern(op);
            for children in children_cases {
                let children: Vec<u32> = children.to_vec();
                let legacy = {
                    let mut h = DefaultHasher::new();
                    op.memo_hash(&mut h);
                    children.hash(&mut h);
                    h.finish()
                };
                let resumed = {
                    let mut h = i.prefix_hasher(id);
                    children.hash(&mut h);
                    h.finish()
                };
                assert_eq!(legacy, resumed, "{op:?} / {children:?}");
            }
        }
    }

    #[test]
    fn clear_retains_capacity_and_resets_ids() {
        let mut i = ExprInterner::new();
        for lit in 0..32 {
            i.intern_owned(filter(0, lit));
        }
        assert_eq!(i.len(), 32);
        i.clear();
        assert!(i.is_empty());
        let a = i.intern(&filter(9, 9));
        assert_eq!(a, ExprId(0));
    }

    #[test]
    fn atom_interner_keys_on_col_and_op_only() {
        let mut ai = AtomInterner::new();
        let (a, new_a) = ai.intern(ColId(1), CmpOp::Eq);
        let (b, new_b) = ai.intern(ColId(1), CmpOp::Eq);
        let (c, _) = ai.intern(ColId(1), CmpOp::Range);
        let (d, _) = ai.intern(ColId(2), CmpOp::Eq);
        assert!(new_a);
        assert!(!new_b);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(ai.len(), 3);
        assert_eq!(ai.shape(c), (ColId(1), CmpOp::Range));
        ai.clear();
        assert!(ai.is_empty());
        let (e, fresh) = ai.intern(ColId(5), CmpOp::Like);
        assert_eq!(e, AtomId(0));
        assert!(fresh);
    }
}
