//! The true data catalog and its observable projection.
//!
//! [`TrueCatalog`] is the ground truth about a job's inputs: exact row
//! counts, true predicate selectivities (with correlation between
//! predicates), join-key skew, and true user-defined-operator behaviour.
//! Only the **execution simulator** reads it.
//!
//! [`ObservableCatalog`] is what the **optimizer** is allowed to see:
//! input sizes and schema, plus rounded distinct counts. Everything else it
//! must estimate from heuristics — and the systematic gap between those
//! heuristics and the truth is exactly what the paper's rule steering
//! exploits.

use crate::expr::{CmpOp, PredAtom};
use crate::ids::{ColId, DomainId, TableId, UdoId};

/// Ground-truth statistics for one column.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct values.
    pub ndv: u64,
    /// Share of rows held by the single heaviest value, in `[0, 1]`.
    /// `0` means perfectly uniform. Invisible to the optimizer.
    pub skew: f64,
    /// Join-key domain; joins across different domains behave like
    /// low-overlap joins.
    pub domain: DomainId,
}

/// Ground-truth statistics for one input stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TableStats {
    /// Exact row count (observable — SCOPE knows its input sizes).
    pub rows: u64,
    /// Average row width in bytes (observable).
    pub row_bytes: u32,
    /// Hash of the input stream name (observable; part of template identity).
    pub name_hash: u64,
    /// Columns of this table (ids into the catalog's global column arena).
    pub cols: Vec<ColId>,
}

/// Ground truth for one registered predicate atom.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PredTruth {
    /// True standalone selectivity in `(0, 1]`.
    pub selectivity: f64,
    /// Correlation group, if the predicate is correlated with others.
    pub corr_group: Option<u32>,
}

/// A set of mutually correlated predicates.
///
/// For a conjunction containing `k ≥ 2` members of the group, the true
/// combined selectivity is blended between full nesting (`min` of the
/// members) and independence (product): `strength·min + (1−strength)·prod`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorrGroup {
    /// `0` = independent, `1` = fully nested (e.g. `city ⇒ state`).
    pub strength: f64,
}

/// Ground truth for one user-defined operator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UdoTruth {
    /// True CPU microseconds per input row.
    pub cpu_per_row: f64,
    /// True output/input row ratio (may exceed 1 for exploding UDOs).
    pub selectivity: f64,
}

/// Defaults assumed by the optimizer for *every* UDO — one global constant,
/// as in real SCOPE where user code is opaque.
pub const DEFAULT_UDO_CPU_PER_ROW: f64 = 1.0;
/// Default UDO output/input ratio assumed by the optimizer.
pub const DEFAULT_UDO_SELECTIVITY: f64 = 1.0;

/// The optimizer's shape-based selectivity heuristic, shared with the
/// simulator's fallback for unregistered predicates. `ndv` is the (rounded)
/// distinct count of the filtered column.
pub fn shape_selectivity(op: CmpOp, ndv: u64) -> f64 {
    let sel = match op {
        CmpOp::Eq => 1.0 / ndv.max(1) as f64,
        CmpOp::Neq => 1.0 - 1.0 / ndv.max(1) as f64,
        CmpOp::Range => 1.0 / 3.0,
        CmpOp::Between => 1.0 / 4.0,
        CmpOp::Like => 1.0 / 10.0,
        CmpOp::InList => (4.0 / ndv.max(1) as f64).min(0.5),
    };
    sel.clamp(1e-6, 1.0)
}

/// Ground truth about a job's world. Owned by each [`crate::job::Job`];
/// read only by the execution simulator and the workload generator.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrueCatalog {
    pub tables: Vec<TableStats>,
    pub columns: Vec<ColumnStats>,
    pub preds: Vec<PredTruth>,
    pub corr_groups: Vec<CorrGroup>,
    pub udos: Vec<UdoTruth>,
}

impl TrueCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a column; returns its id.
    pub fn add_column(&mut self, ndv: u64, skew: f64, domain: DomainId) -> ColId {
        let id = ColId(self.columns.len() as u32);
        self.columns.push(ColumnStats { ndv, skew, domain });
        id
    }

    /// Register a table; returns its id.
    pub fn add_table(
        &mut self,
        rows: u64,
        row_bytes: u32,
        name_hash: u64,
        cols: Vec<ColId>,
    ) -> TableId {
        let id = TableId(self.tables.len() as u32);
        self.tables.push(TableStats {
            rows,
            row_bytes,
            name_hash,
            cols,
        });
        id
    }

    /// Register a predicate's ground truth; returns its id.
    pub fn add_pred(&mut self, selectivity: f64, corr_group: Option<u32>) -> crate::ids::PredId {
        let id = crate::ids::PredId(self.preds.len() as u32);
        self.preds.push(PredTruth {
            selectivity: selectivity.clamp(1e-9, 1.0),
            corr_group,
        });
        id
    }

    /// Register a correlation group; returns its index for `add_pred`.
    pub fn add_corr_group(&mut self, strength: f64) -> u32 {
        let id = self.corr_groups.len() as u32;
        self.corr_groups.push(CorrGroup {
            strength: strength.clamp(0.0, 1.0),
        });
        id
    }

    /// Register a UDO's ground truth; returns its id.
    pub fn add_udo(&mut self, cpu_per_row: f64, selectivity: f64) -> UdoId {
        let id = UdoId(self.udos.len() as u32);
        self.udos.push(UdoTruth {
            cpu_per_row,
            selectivity,
        });
        id
    }

    /// True selectivity of one atom in isolation.
    pub fn true_atom_selectivity(&self, atom: &PredAtom) -> f64 {
        if atom.pred.is_known() {
            if let Some(t) = self.preds.get(atom.pred.index()) {
                return t.selectivity;
            }
        }
        let ndv = self
            .columns
            .get(atom.col.index())
            .map(|c| c.ndv)
            .unwrap_or(1000);
        shape_selectivity(atom.op, ndv)
    }

    /// True combined selectivity of a conjunction, accounting for
    /// correlation groups.
    pub fn true_conj_selectivity(&self, atoms: &[PredAtom]) -> f64 {
        let mut independent = 1.0_f64;
        // (group id, min sel, product sel, count)
        let mut groups: Vec<(u32, f64, f64, usize)> = Vec::new();
        for atom in atoms {
            let sel = self.true_atom_selectivity(atom);
            let group = atom
                .pred
                .is_known()
                .then(|| self.preds.get(atom.pred.index()).and_then(|t| t.corr_group))
                .flatten();
            match group {
                None => independent *= sel,
                Some(g) => match groups.iter_mut().find(|e| e.0 == g) {
                    Some(e) => {
                        e.1 = e.1.min(sel);
                        e.2 *= sel;
                        e.3 += 1;
                    }
                    None => groups.push((g, sel, sel, 1)),
                },
            }
        }
        for (g, min, prod, count) in groups {
            if count <= 1 {
                independent *= prod;
            } else {
                let strength = self
                    .corr_groups
                    .get(g as usize)
                    .map(|c| c.strength)
                    .unwrap_or(0.0);
                independent *= strength * min + (1.0 - strength) * prod;
            }
        }
        independent.clamp(1e-12, 1.0)
    }

    /// True behaviour of a UDO; falls back to the optimizer's defaults for
    /// unregistered ids (so hand-built plans see no estimation error).
    pub fn udo_truth(&self, udo: UdoId) -> UdoTruth {
        self.udos.get(udo.index()).copied().unwrap_or(UdoTruth {
            cpu_per_row: DEFAULT_UDO_CPU_PER_ROW,
            selectivity: DEFAULT_UDO_SELECTIVITY,
        })
    }

    /// Total bytes across all inputs (observable; used by featurization).
    pub fn total_input_bytes(&self) -> u64 {
        self.tables
            .iter()
            .map(|t| t.rows.saturating_mul(t.row_bytes as u64))
            .sum()
    }

    /// Project down to what the optimizer may see.
    pub fn observe(&self) -> ObservableCatalog {
        ObservableCatalog {
            tables: self
                .tables
                .iter()
                .map(|t| ObservableTable {
                    rows: t.rows,
                    row_bytes: t.row_bytes,
                    name_hash: t.name_hash,
                    cols: t.cols.clone(),
                })
                .collect(),
            columns: self
                .columns
                .iter()
                .map(|c| ObservableColumn {
                    ndv: round_pow2(c.ndv),
                    domain: c.domain,
                })
                .collect(),
        }
    }
}

/// Round to the nearest power of two — the granularity at which the
/// optimizer's histograms report distinct counts.
fn round_pow2(v: u64) -> u64 {
    if v <= 1 {
        return 1;
    }
    let lower = 1u64 << (63 - v.leading_zeros());
    let upper = lower << 1;
    if v - lower <= upper.saturating_sub(v) {
        lower
    } else {
        upper
    }
}

/// Observable column statistics (rounded distinct count, no skew).
#[derive(Clone, Debug, PartialEq)]
pub struct ObservableColumn {
    pub ndv: u64,
    pub domain: DomainId,
}

/// Observable table statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ObservableTable {
    pub rows: u64,
    pub row_bytes: u32,
    pub name_hash: u64,
    pub cols: Vec<ColId>,
}

/// What the optimizer sees: schema, sizes, rounded distinct counts. No
/// predicate truth, no correlation, no skew, no UDO internals.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObservableCatalog {
    pub tables: Vec<ObservableTable>,
    pub columns: Vec<ObservableColumn>,
}

impl ObservableCatalog {
    /// Observable row count of a table (0 for unknown ids).
    pub fn table_rows(&self, t: TableId) -> u64 {
        self.tables.get(t.index()).map(|t| t.rows).unwrap_or(0)
    }

    /// Observable row width of a table.
    pub fn table_row_bytes(&self, t: TableId) -> u32 {
        self.tables
            .get(t.index())
            .map(|t| t.row_bytes)
            .unwrap_or(100)
    }

    /// Observable (rounded) distinct count of a column.
    pub fn col_ndv(&self, c: ColId) -> u64 {
        self.columns.get(c.index()).map(|c| c.ndv).unwrap_or(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Literal;
    use crate::ids::PredId;

    fn atom_with(pred: PredId) -> PredAtom {
        PredAtom {
            col: ColId(0),
            op: CmpOp::Eq,
            literal: Literal::Int(0),
            pred,
        }
    }

    #[test]
    fn round_pow2_behaviour() {
        assert_eq!(round_pow2(0), 1);
        assert_eq!(round_pow2(1), 1);
        assert_eq!(round_pow2(2), 2);
        assert_eq!(round_pow2(3), 2); // equidistant ties resolve down
        assert_eq!(round_pow2(5), 4);
        assert_eq!(round_pow2(7), 8);
        assert_eq!(round_pow2(1000), 1024);
    }

    #[test]
    fn independent_preds_multiply() {
        let mut cat = TrueCatalog::new();
        let p1 = cat.add_pred(0.1, None);
        let p2 = cat.add_pred(0.2, None);
        let sel = cat.true_conj_selectivity(&[atom_with(p1), atom_with(p2)]);
        assert!((sel - 0.02).abs() < 1e-12);
    }

    #[test]
    fn fully_correlated_preds_take_min() {
        let mut cat = TrueCatalog::new();
        let g = cat.add_corr_group(1.0);
        let p1 = cat.add_pred(0.1, Some(g));
        let p2 = cat.add_pred(0.2, Some(g));
        let sel = cat.true_conj_selectivity(&[atom_with(p1), atom_with(p2)]);
        assert!((sel - 0.1).abs() < 1e-12);
    }

    #[test]
    fn partially_correlated_preds_blend() {
        let mut cat = TrueCatalog::new();
        let g = cat.add_corr_group(0.5);
        let p1 = cat.add_pred(0.1, Some(g));
        let p2 = cat.add_pred(0.2, Some(g));
        let sel = cat.true_conj_selectivity(&[atom_with(p1), atom_with(p2)]);
        let expected = 0.5 * 0.1 + 0.5 * 0.02;
        assert!((sel - expected).abs() < 1e-12);
    }

    #[test]
    fn single_group_member_is_independent() {
        let mut cat = TrueCatalog::new();
        let g = cat.add_corr_group(1.0);
        let p1 = cat.add_pred(0.1, Some(g));
        let sel = cat.true_conj_selectivity(&[atom_with(p1)]);
        assert!((sel - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unknown_pred_falls_back_to_shape_heuristic() {
        let mut cat = TrueCatalog::new();
        cat.add_column(100, 0.0, DomainId(0));
        let atom = PredAtom::unknown(ColId(0), CmpOp::Eq, Literal::Int(3));
        let sel = cat.true_atom_selectivity(&atom);
        assert!((sel - 0.01).abs() < 1e-12);
    }

    #[test]
    fn observe_hides_truth_and_rounds_ndv() {
        let mut cat = TrueCatalog::new();
        let c = cat.add_column(1000, 0.8, DomainId(3));
        cat.add_table(5000, 120, 42, vec![c]);
        cat.add_pred(0.001, None);
        let obs = cat.observe();
        assert_eq!(obs.col_ndv(c), 1024);
        assert_eq!(obs.table_rows(TableId(0)), 5000);
        assert_eq!(obs.columns[0].domain, DomainId(3));
        // Truth fields simply do not exist on the observable type.
    }

    #[test]
    fn udo_default_for_unknown() {
        let cat = TrueCatalog::new();
        let t = cat.udo_truth(UdoId(99));
        assert_eq!(t.cpu_per_row, DEFAULT_UDO_CPU_PER_ROW);
        assert_eq!(t.selectivity, DEFAULT_UDO_SELECTIVITY);
    }

    #[test]
    fn total_input_bytes_sums_tables() {
        let mut cat = TrueCatalog::new();
        cat.add_table(10, 100, 0, vec![]);
        cat.add_table(5, 200, 1, vec![]);
        assert_eq!(cat.total_input_bytes(), 2000);
    }
}
