//! # scope-ir
//!
//! The intermediate representation shared by the whole `scope-steer` stack:
//!
//! * [`expr`] — scalar expressions and predicates (conjunctions of atoms),
//! * [`ops`] — logical operators of the SCOPE-like engine,
//! * [`plan`] — arena-allocated plan DAGs with template hashing,
//! * [`catalog`] — the *true* data catalog (known only to the execution
//!   simulator) and the *observable* catalog (what the optimizer may see),
//! * [`job`] — jobs, templates, and recurring-job metadata,
//! * [`stats`] — small numeric helpers (percentiles, lognormal sampling).
//!
//! ## True vs. observable state
//!
//! The central design idea of the reproduction is an explicit split between
//! what the cluster *knows* ([`catalog::TrueCatalog`]: true selectivities,
//! predicate correlation, key skew, user-defined-operator cost) and what the
//! optimizer *may observe* ([`catalog::ObservableCatalog`]: input sizes,
//! schema, rounded distinct counts). Every effect in the paper — cheap plans
//! that run slowly, rule configurations that fix them — arises from this gap.

pub mod catalog;
pub mod display;
pub mod expr;
pub mod ids;
pub mod intern;
pub mod interval;
pub mod job;
pub mod ops;
pub mod plan;
pub mod stats;
pub mod validate;

pub use catalog::{ColumnStats, ObservableCatalog, TableStats, TrueCatalog};
pub use expr::{CmpOp, Literal, PredAtom, Predicate};
pub use ids::{ColId, DomainId, JobId, NodeId, PredId, TableId, TemplateId, UdoId};
pub use intern::{AtomId, AtomInterner, ExprId, ExprInterner};
pub use interval::Interval;
pub use job::{InputRef, Job};
pub use ops::{AggFunc, JoinKind, LogicalOp, OpKind};
pub use plan::{PlanGraph, PlanNode};
pub use validate::{
    check_provenance, check_structure, validate_logical, PlanViolation, StructuralNode,
};
