//! Structural plan validation.
//!
//! [`validate_logical`] checks the invariants every *input* plan must hold
//! before it is handed to the optimizer: the DAG is rooted in an `Output`,
//! every operator has the right number of inputs, every scanned table exists
//! in the observable catalog, and every referenced column is actually
//! produced by the subtree below the reference. Violations come back as a
//! typed [`PlanViolation`] list rather than a panic, so callers (the
//! discovery pipeline, the deployment guardrail) can discard or quarantine a
//! bad plan and keep going — the trust boundary the paper's flighting step
//! requires before a steered plan may run.
//!
//! Column checks are deliberately *logical-only*: legitimate rewrites such
//! as `ReseqProjectOnFilter` push a `Project` below a column-referencing
//! operator, so column availability is not invariant under exploration. The
//! physical validator in `scope-optimizer` checks the invariants that *are*
//! preserved (structure, physical properties, estimates).

use std::collections::BTreeSet;
use std::fmt;

use crate::catalog::ObservableCatalog;
use crate::ids::{ColId, NodeId, TableId};
use crate::ops::{LogicalOp, OpKind};
use crate::plan::PlanGraph;

/// One violated plan invariant. `node` identifies the offending node in the
/// owning arena (logical [`PlanGraph`] or the optimizer's physical plan).
#[derive(Clone, Debug, PartialEq)]
pub enum PlanViolation {
    /// The plan has no root set.
    NoRoot,
    /// The root operator is not an `Output` sink.
    RootNotOutput { node: NodeId, kind: &'static str },
    /// An operator has the wrong number of inputs.
    BadArity {
        node: NodeId,
        kind: &'static str,
        got: usize,
        min: usize,
        max: usize,
    },
    /// A child edge does not resolve to an earlier arena node (the arena is
    /// topologically ordered, so any such edge would create a cycle or
    /// dangle).
    DanglingInput { node: NodeId, child: NodeId },
    /// A scan references a table missing from the catalog.
    UnknownTable { node: NodeId, table: TableId },
    /// An operator references a column its inputs do not produce.
    UnknownColumn { node: NodeId, col: ColId },
    /// A partitioned physical operator's input is not partitioned as
    /// required (no exchange was enforced). `required`/`found` are rendered
    /// partitioning schemes.
    MissingExchange {
        node: NodeId,
        child: NodeId,
        required: String,
        found: String,
    },
    /// An exchange node's own output partitioning disagrees with the scheme
    /// it implements.
    ExchangeSchemeMismatch { node: NodeId },
    /// A cardinality/size/cost estimate is NaN or infinite.
    NonFiniteEstimate { node: NodeId, what: &'static str },
    /// A cardinality/size/cost estimate is negative.
    NegativeEstimate { node: NodeId, what: &'static str },
    /// A physical node's degree of parallelism is zero.
    BadParallelism { node: NodeId, dop: u32 },
}

impl fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanViolation::NoRoot => write!(f, "plan has no root"),
            PlanViolation::RootNotOutput { node, kind } => {
                write!(f, "root node {node} is {kind}, not Output")
            }
            PlanViolation::BadArity {
                node,
                kind,
                got,
                min,
                max,
            } => {
                if max == &usize::MAX {
                    write!(f, "{kind} node {node} has {got} inputs, needs >= {min}")
                } else {
                    write!(f, "{kind} node {node} has {got} inputs, needs {min}..={max}")
                }
            }
            PlanViolation::DanglingInput { node, child } => {
                write!(f, "node {node} input {child} does not resolve")
            }
            PlanViolation::UnknownTable { node, table } => {
                write!(f, "node {node} scans unknown table {table}")
            }
            PlanViolation::UnknownColumn { node, col } => {
                write!(f, "node {node} references column {col} its inputs do not produce")
            }
            PlanViolation::MissingExchange {
                node,
                child,
                required,
                found,
            } => write!(
                f,
                "node {node} requires {required} input from {child}, found {found} (missing exchange)"
            ),
            PlanViolation::ExchangeSchemeMismatch { node } => {
                write!(f, "exchange node {node} output partitioning disagrees with its scheme")
            }
            PlanViolation::NonFiniteEstimate { node, what } => {
                write!(f, "node {node} has non-finite {what} estimate")
            }
            PlanViolation::NegativeEstimate { node, what } => {
                write!(f, "node {node} has negative {what} estimate")
            }
            PlanViolation::BadParallelism { node, dop } => {
                write!(f, "node {node} has invalid degree of parallelism {dop}")
            }
        }
    }
}

/// A node as seen by the shared structural checks — the common shape of a
/// logical [`PlanGraph`] node and the optimizer's physical node, so the
/// root/arity/dangling-edge logic lives in exactly one place (used by
/// [`validate_logical`], `scope_optimizer::validate_physical`, and the
/// `scope-lint` structure pass).
pub struct StructuralNode<'a> {
    /// Operator kind name, for diagnostics.
    pub kind: &'static str,
    /// Child edges into the owning arena.
    pub children: &'a [NodeId],
    /// Allowed input arity `(min, max)`.
    pub arity: (usize, usize),
    /// Whether the operator is an `Output` sink (the only legal root).
    pub is_output: bool,
}

/// Shared structural core: the plan has a root, the root is an `Output`,
/// every reachable node's input count is within its arity bounds, and every
/// child edge resolves to an earlier arena node (the arena is topologically
/// ordered, so any other edge would cycle or dangle).
///
/// Returns per-node edge-soundness flags (`false` = some child edge of that
/// node dangles), letting callers skip follow-on checks that would read
/// through corrupt edges. On a rootless plan only `NoRoot` is reported.
pub fn check_structure<'a>(
    root: Option<NodeId>,
    len: usize,
    reachable: impl IntoIterator<Item = NodeId>,
    view: impl Fn(NodeId) -> StructuralNode<'a>,
    out: &mut Vec<PlanViolation>,
) -> Vec<bool> {
    let Some(root) = root else {
        out.push(PlanViolation::NoRoot);
        return vec![true; len];
    };
    let root_view = view(root);
    if !root_view.is_output {
        out.push(PlanViolation::RootNotOutput {
            node: root,
            kind: root_view.kind,
        });
    }
    let mut edges_ok = vec![true; len];
    for id in reachable {
        let node = view(id);
        let (min, max) = node.arity;
        let got = node.children.len();
        if got < min || got > max {
            out.push(PlanViolation::BadArity {
                node: id,
                kind: node.kind,
                got,
                min,
                max,
            });
        }
        for &c in node.children {
            if c >= id || c.index() >= len {
                out.push(PlanViolation::DanglingInput { node: id, child: c });
                edges_ok[id.index()] = false;
            }
        }
    }
    edges_ok
}

/// Check that every column in `cols` is produced by the inputs.
fn check_cols<'a>(
    node: NodeId,
    cols: impl IntoIterator<Item = &'a ColId>,
    avail: &BTreeSet<ColId>,
    out: &mut Vec<PlanViolation>,
) {
    for col in cols {
        if !avail.contains(col) {
            out.push(PlanViolation::UnknownColumn { node, col: *col });
        }
    }
}

/// Validate a logical plan against the observable catalog.
///
/// Returns the empty vector iff the plan is well-formed: rooted in `Output`,
/// arity-correct, acyclic with all inputs resolving, all scanned tables
/// known, and every referenced column produced by the subtree beneath it.
/// Column derivation mirrors the estimator's schema propagation (`Project`
/// narrows to its list, unions intersect branches, `GroupBy` passes its
/// input through — aggregate outputs are addressed by their argument's id).
pub fn validate_logical(plan: &PlanGraph, obs: &ObservableCatalog) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    check_structure(
        plan.root(),
        plan.len(),
        plan.reachable(),
        |id| {
            let node = plan.node(id);
            StructuralNode {
                kind: node.op.kind().name(),
                children: &node.children,
                arity: node.op.arity(),
                is_output: node.op.kind() == OpKind::Output,
            }
        },
        &mut out,
    );
    if plan.root().is_some() {
        check_provenance(plan, obs, &mut out);
    }
    out
}

/// The table/column-provenance pass: bottom-up over the (topologically
/// ordered) reachable set, deriving the column set each node produces and
/// reporting scans of unknown tables and references to columns the inputs
/// do not produce. Dangling child edges are skipped silently — reporting
/// them is [`check_structure`]'s job.
pub fn check_provenance(plan: &PlanGraph, obs: &ObservableCatalog, out: &mut Vec<PlanViolation>) {
    let mut cols: Vec<BTreeSet<ColId>> = vec![BTreeSet::new(); plan.len()];
    for id in plan.reachable() {
        let node = plan.node(id);
        let mut inputs: Vec<&BTreeSet<ColId>> = Vec::with_capacity(node.children.len());
        for &c in &node.children {
            if c < id && c.index() < plan.len() {
                inputs.push(&cols[c.index()]);
            }
        }
        let avail: BTreeSet<ColId> = inputs.iter().flat_map(|s| s.iter().copied()).collect();
        let derived: BTreeSet<ColId> = match &node.op {
            LogicalOp::Get { table } | LogicalOp::RangeGet { table, .. } => {
                match obs.tables.get(table.index()) {
                    Some(t) => {
                        if let LogicalOp::RangeGet { pushed, .. } = &node.op {
                            let table_cols: BTreeSet<ColId> = t.cols.iter().copied().collect();
                            check_cols(id, pushed.atoms.iter().map(|a| &a.col), &table_cols, out);
                        }
                        t.cols.iter().copied().collect()
                    }
                    None => {
                        out.push(PlanViolation::UnknownTable {
                            node: id,
                            table: *table,
                        });
                        BTreeSet::new()
                    }
                }
            }
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                check_cols(id, predicate.atoms.iter().map(|a| &a.col), &avail, out);
                avail
            }
            LogicalOp::Project { cols: pcols, .. } => {
                check_cols(id, pcols.iter(), &avail, out);
                pcols.iter().copied().collect()
            }
            LogicalOp::Join { keys, .. } => {
                // Keys are checked against the union of both sides: join
                // reassociation legitimately re-routes which side carries a
                // key column, so side-specific checks would false-positive.
                for (l, r) in keys {
                    check_cols(id, [l, r], &avail, out);
                }
                match &node.op {
                    LogicalOp::Join {
                        kind: crate::ops::JoinKind::Semi,
                        ..
                    } => inputs.first().map(|s| (*s).clone()).unwrap_or_default(),
                    _ => avail,
                }
            }
            LogicalOp::GroupBy { keys, .. } => {
                // Aggregate argument columns are *not* checked: aggregation
                // splitting pushes a partial aggregate below, whose output
                // narrows to the group keys, legitimately stranding the
                // final aggregate's argument column. Availability passes
                // through unchanged: column ids are global attribute names
                // and an aggregate's output is addressed by its argument's
                // id (a downstream `GroupBy` keys on `Sum(c)`'s result as
                // `c`), so grouping does not rescope what may be referenced
                // above it.
                check_cols(id, keys.iter(), &avail, out);
                avail
            }
            LogicalOp::UnionAll | LogicalOp::VirtualDataset => {
                // Branch intersection, like the estimator.
                let mut it = inputs.iter();
                match it.next() {
                    Some(first) => it.fold((*first).clone(), |acc, s| {
                        acc.intersection(s).copied().collect()
                    }),
                    None => BTreeSet::new(),
                }
            }
            LogicalOp::Sort { keys } | LogicalOp::Window { keys } => {
                check_cols(id, keys.iter(), &avail, out);
                avail
            }
            LogicalOp::Top { .. } | LogicalOp::Process { .. } | LogicalOp::Output { .. } => avail,
        };
        cols[id.index()] = derived;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Literal, PredAtom, Predicate};
    use crate::ids::DomainId;
    use crate::TrueCatalog;

    fn catalog() -> ObservableCatalog {
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(100, 0.0, DomainId(0));
        let c1 = cat.add_column(50, 0.0, DomainId(1));
        cat.add_table(10_000, 100, 1, vec![c0, c1]);
        cat.observe()
    }

    fn scan() -> LogicalOp {
        LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        }
    }

    fn filter(col: ColId) -> LogicalOp {
        LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(col, CmpOp::Eq, Literal::Int(7))),
        }
    }

    #[test]
    fn valid_plan_has_no_violations() {
        let obs = catalog();
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(scan(), vec![]);
        let f = plan.add_unchecked(filter(ColId(0)), vec![s]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![f]);
        plan.set_root(o);
        assert!(validate_logical(&plan, &obs).is_empty());
    }

    #[test]
    fn missing_root_is_reported() {
        let plan = PlanGraph::new();
        assert_eq!(
            validate_logical(&plan, &catalog()),
            vec![PlanViolation::NoRoot]
        );
    }

    #[test]
    fn non_output_root_is_reported() {
        let obs = catalog();
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(scan(), vec![]);
        plan.set_root(s);
        assert_eq!(
            validate_logical(&plan, &obs),
            vec![PlanViolation::RootNotOutput {
                node: s,
                kind: "RangeGet"
            }]
        );
    }

    #[test]
    fn union_schema_is_the_branch_intersection() {
        let obs = catalog();
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(scan(), vec![]);
        let p0 = plan.add_unchecked(
            LogicalOp::Project {
                cols: vec![ColId(0)],
                computed: 0,
            },
            vec![s],
        );
        let p1 = plan.add_unchecked(
            LogicalOp::Project {
                cols: vec![ColId(0), ColId(1)],
                computed: 0,
            },
            vec![s],
        );
        let u = plan.add_unchecked(LogicalOp::UnionAll, vec![p0, p1]);
        // Only ColId(0) survives both branches.
        let f = plan.add_unchecked(filter(ColId(1)), vec![u]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![f]);
        plan.set_root(o);
        assert_eq!(
            validate_logical(&plan, &obs),
            vec![PlanViolation::UnknownColumn {
                node: f,
                col: ColId(1)
            }]
        );
    }

    #[test]
    fn unknown_table_and_column_are_reported() {
        let obs = catalog();
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(9),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let f = plan.add_unchecked(filter(ColId(44)), vec![s]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![f]);
        plan.set_root(o);
        let v = validate_logical(&plan, &obs);
        assert!(v.contains(&PlanViolation::UnknownTable {
            node: s,
            table: TableId(9)
        }));
        assert!(v.contains(&PlanViolation::UnknownColumn {
            node: f,
            col: ColId(44)
        }));
    }

    #[test]
    fn projection_narrows_the_schema() {
        let obs = catalog();
        let mut plan = PlanGraph::new();
        let s = plan.add_unchecked(scan(), vec![]);
        let p = plan.add_unchecked(
            LogicalOp::Project {
                cols: vec![ColId(1)],
                computed: 0,
            },
            vec![s],
        );
        // Filter on a column the projection dropped.
        let f = plan.add_unchecked(filter(ColId(0)), vec![p]);
        let o = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![f]);
        plan.set_root(o);
        assert_eq!(
            validate_logical(&plan, &obs),
            vec![PlanViolation::UnknownColumn {
                node: f,
                col: ColId(0)
            }]
        );
    }

    #[test]
    fn violations_render_as_text() {
        let v = PlanViolation::MissingExchange {
            node: NodeId(3),
            child: NodeId(1),
            required: "Hash".into(),
            found: "Any".into(),
        };
        assert!(format!("{v}").contains("missing exchange"));
    }
}
