//! Jobs: a plan, its ground-truth world, and recurring-job metadata.

use crate::catalog::TrueCatalog;
use crate::ids::{JobId, TemplateId};
use crate::plan::PlanGraph;

/// One input stream reference: its (hashed) name and its size on the job's
/// day. Input sizes drift day to day for recurring templates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct InputRef {
    /// Hash of the stream name, e.g. `/shares/prod/clicks/2021-02-03`.
    pub name_hash: u64,
    /// Size in bytes on this day (observable).
    pub bytes: u64,
}

/// A SCOPE job: one submitted instance of a (possibly recurring) template.
#[derive(Clone, Debug)]
pub struct Job {
    /// Unique id assigned by the workload generator.
    pub id: JobId,
    /// The logical plan as written (pre-normalization operators).
    pub plan: PlanGraph,
    /// Ground truth about this job's inputs. The optimizer must only use
    /// [`TrueCatalog::observe`].
    pub catalog: TrueCatalog,
    /// Recurring-template identity (literal-erased structural hash,
    /// including input names).
    pub template: TemplateId,
    /// The job's input streams.
    pub inputs: Vec<InputRef>,
    /// Day index within the workload window (0-based).
    pub day: u32,
    /// Tokens (concurrent containers) requested by the customer. A/B runs
    /// override this with a fixed value (50 in the paper).
    pub requested_tokens: u32,
    /// Customer-supplied rule hints: raw rule ids the customer's script
    /// enables on top of the engine default ("rule flags are already
    /// available and often used by customers", §3.3). These explain why
    /// off-by-default rules appear in production signatures (Table 2).
    pub hints: Vec<u16>,
}

impl Job {
    /// Construct a job, deriving its template hash from the plan and inputs.
    pub fn new(
        id: JobId,
        plan: PlanGraph,
        catalog: TrueCatalog,
        inputs: Vec<InputRef>,
        day: u32,
        requested_tokens: u32,
    ) -> Self {
        let names: Vec<u64> = inputs.iter().map(|i| i.name_hash).collect();
        let template = plan.template_hash(&names);
        Job {
            id,
            plan,
            catalog,
            template,
            inputs,
            day,
            requested_tokens,
            hints: Vec::new(),
        }
    }

    /// Attach customer rule hints (builder style).
    pub fn with_hints(mut self, hints: Vec<u16>) -> Self {
        self.hints = hints;
        self
    }

    /// Total observable input bytes.
    pub fn total_input_bytes(&self) -> u64 {
        self.inputs.iter().map(|i| i.bytes).sum()
    }

    /// Number of reachable operators in the plan.
    pub fn plan_size(&self) -> usize {
        self.plan.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;
    use crate::ops::LogicalOp;

    fn tiny_plan() -> PlanGraph {
        let mut g = PlanGraph::new();
        let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
        g.set_root(o);
        g
    }

    #[test]
    fn template_derives_from_plan_and_inputs() {
        let j1 = Job::new(
            JobId(1),
            tiny_plan(),
            TrueCatalog::new(),
            vec![InputRef {
                name_hash: 10,
                bytes: 100,
            }],
            0,
            50,
        );
        let j2 = Job::new(
            JobId(2),
            tiny_plan(),
            TrueCatalog::new(),
            vec![InputRef {
                name_hash: 10,
                bytes: 999, // size differs, name does not
            }],
            1,
            50,
        );
        assert_eq!(j1.template, j2.template);

        let j3 = Job::new(
            JobId(3),
            tiny_plan(),
            TrueCatalog::new(),
            vec![InputRef {
                name_hash: 11, // different input name ⇒ different template
                bytes: 100,
            }],
            0,
            50,
        );
        assert_ne!(j1.template, j3.template);
    }

    #[test]
    fn input_bytes_sum() {
        let j = Job::new(
            JobId(1),
            tiny_plan(),
            TrueCatalog::new(),
            vec![
                InputRef {
                    name_hash: 1,
                    bytes: 100,
                },
                InputRef {
                    name_hash: 2,
                    bytes: 50,
                },
            ],
            0,
            50,
        );
        assert_eq!(j.total_input_bytes(), 150);
        assert_eq!(j.plan_size(), 2);
    }
}
