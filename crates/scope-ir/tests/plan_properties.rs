//! Property tests over plan construction and hashing invariants.

use proptest::prelude::*;
use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, NodeId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::PlanGraph;

/// A strategy producing random-but-valid plan graphs: every node's children
/// are earlier nodes with compatible arity.
fn arb_plan() -> impl Strategy<Value = PlanGraph> {
    // A recipe is a list of op choices; we materialize greedily.
    proptest::collection::vec((0u8..8, any::<i64>(), 0u32..6), 1..40).prop_map(|recipe| {
        let mut g = PlanGraph::new();
        let mut nodes: Vec<NodeId> = Vec::new();
        // Seed with two scans so unary/binary ops always have children.
        nodes.push(g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]));
        nodes.push(g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]));
        for (choice, lit, col) in recipe {
            let pick = |off: usize| nodes[(off + lit.unsigned_abs() as usize) % nodes.len()];
            let id = match choice {
                0 => g.add_unchecked(
                    LogicalOp::Get {
                        table: TableId(col),
                    },
                    vec![],
                ),
                1 => g.add_unchecked(
                    LogicalOp::Select {
                        predicate: Predicate::atom(PredAtom::unknown(
                            ColId(col),
                            CmpOp::Eq,
                            Literal::Int(lit),
                        )),
                    },
                    vec![pick(0)],
                ),
                2 => g.add_unchecked(
                    LogicalOp::Project {
                        cols: vec![ColId(col)],
                        computed: (col % 3) as u8,
                    },
                    vec![pick(1)],
                ),
                3 => g.add_unchecked(
                    LogicalOp::Join {
                        kind: JoinKind::Inner,
                        keys: vec![(ColId(col), ColId(col + 1))],
                    },
                    vec![pick(0), pick(2)],
                ),
                4 => g.add_unchecked(
                    LogicalOp::GroupBy {
                        keys: vec![ColId(col)],
                        aggs: vec![AggFunc::Count],
                        partial: false,
                    },
                    vec![pick(0)],
                ),
                5 => g.add_unchecked(LogicalOp::UnionAll, vec![pick(0), pick(3)]),
                6 => g.add_unchecked(
                    LogicalOp::Top {
                        k: 1 + (col as u64),
                    },
                    vec![pick(0)],
                ),
                _ => g.add_unchecked(
                    LogicalOp::Sort {
                        keys: vec![ColId(col)],
                    },
                    vec![pick(0)],
                ),
            };
            nodes.push(id);
        }
        let root_child = *nodes.last().expect("nonempty");
        let out = g.add_unchecked(LogicalOp::Output { stream: 7 }, vec![root_child]);
        g.set_root(out);
        g
    })
}

proptest! {
    /// Every generated plan validates, and reachability is a subset of the
    /// arena in children-first order.
    #[test]
    fn generated_plans_validate(plan in arb_plan()) {
        prop_assert!(plan.validate().is_ok());
        let order = plan.reachable();
        prop_assert!(order.len() <= plan.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for &id in &order {
            for &c in &plan.node(id).children {
                prop_assert!(pos[&c] < pos[&id], "child after parent");
            }
        }
    }

    /// Template hash is invariant under literal refresh; plan hash is not
    /// (whenever the plan actually has a literal to change).
    #[test]
    fn literal_refresh_preserves_template(plan in arb_plan(), new_lit in any::<i64>()) {
        let t0 = plan.template_hash(&[1, 2]);
        let h0 = plan.plan_hash();
        // Only literals on *reachable* nodes affect the plan hash.
        let reachable: std::collections::HashSet<_> =
            plan.reachable().into_iter().collect();
        let selects_reachable: Vec<bool> = plan
            .iter()
            .map(|(id, node)| {
                reachable.contains(&id)
                    && matches!(&node.op, LogicalOp::Select { predicate }
                        if predicate.atoms.iter().any(|a| a.literal != Literal::Int(new_lit)))
            })
            .collect();
        let changed = selects_reachable.iter().any(|&b| b);
        let mut plan2 = plan.clone();
        plan2.map_ops(|op| {
            if let LogicalOp::Select { predicate } = op {
                for a in &mut predicate.atoms {
                    a.literal = Literal::Int(new_lit);
                }
            }
        });
        prop_assert_eq!(plan2.template_hash(&[1, 2]), t0);
        if changed {
            prop_assert_ne!(plan2.plan_hash(), h0);
        }
    }

    /// Op counts over reachable nodes sum to the reachable size.
    #[test]
    fn op_counts_sum_to_size(plan in arb_plan()) {
        let counts = plan.op_counts();
        let total: u32 = counts.iter().sum();
        prop_assert_eq!(total as usize, plan.size());
    }

    /// Template hash depends on input names.
    #[test]
    fn template_hash_sensitive_to_inputs(plan in arb_plan(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(plan.template_hash(&[a]), plan.template_hash(&[b]));
    }
}
