//! The reusable plan-IR pass framework.
//!
//! A [`Pass`] inspects one logical plan (plus its observable catalog) and
//! appends findings to a [`LintReport`]. The default [`PassRegistry`] holds
//! the two passes that together subsume `scope_ir::validate_logical`: the
//! structural pass (root/arity/dangling edges, via the shared
//! [`scope_ir::check_structure`] core) and the table/column-provenance
//! dataflow pass (via [`scope_ir::check_provenance`]). Because both passes
//! call the exact functions `validate_logical` is built from, the registry's
//! error findings agree with the validator by construction — a property the
//! test suite pins down.

use scope_ir::validate::{check_provenance, check_structure, PlanViolation, StructuralNode};
use scope_ir::{ObservableCatalog, OpKind, PlanGraph};

use crate::report::{LintReport, Severity};

/// Everything a pass may look at.
pub struct PassContext<'a> {
    pub plan: &'a PlanGraph,
    pub obs: &'a ObservableCatalog,
}

/// One plan-IR lint pass.
pub trait Pass {
    /// Stable pass name (appears in findings and reports).
    fn name(&self) -> &'static str;
    fn run(&self, ctx: &PassContext<'_>, report: &mut LintReport);
}

/// Stable machine-readable slug for a plan violation class.
pub fn plan_violation_code(v: &PlanViolation) -> &'static str {
    match v {
        PlanViolation::NoRoot => "no-root",
        PlanViolation::RootNotOutput { .. } => "root-not-output",
        PlanViolation::BadArity { .. } => "bad-arity",
        PlanViolation::DanglingInput { .. } => "dangling-input",
        PlanViolation::UnknownTable { .. } => "unknown-table",
        PlanViolation::UnknownColumn { .. } => "unknown-column",
        PlanViolation::MissingExchange { .. } => "missing-exchange",
        PlanViolation::ExchangeSchemeMismatch { .. } => "exchange-scheme-mismatch",
        PlanViolation::NonFiniteEstimate { .. } => "non-finite-estimate",
        PlanViolation::NegativeEstimate { .. } => "negative-estimate",
        PlanViolation::BadParallelism { .. } => "bad-parallelism",
    }
}

fn push_plan_violations(pass: &'static str, violations: &[PlanViolation], report: &mut LintReport) {
    for v in violations {
        report.push(pass, Severity::Error, plan_violation_code(v), v.to_string());
    }
}

/// Structural invariants: rooted in `Output`, arity-correct, every child
/// edge resolves to an earlier arena node.
pub struct StructurePass;

impl Pass for StructurePass {
    fn name(&self) -> &'static str {
        "structure"
    }

    fn run(&self, ctx: &PassContext<'_>, report: &mut LintReport) {
        let mut out = Vec::new();
        check_structure(
            ctx.plan.root(),
            ctx.plan.len(),
            ctx.plan.reachable(),
            |id| {
                let node = ctx.plan.node(id);
                StructuralNode {
                    kind: node.op.kind().name(),
                    children: &node.children,
                    arity: node.op.arity(),
                    is_output: node.op.kind() == OpKind::Output,
                }
            },
            &mut out,
        );
        push_plan_violations(self.name(), &out, report);
    }
}

/// Table/column-provenance dataflow: every scanned table exists in the
/// observable catalog and every referenced column is produced by the
/// subtree below the reference (schema propagation over the DAG).
pub struct ProvenancePass;

impl Pass for ProvenancePass {
    fn name(&self) -> &'static str {
        "provenance"
    }

    fn run(&self, ctx: &PassContext<'_>, report: &mut LintReport) {
        // A rootless plan has an empty reachable set; the structure pass
        // reports it and there is no dataflow to check.
        if ctx.plan.root().is_none() {
            return;
        }
        let mut out = Vec::new();
        check_provenance(ctx.plan, ctx.obs, &mut out);
        push_plan_violations(self.name(), &out, report);
    }
}

/// An ordered collection of passes run as one unit.
pub struct PassRegistry {
    passes: Vec<Box<dyn Pass>>,
}

impl PassRegistry {
    /// An empty registry.
    pub fn new() -> PassRegistry {
        PassRegistry { passes: Vec::new() }
    }

    /// The default registry: structure then provenance — together
    /// equivalent to `scope_ir::validate_logical`.
    pub fn with_default_passes() -> PassRegistry {
        let mut r = PassRegistry::new();
        r.register(Box::new(StructurePass));
        r.register(Box::new(ProvenancePass));
        r
    }

    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass over one plan.
    pub fn run(&self, plan: &PlanGraph, obs: &ObservableCatalog) -> LintReport {
        let ctx = PassContext { plan, obs };
        let mut report = LintReport::default();
        for pass in &self.passes {
            pass.run(&ctx, &mut report);
        }
        report
    }
}

impl Default for PassRegistry {
    fn default() -> Self {
        Self::with_default_passes()
    }
}

/// Lint one logical plan with the default passes.
pub fn lint_plan(plan: &PlanGraph, obs: &ObservableCatalog) -> LintReport {
    PassRegistry::with_default_passes().run(plan, obs)
}
