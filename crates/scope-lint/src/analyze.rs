//! The config lattice checker: classify a [`RuleConfig`] against one job's
//! plan **without compiling anything**.
//!
//! [`JobLint::new`] runs the (cheap, pure) normalization pass once per job
//! and derives from the normalized operator counts:
//!
//! - `reachable` — the over-approximated set of kinds any memo expression
//!   can ever have under *any* config: the kinds present in the normalized
//!   plan, plus `Project` (the only kind exploration can introduce where
//!   none existed, via the `PruneBelow` family). Every rewrite in the
//!   catalog either keeps its anchor kind, hoists a kind already present
//!   below the match, or substitutes the match's child — so memo expression
//!   kinds are provably contained in this set.
//! - `live` — the rules that could possibly fire on this plan under some
//!   config: required rules, exchange impls, rules anchored on a reachable
//!   kind, and marker rules whose kind count meets their threshold (exact,
//!   because markers fire on normalized counts).
//!
//! [`JobLint::classify`] then produces the verdict lattice, in decreasing
//! precedence:
//!
//! - [`ConfigVerdict::Invalid`] — some present kind has no enabled
//!   implementation and no enabled escape route (fixpoint over
//!   [`scope_optimizer::AnchorRewrite`] edges): compilation is *certain* to fail. The escape
//!   analysis over-approximates implementability, so `Invalid` is sound —
//!   a config this analyzer rejects can never compile.
//! - [`ConfigVerdict::Redundant`] — the enabled set differs from its
//!   canonical projection `enabled ∩ live`. Two configs with equal
//!   canonical bits compile bit-identically (same plan, cost, signature,
//!   and task counts): non-live rules are never even iterated by the
//!   explore/implement loops, and marker liveness is exact.
//! - [`ConfigVerdict::Dead`] — compilable, but some enabled rules can
//!   never fire under *this* config (their kind is absent and every
//!   enabled producer is disabled). Diagnostic, not skippable.
//! - [`ConfigVerdict::Valid`] — nothing to report.

use scope_ir::{OpKind, PlanGraph};
use scope_optimizer::{normalized_kind_counts, RuleAction, RuleCatalog, RuleConfig, RuleSet};

use crate::rulegraph::RuleGraph;
use crate::violation::LintViolation;

/// The config lattice verdict. Precedence (what `classify` returns when
/// several apply): `Invalid > Redundant > Dead > Valid`.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigVerdict {
    /// Compiles, and every enabled rule could in principle fire.
    Valid,
    /// Compiles bit-identically to the config with bitset `canonical`
    /// (the enabled set projected onto this job's live rules).
    Redundant { canonical: RuleSet },
    /// Compiles, but these enabled rules can never fire on this plan under
    /// this config.
    Dead { rules: RuleSet },
    /// Certain to fail compilation; the violations say why.
    Invalid { violations: Vec<LintViolation> },
}

impl ConfigVerdict {
    /// Short label for counters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ConfigVerdict::Valid => "valid",
            ConfigVerdict::Redundant { .. } => "redundant",
            ConfigVerdict::Dead { .. } => "dead",
            ConfigVerdict::Invalid { .. } => "invalid",
        }
    }
}

/// Per-job static analyzer: normalized kind counts plus the derived
/// reachable-kind and live-rule sets (see module docs).
pub struct JobLint {
    kind_counts: [u32; OpKind::COUNT],
    reachable: [bool; OpKind::COUNT],
    live: RuleSet,
}

impl JobLint {
    /// Analyze one job plan. Runs normalization (cheap and pure); nothing
    /// is compiled.
    pub fn new(plan: &PlanGraph) -> JobLint {
        let cat = RuleCatalog::global();
        let kind_counts = normalized_kind_counts(plan);
        let mut reachable = [false; OpKind::COUNT];
        for kind in OpKind::ALL {
            reachable[kind as usize] = kind_counts[kind as usize] > 0;
        }
        // The one kind exploration can introduce where none existed:
        // `PruneBelow` inserts narrowing projections below its anchors.
        reachable[OpKind::Project as usize] = true;
        let mut live = *cat.required();
        for &id in cat.exchange_impls() {
            live.insert(id);
        }
        for rule in cat.rules() {
            if live.contains(rule.id) {
                continue;
            }
            let is_live = match &rule.action {
                // Markers fire on exact normalized counts, so liveness is
                // exact, not an approximation.
                RuleAction::Guard { kind, min_count } | RuleAction::Marker { kind, min_count } => {
                    kind_counts[*kind as usize] >= u32::from(*min_count)
                }
                RuleAction::Canonicalize(kind) => kind_counts[*kind as usize] > 0,
                action => match action.anchor() {
                    Some(kind) => reachable[kind as usize],
                    None => true,
                },
            };
            if is_live {
                live.insert(rule.id);
            }
        }
        JobLint {
            kind_counts,
            reachable,
            live,
        }
    }

    /// Normalized operator counts for the job's plan.
    pub fn kind_counts(&self) -> &[u32; OpKind::COUNT] {
        &self.kind_counts
    }

    /// Whether memo expressions of `kind` can exist for this plan.
    pub fn is_reachable(&self, kind: OpKind) -> bool {
        self.reachable[kind as usize]
    }

    /// The rules that could fire on this plan under some config.
    pub fn live(&self) -> &RuleSet {
        &self.live
    }

    /// The canonical projection of a config for this job: enabled ∩ live.
    /// Two configs with equal canonical bits compile bit-identically.
    pub fn canonical_bits(&self, config: &RuleConfig) -> RuleSet {
        config.enabled().intersection(&self.live)
    }

    /// Violations that make compilation *certain* to fail, via a fixpoint
    /// over implementability: a kind is implementable if it has an enabled
    /// implementation rule, an enabled `Child` escape, or an enabled
    /// `Becomes` escape into a reachable implementable kind. A present kind
    /// that is not implementable dooms its memo group — every alternative
    /// the group can ever hold keeps the kind.
    pub fn certain_failures(&self, config: &RuleConfig) -> Vec<LintViolation> {
        let graph = RuleGraph::global();
        let mut impl_ok = [false; OpKind::COUNT];
        for kind in OpKind::ALL {
            if !self.reachable[kind as usize] {
                continue;
            }
            impl_ok[kind as usize] = graph.impls(kind).iter().any(|id| config.is_enabled(id))
                || graph
                    .child_escapes(kind)
                    .iter()
                    .any(|id| config.is_enabled(id));
        }
        // Propagate Becomes-escapes to fixpoint (≤ OpKind::COUNT rounds).
        loop {
            let mut changed = false;
            for &(id, anchor, target) in graph.becomes_edges() {
                if config.is_enabled(id)
                    && self.reachable[anchor as usize]
                    && !impl_ok[anchor as usize]
                    && self.reachable[target as usize]
                    && impl_ok[target as usize]
                {
                    impl_ok[anchor as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut out = Vec::new();
        for kind in OpKind::ALL {
            if self.kind_counts[kind as usize] > 0 && !impl_ok[kind as usize] {
                out.push(LintViolation::NoImplementation {
                    kind,
                    disabled_impls: *graph.impls(kind),
                });
            }
        }
        // Exchange coverage is plan-dependent (only plans needing a
        // repartition fail), so an all-disabled exchange set is a warning
        // carried by `warnings`, not a certain failure.
        out
    }

    /// Warnings: suspicious but not certainly failing.
    pub fn warnings(&self, config: &RuleConfig) -> Vec<LintViolation> {
        let graph = RuleGraph::global();
        let cat = RuleCatalog::global();
        let mut out = Vec::new();
        if graph
            .exchange_impls()
            .iter()
            .all(|id| !config.is_enabled(id))
        {
            out.push(LintViolation::AllExchangeImplsDisabled);
        }
        out.extend(graph.swap_cycles(cat, config));
        out
    }

    /// Enabled rules that can never fire on this plan under this config:
    /// rules anchored on (or implementing) a kind that is absent and not
    /// producible because every enabled producer is disabled. Required
    /// rules are exempt (they are fixed, not configuration choices).
    pub fn dead_rules(&self, config: &RuleConfig) -> RuleSet {
        let cat = RuleCatalog::global();
        let graph = RuleGraph::global();
        let mut dead = RuleSet::EMPTY;
        for kind in OpKind::ALL {
            if self.kind_counts[kind as usize] > 0 || !self.reachable[kind as usize] {
                continue;
            }
            // Absent but reachable: only Project qualifies (see `new`).
            if graph.project_producible(cat, config, &self.kind_counts) {
                continue;
            }
            for id in graph.impls(kind).union(graph.transforms(kind)).iter() {
                if config.is_enabled(id) && !cat.required().contains(id) {
                    dead.insert(id);
                }
            }
        }
        dead
    }

    /// The lattice verdict (see [`ConfigVerdict`] for precedence).
    pub fn classify(&self, config: &RuleConfig) -> ConfigVerdict {
        let violations = self.certain_failures(config);
        if !violations.is_empty() {
            return ConfigVerdict::Invalid { violations };
        }
        let canonical = self.canonical_bits(config);
        if canonical != *config.enabled() {
            return ConfigVerdict::Redundant { canonical };
        }
        let dead = self.dead_rules(config);
        if !dead.is_empty() {
            return ConfigVerdict::Dead { rules: dead };
        }
        ConfigVerdict::Valid
    }
}

/// Plan-independent config defects: kinds every legal plan contains
/// (`Output` — both validators require an `Output` root) with no enabled
/// implementation and no escape. A config rejected here can compile no
/// job at all; deployment quarantines such hints at ingestion.
pub fn catalog_invalid(config: &RuleConfig) -> Vec<LintViolation> {
    let graph = RuleGraph::global();
    let mut out = Vec::new();
    // `Output` is the one kind every legal plan contains.
    let kind = OpKind::Output;
    let ok = graph.impls(kind).iter().any(|id| config.is_enabled(id))
        || graph
            .child_escapes(kind)
            .iter()
            .any(|id| config.is_enabled(id));
    // `Becomes` escapes cannot help: no rule rewrites an `Output` into
    // another kind (checked against the rule graph rather than assumed).
    let becomes_escape = graph
        .becomes_edges()
        .iter()
        .any(|&(id, anchor, _)| anchor == kind && config.is_enabled(id));
    if !ok && !becomes_escape {
        out.push(LintViolation::NoImplementation {
            kind,
            disabled_impls: *graph.impls(kind),
        });
    }
    out
}

/// Ingest raw config bits (hint files, external tooling): normalize through
/// [`RuleConfig::normalized`] and surface any required-rule correction as a
/// typed violation.
pub fn ingest_bits(bits: RuleSet) -> (RuleConfig, Option<LintViolation>) {
    let (config, correction) = RuleConfig::normalized(bits);
    let violation = if correction.is_empty() {
        None
    } else {
        Some(LintViolation::RequiredRuleCleared { rules: correction })
    };
    (config, violation)
}
