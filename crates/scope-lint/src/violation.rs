//! Typed diagnostics for configuration and catalog defects, mirroring the
//! plan-side [`scope_ir::validate::PlanViolation`] vocabulary: every finding
//! the analyzer can produce is an enum variant with the offending rules
//! attached, so callers can match on defect classes instead of parsing
//! strings.

use std::fmt;

use scope_ir::OpKind;
use scope_optimizer::{RuleCatalog, RuleId, RuleSet};

/// Which estimated quantity an [`LintViolation::EstimateOutOfBounds`]
/// finding is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundQuantity {
    /// Estimated output rows.
    Rows,
    /// Estimated output bytes (`rows × row_bytes`).
    Bytes,
    /// Estimated plan cost.
    Cost,
}

/// One violated configuration or catalog invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum LintViolation {
    /// A kind present in the plan has no enabled implementation rule and no
    /// enabled rewrite that could route around it: every alternative the
    /// memo can ever hold for that group keeps the kind, so compilation is
    /// certain to fail with `CompileError::NoImplementation`.
    NoImplementation {
        kind: OpKind,
        /// The (all disabled) implementation rules for the kind.
        disabled_impls: RuleSet,
    },
    /// An enabled set tried to clear required-rule bits; the normalizing
    /// constructor forced them back on and reported this correction.
    RequiredRuleCleared { rules: RuleSet },
    /// Every exchange implementation is disabled. Warning, not an error:
    /// only plans that need a repartition fail, and exchange need is a
    /// cost-model outcome the static analyzer does not predict.
    AllExchangeImplsDisabled,
    /// Enabled rules that can never fire on this plan under this config
    /// (their anchor kind is absent and every enabled producer of that kind
    /// is disabled).
    DeadRules { rules: RuleSet },
    /// An enabled implementation rule whose operator kind is absent from
    /// the plan and whose logical producers are all disabled.
    UnreachableImpl { rule: RuleId, kind: OpKind },
    /// Enabled unary-swap rules form a rewrite cycle over these kinds and
    /// every normalizer that would collapse the churn is disabled; the
    /// cycle terminates only through memo deduplication (correct, but
    /// budget-hungry).
    SwapCycleWithoutNormalizer {
        kinds: Vec<OpKind>,
        rules: Vec<RuleId>,
    },
    /// Catalog-level defect: a complex kind has no required
    /// canonicalization marker (catalog construction bug).
    MissingCanonicalizer { kind: OpKind },
    /// A point estimate escaped its abstract interval: the estimator
    /// derived a value the bounds analysis proved impossible under the
    /// catalog envelopes. Silent estimator drift, surfaced as a typed,
    /// testable defect.
    EstimateOutOfBounds {
        /// Plan node index (`NodeId` index into the audited `PlanGraph`).
        node: usize,
        kind: OpKind,
        quantity: BoundQuantity,
        point: f64,
        lo: f64,
        hi: f64,
    },
}

impl LintViolation {
    /// Stable machine-readable code for the violation class.
    pub fn code(&self) -> &'static str {
        match self {
            LintViolation::NoImplementation { .. } => "no-implementation",
            LintViolation::RequiredRuleCleared { .. } => "required-rule-cleared",
            LintViolation::AllExchangeImplsDisabled => "all-exchange-impls-disabled",
            LintViolation::DeadRules { .. } => "dead-rules",
            LintViolation::UnreachableImpl { .. } => "unreachable-impl",
            LintViolation::SwapCycleWithoutNormalizer { .. } => "swap-cycle-without-normalizer",
            LintViolation::MissingCanonicalizer { .. } => "missing-canonicalizer",
            LintViolation::EstimateOutOfBounds { .. } => "estimate-out-of-bounds",
        }
    }
}

fn names(set: &RuleSet) -> String {
    let cat = RuleCatalog::global();
    set.iter()
        .map(|id| cat.rule(id).name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintViolation::NoImplementation {
                kind,
                disabled_impls,
            } => write!(
                f,
                "{kind:?} cannot be implemented: all of [{}] are disabled and no enabled rewrite removes it",
                names(disabled_impls)
            ),
            LintViolation::RequiredRuleCleared { rules } => {
                write!(f, "required rules cleared (forced back on): [{}]", names(rules))
            }
            LintViolation::AllExchangeImplsDisabled => {
                write!(f, "all exchange implementations are disabled; any plan needing a repartition will fail")
            }
            LintViolation::DeadRules { rules } => {
                write!(f, "enabled rules that can never fire on this plan: [{}]", names(rules))
            }
            LintViolation::UnreachableImpl { rule, kind } => write!(
                f,
                "implementation rule {} targets {kind:?}, which is absent and has no enabled producer",
                RuleCatalog::global().rule(*rule).name
            ),
            LintViolation::SwapCycleWithoutNormalizer { kinds, rules } => write!(
                f,
                "unary-swap cycle over {kinds:?} ({} rules) with every terminating normalizer disabled",
                rules.len()
            ),
            LintViolation::MissingCanonicalizer { kind } => {
                write!(f, "complex kind {kind:?} has no required canonicalization marker")
            }
            LintViolation::EstimateOutOfBounds {
                node,
                kind,
                quantity,
                point,
                lo,
                hi,
            } => write!(
                f,
                "node {node} ({kind:?}): estimated {quantity:?} {point} escapes its sound interval [{lo}, {hi}]"
            ),
        }
    }
}
