//! The rule dependency/implication graph, extracted once from the catalog.
//!
//! Nodes are operator kinds; edges are what rules can do to them: an
//! implementation rule *covers* its kind, a `Becomes`/`Child` rewrite lets a
//! group *escape* its kind, a `PruneBelow` rule *produces* `Project` nodes
//! that did not exist before, and `SwapUnary` rules form a kind-commutation
//! digraph whose cycles are only kept finite by the collapse normalizers
//! (or, failing those, by memo deduplication). Everything here is derived
//! from [`RuleAction::anchor_rewrite`] metadata — no plan is compiled.

use scope_ir::OpKind;
use scope_optimizer::rules::catalog::COMPLEX_KINDS;
use scope_optimizer::{AnchorRewrite, RuleAction, RuleCatalog, RuleConfig, RuleId, RuleSet};

use crate::violation::LintViolation;

/// Catalog-wide rule relationships, indexed by operator kind.
pub struct RuleGraph {
    /// Implementation rules per kind (exchange impls excluded).
    impls: Vec<RuleSet>,
    /// Transformation rules anchored on each kind.
    transforms: Vec<RuleSet>,
    /// `Becomes` escape edges: `(rule, anchor, target)`.
    becomes: Vec<(RuleId, OpKind, OpKind)>,
    /// `Child` escape rules per anchor kind (replace the match with its
    /// input of unknown kind).
    child_escapes: Vec<RuleSet>,
    /// `SwapUnary` edges `(rule, parent, child)` — the commutation digraph.
    swaps: Vec<(RuleId, OpKind, OpKind)>,
    /// Rules that introduce `Project` nodes where none existed, per anchor
    /// kind (the `PruneBelow` family — the only producers in the catalog).
    project_producers: RuleSet,
    /// Exchange implementation rules.
    exchange_impls: RuleSet,
}

impl RuleGraph {
    /// The process-wide graph (derived from the global catalog).
    pub fn global() -> &'static RuleGraph {
        static GRAPH: std::sync::OnceLock<RuleGraph> = std::sync::OnceLock::new();
        GRAPH.get_or_init(|| RuleGraph::from_catalog(RuleCatalog::global()))
    }

    pub fn from_catalog(cat: &RuleCatalog) -> RuleGraph {
        let mut impls = vec![RuleSet::EMPTY; OpKind::COUNT];
        let mut transforms = vec![RuleSet::EMPTY; OpKind::COUNT];
        let mut becomes = Vec::new();
        let mut child_escapes = vec![RuleSet::EMPTY; OpKind::COUNT];
        let mut swaps = Vec::new();
        let mut project_producers = RuleSet::EMPTY;
        let mut exchange_impls = RuleSet::EMPTY;
        for rule in cat.rules() {
            match &rule.action {
                RuleAction::Impl(p) => match p.implements() {
                    Some(kind) => impls[kind as usize].insert(rule.id),
                    None => exchange_impls.insert(rule.id),
                },
                action if action.is_transformation() => {
                    let anchor = action.anchor().expect("transformations are anchored");
                    transforms[anchor as usize].insert(rule.id);
                    match action.anchor_rewrite() {
                        AnchorRewrite::Keeps => {}
                        AnchorRewrite::Becomes(target) => becomes.push((rule.id, anchor, target)),
                        AnchorRewrite::Child => child_escapes[anchor as usize].insert(rule.id),
                    }
                    if let RuleAction::SwapUnary { parent, child, .. } = action {
                        swaps.push((rule.id, *parent, *child));
                    }
                    if matches!(action, RuleAction::PruneBelow { .. }) {
                        project_producers.insert(rule.id);
                    }
                }
                _ => {}
            }
        }
        RuleGraph {
            impls,
            transforms,
            becomes,
            child_escapes,
            swaps,
            project_producers,
            exchange_impls,
        }
    }

    /// Implementation rules for `kind`.
    pub fn impls(&self, kind: OpKind) -> &RuleSet {
        &self.impls[kind as usize]
    }

    /// Transformation rules anchored on `kind`.
    pub fn transforms(&self, kind: OpKind) -> &RuleSet {
        &self.transforms[kind as usize]
    }

    /// `Becomes` escape edges `(rule, anchor, target)`.
    pub fn becomes_edges(&self) -> &[(RuleId, OpKind, OpKind)] {
        &self.becomes
    }

    /// `Child` escape rules anchored on `kind`.
    pub fn child_escapes(&self, kind: OpKind) -> &RuleSet {
        &self.child_escapes[kind as usize]
    }

    /// Rules that can introduce `Project` nodes where none existed.
    pub fn project_producers(&self) -> &RuleSet {
        &self.project_producers
    }

    /// Exchange implementation rules.
    pub fn exchange_impls(&self) -> &RuleSet {
        &self.exchange_impls
    }

    /// Catalog sanity: every complex kind must carry a required
    /// canonicalization marker (the paper's `Normalize*` rules). Returns
    /// `MissingCanonicalizer` violations — empty for a well-built catalog.
    pub fn required_coverage(&self, cat: &RuleCatalog) -> Vec<LintViolation> {
        let mut out = Vec::new();
        for kind in COMPLEX_KINDS {
            let covered = cat.rules().iter().any(|r| {
                cat.required().contains(r.id)
                    && matches!(&r.action, RuleAction::Canonicalize(k) if *k == kind)
            });
            if !covered {
                out.push(LintViolation::MissingCanonicalizer { kind });
            }
        }
        out
    }

    /// Enabled implementation rules whose kind is absent from the plan
    /// (`kind_counts`) and whose logical producers are all disabled — the
    /// "statically dead rules" of the issue. Only `Project` has producers
    /// (`PruneBelow`); every other absent kind's impls are dead outright.
    pub fn statically_dead_impls(
        &self,
        cat: &RuleCatalog,
        config: &RuleConfig,
        kind_counts: &[u32; OpKind::COUNT],
    ) -> Vec<LintViolation> {
        let mut out = Vec::new();
        for kind in OpKind::ALL {
            if kind_counts[kind as usize] > 0 {
                continue;
            }
            if kind == OpKind::Project && self.project_producible(cat, config, kind_counts) {
                continue;
            }
            for rule in self.impls(kind).iter() {
                if config.is_enabled(rule) {
                    out.push(LintViolation::UnreachableImpl { rule, kind });
                }
            }
        }
        out
    }

    /// Whether some enabled `PruneBelow` rule is anchored on a kind the
    /// plan actually contains — i.e. whether exploration can introduce
    /// `Project` nodes into a `Project`-free plan under `config`.
    pub fn project_producible(
        &self,
        cat: &RuleCatalog,
        config: &RuleConfig,
        kind_counts: &[u32; OpKind::COUNT],
    ) -> bool {
        self.project_producers.iter().any(|id| {
            config.is_enabled(id)
                && cat
                    .rule(id)
                    .action
                    .anchor()
                    .is_some_and(|a| kind_counts[a as usize] > 0)
        })
    }

    /// Cycles in the enabled `SwapUnary` commutation digraph whose
    /// terminating normalizers are all disabled. Each strongly-connected
    /// kind component with a cycle is reported once, with the enabled swap
    /// rules whose both endpoints lie inside it.
    pub fn swap_cycles(&self, cat: &RuleCatalog, config: &RuleConfig) -> Vec<LintViolation> {
        // Adjacency over the 14 kinds, enabled edges only.
        let n = OpKind::COUNT;
        let mut adj = vec![Vec::new(); n];
        for &(id, parent, child) in &self.swaps {
            if config.is_enabled(id) {
                adj[parent as usize].push(child as usize);
            }
        }
        // Kosaraju-style SCCs on a 14-node graph.
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        fn dfs(v: usize, adj: &[Vec<usize>], seen: &mut [bool], order: &mut Vec<usize>) {
            seen[v] = true;
            for &w in &adj[v] {
                if !seen[w] {
                    dfs(w, adj, seen, order);
                }
            }
            order.push(v);
        }
        for v in 0..n {
            if !seen[v] {
                dfs(v, &adj, &mut seen, &mut order);
            }
        }
        let mut radj = vec![Vec::new(); n];
        for (v, ws) in adj.iter().enumerate() {
            for &w in ws {
                radj[w].push(v);
            }
        }
        let mut comp = vec![usize::MAX; n];
        let mut n_comps = 0;
        for &v in order.iter().rev() {
            if comp[v] != usize::MAX {
                continue;
            }
            let mut stack = vec![v];
            comp[v] = n_comps;
            while let Some(x) = stack.pop() {
                for &w in &radj[x] {
                    if comp[w] == usize::MAX {
                        comp[w] = n_comps;
                        stack.push(w);
                    }
                }
            }
            n_comps += 1;
        }
        // A component cycles iff it has ≥2 kinds or a self-loop.
        let mut out = Vec::new();
        for c in 0..n_comps {
            let kinds: Vec<OpKind> = OpKind::ALL
                .into_iter()
                .filter(|&k| comp[k as usize] == c)
                .collect();
            let cyclic = kinds.len() >= 2
                || kinds
                    .iter()
                    .any(|&k| adj[k as usize].contains(&(k as usize)));
            if !cyclic {
                continue;
            }
            let rules: Vec<RuleId> = self
                .swaps
                .iter()
                .filter(|&&(id, p, ch)| {
                    config.is_enabled(id) && comp[p as usize] == c && comp[ch as usize] == c
                })
                .map(|&(id, _, _)| id)
                .collect();
            if self.cycle_normalizer_enabled(cat, config, &kinds) {
                continue;
            }
            out.push(LintViolation::SwapCycleWithoutNormalizer { kinds, rules });
        }
        out
    }

    /// Whether any normalizer that collapses same-kind churn for a kind in
    /// the cycle is enabled (`CollapseSame`, `CollapseFilters`,
    /// `MergeProjects`).
    fn cycle_normalizer_enabled(
        &self,
        cat: &RuleCatalog,
        config: &RuleConfig,
        kinds: &[OpKind],
    ) -> bool {
        cat.rules().iter().any(|r| {
            config.is_enabled(r.id)
                && match &r.action {
                    RuleAction::CollapseSame(k) => kinds.contains(k),
                    RuleAction::CollapseFilters => kinds.contains(&OpKind::Filter),
                    RuleAction::MergeProjects => kinds.contains(&OpKind::Project),
                    _ => false,
                }
        })
    }
}
