//! Abstract interpretation over `scope-ir` plan graphs: guaranteed
//! `[lo, hi]` intervals for rows, bytes, and estimated cost.
//!
//! The analysis has two layers with different soundness obligations:
//!
//! **Per-node rows/bytes intervals** (the abstract domain is
//! [`scope_ir::Interval`], a closed non-negative interval). Transfer
//! functions mirror [`Estimator::derive`] exactly, evaluated at the child
//! interval endpoints — every derivation arm is monotone in its child
//! estimates for fixed operator metadata, so endpoint evaluation is exact
//! interval arithmetic. The only non-monotone ingredient is the
//! *order-sensitive* conjunction backoff, which steering rules can reorder;
//! it is replaced by a catalog-derivable envelope:
//!
//! * `sel_lo` = full-strength product of *all* atom selectivities (every
//!   damped, truncated-to-four product dominates it, because selectivities
//!   lie in `(0, 1]` and backoff exponents are `≤ 1`),
//! * `sel_hi` = the rearrangement-maximal backoff product (the four largest
//!   selectivities, largest paired with the largest exponent) — an upper
//!   bound over every atom order any `ReorderAtoms` rule can produce.
//!
//! By induction over the (children-first) plan order, the live estimator's
//! point estimate for every node lies inside its interval; violations are
//! reported by [`audit_estimates`] as typed
//! [`LintViolation::EstimateOutOfBounds`] findings.
//!
//! **Whole-plan cost bounds** ([`PlanBounds::cost_lo`] /
//! [`PlanBounds::cost_hi`]), which must hold for the *winning plan of any
//! rule configuration* — i.e. survive every enabled rewrite the memo search
//! may apply. Naive per-node cost intervals are unsound here (associativity
//! rules reshape join inputs arbitrarily; filter pushdown changes every
//! intermediate estimate), so the lower bound is built only from quantities
//! rewrites provably preserve:
//!
//! * The plan is hash-consed into *canonical* nodes (after the required
//!   `Get→RangeGet` / `Select→Filter` normalizers), mirroring memo ingest —
//!   a shared subtree is counted once, matching the extracted plan's
//!   DAG-shared cost accounting.
//! * Only *mandatory* kinds contribute: scans, joins, group-bys, processes.
//!   No catalog rule can eliminate or merge nodes of these kinds (rewrites
//!   may *replicate* them below unions, which only adds cost), so the
//!   extracted physical plan of any compiling configuration contains at
//!   least as many operators of each mandatory kind (per table, for scans)
//!   as the canonical plan. Eliminable kinds (`Filter`, `Project`, `Top`,
//!   `Sort`, `UnionAll`, `VirtualDataset`) and merge-prone ones (`Window`
//!   via `CollapseSame`) contribute zero.
//! * Each mandatory node contributes the minimum, over the configuration's
//!   *enabled* implementation rules for its kind, of that implementation's
//!   cost floor: the cost-model formula evaluated at provably-minimal
//!   inputs (estimates are floored at one row) and minimized over every
//!   degree-of-parallelism tier. Scan floors dominate in practice because
//!   the raw bytes a scan reads ([`cost::raw_scan_bytes`]) depend only on
//!   the table — a rewrite- and configuration-invariant quantity.
//!
//! The upper bound [`PlanBounds::cost_hi`] bounds the *winner* via one
//! explicit feasible alternative: implementing the normalized plan directly,
//! charging each node the maximum enabled implementation cost at
//! interval-`hi` inputs (maximized over all DOP tiers) plus a worst-case
//! exchange per child edge. It applies (`Some`) only when that direct
//! alternative is guaranteed feasible: every present kind keeps at least
//! one enabled implementation and all exchange implementations are enabled
//! — always true for the default configuration. Both bounds carry a tiny
//! relative slack (`COST_SLACK`) absorbing the float jitter of extraction's
//! own-cost accounting.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::Hasher;

use scope_ir::{
    Interval, JoinKind, LogicalOp, NodeId, ObservableCatalog, OpKind, PlanGraph, Predicate,
};
use scope_optimizer::cost::{
    dop_for_bytes, raw_scan_bytes, CostModel, CostWeights, C_CPU_ROW, C_HASH_ROW, C_IO, C_NET,
    C_SORT_ROW, C_UDO_ROW, C_VERTEX, DOP_TIERS,
};
use scope_optimizer::estimate::{Estimator, LogicalEst};
use scope_optimizer::{PhysImpl, RuleAction, RuleCatalog, RuleId, RuleSet};

use crate::violation::{BoundQuantity, LintViolation};

/// Relative slack on the whole-plan cost bounds, absorbing float jitter in
/// extraction's `own_cost = winner − children − exchanges` accounting.
const COST_SLACK: f64 = 1e-6;

/// Relative slack on per-node rows/bytes intervals, absorbing `powf` /
/// product-associativity jitter between the live estimator and the
/// envelope computation.
const EST_SLACK: f64 = 1e-9;

/// Per-implementation cost table: `(carrying rule, bound value)`.
#[derive(Debug)]
struct ImplTable {
    entries: Vec<(RuleId, f64)>,
}

impl ImplTable {
    /// Minimum over enabled entries; over all entries when the config
    /// disables every implementation of the kind (then compilation fails
    /// anyway, and the all-impl minimum stays sound).
    fn min_enabled(&self, enabled: &RuleSet) -> f64 {
        let over_enabled = self
            .entries
            .iter()
            .filter(|(r, _)| enabled.contains(*r))
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        if over_enabled.is_finite() {
            over_enabled
        } else {
            self.entries
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min)
                .clamp(0.0, f64::MAX)
        }
    }

    /// Maximum over enabled entries (0 when none enabled — callers gate on
    /// feasibility first).
    fn max_enabled(&self, enabled: &RuleSet) -> f64 {
        self.entries
            .iter()
            .filter(|(r, _)| enabled.contains(*r))
            .map(|(_, v)| *v)
            .fold(0.0f64, f64::max)
    }
}

/// Per-node ingredients of the direct-plan cost upper bound.
#[derive(Debug)]
struct HiTerm {
    /// Per-implementation cost at interval-`hi` inputs, maxed over tiers.
    impls: ImplTable,
    /// Worst-case exchange cost summed over this node's child edges.
    exchange: f64,
}

/// Sound `[lo, hi]` intervals for one plan: per-node rows/bytes plus
/// whole-plan cost bounds parameterized by the enabled rule set.
#[derive(Debug)]
pub struct PlanBounds {
    rows: Vec<Interval>,
    row_bytes: Vec<Interval>,
    order: Vec<NodeId>,
    children: Vec<Vec<usize>>,
    root: Option<NodeId>,
    kinds_present: [bool; OpKind::COUNT],
    floor_terms: Vec<ImplTable>,
    hi_terms: Vec<Option<HiTerm>>,
}

impl PlanBounds {
    /// Run the abstract interpretation over `plan` with the observable
    /// catalog `obs`. Total: garbage inputs widen intervals, they never
    /// panic.
    pub fn analyze(plan: &PlanGraph, obs: &ObservableCatalog) -> PlanBounds {
        let est = Estimator::new(obs);
        let order = plan.reachable();
        let n = plan.len();
        let mut b = PlanBounds {
            rows: vec![Interval::ZERO; n],
            row_bytes: vec![Interval::ZERO; n],
            order,
            children: vec![Vec::new(); n],
            root: plan.root(),
            kinds_present: [false; OpKind::COUNT],
            floor_terms: Vec::new(),
            hi_terms: (0..n).map(|_| None).collect(),
        };
        // Canonical hash-consing (memo-ingest mirror): nodes with identical
        // normalized op and identical canonical children collapse into one
        // canonical id. Hash collisions can only merge more nodes, which
        // only lowers the floor sum — sound.
        let mut canon: HashMap<(u64, Vec<usize>), usize> = HashMap::new();
        let mut canon_id: Vec<usize> = vec![usize::MAX; n];
        let order = b.order.clone();
        for &id in &order {
            let node = plan.node(id);
            let nop = normalize_op(&node.op);
            let kind = nop.kind();
            b.kinds_present[kind as usize] = true;
            b.children[id.index()] = node.children.iter().map(|c| c.index()).collect();

            // Rows / bytes interval transfer.
            let (rows, row_bytes) = b.transfer(&est, &nop, &node.children, obs);
            b.rows[id.index()] = widen(rows);
            b.row_bytes[id.index()] = widen(row_bytes);

            // Canonical floor terms for mandatory kinds.
            let kids: Vec<usize> = node.children.iter().map(|c| canon_id[c.index()]).collect();
            let mut h = DefaultHasher::new();
            nop.memo_hash(&mut h);
            let next = canon.len();
            let entry = *canon.entry((h.finish(), kids)).or_insert(next);
            canon_id[id.index()] = entry;
            if entry == next && is_floor_kind(kind) {
                b.floor_terms.push(floor_table(&nop, obs));
            }

            // Direct-plan upper-bound term.
            b.hi_terms[id.index()] = Some(b.hi_term(&nop, &node.children, obs));
        }
        b
    }

    /// Reachable node ids, children first.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Interval for a node's estimated output rows.
    pub fn rows(&self, id: NodeId) -> Interval {
        self.rows[id.index()]
    }

    /// Interval for a node's estimated bytes per row.
    pub fn row_bytes(&self, id: NodeId) -> Interval {
        self.row_bytes[id.index()]
    }

    /// Interval for a node's estimated total bytes.
    pub fn bytes(&self, id: NodeId) -> Interval {
        self.rows[id.index()].mul(&self.row_bytes[id.index()])
    }

    /// Guaranteed lower bound on the estimated cost of *any* plan the
    /// optimizer can compile for this job under a configuration with
    /// `enabled` rules. Always finite and `≥ 0`.
    pub fn cost_lo(&self, enabled: &RuleSet) -> f64 {
        let sum: f64 = self
            .floor_terms
            .iter()
            .map(|t| t.min_enabled(enabled))
            .sum();
        (sum * (1.0 - COST_SLACK)).max(0.0)
    }

    /// Upper bound on the *winning* plan's estimated cost under `enabled`,
    /// via the directly-implemented normalized plan. `None` when that
    /// alternative is not provably feasible (some present kind has every
    /// implementation disabled, or an exchange implementation is disabled);
    /// always `Some` for the default configuration.
    pub fn cost_hi(&self, enabled: &RuleSet) -> Option<f64> {
        let cat = RuleCatalog::global();
        for kind in OpKind::ALL {
            if self.kinds_present[kind as usize]
                && !cat.impls_for(kind).is_empty()
                && !cat.impls_for(kind).iter().any(|id| enabled.contains(*id))
            {
                return None;
            }
        }
        if !cat.exchange_impls().iter().all(|id| enabled.contains(*id)) {
            return None;
        }
        let root = self.root?;
        // Tree-weighted recursion (shared nodes counted once per
        // reference), matching the search's per-reference winner-cost
        // accounting, which dominates the extracted DAG's cost.
        let mut total = vec![0.0f64; self.rows.len()];
        for &id in &self.order {
            let i = id.index();
            let t = self.hi_terms[i].as_ref()?;
            let kids: f64 = self.children[i].iter().map(|&c| total[c]).sum();
            total[i] = t.impls.max_enabled(enabled) + t.exchange + kids;
        }
        let v = total[root.index()] * (1.0 + COST_SLACK);
        v.is_finite().then_some(v)
    }

    /// [`Self::cost_lo`] under an arbitrary [`CostModel`]: a guaranteed
    /// lower bound on the *corrected, scalarized* cost of any compilable
    /// plan. The floor formulas are derived for the classic
    /// [`CostWeights::DEFAULT`] fold, where every charged component (cpu,
    /// io, net, vertices) is non-negative and enters at weight 1; a
    /// correction multiplies cpu by its cpu factor and io+net by its io
    /// factor while leaving vertices unscaled, so the corrected scalar is
    /// bracketed by `[span_lo · scalar, span_hi · scalar]` with
    /// [`correction_span`]. Under the identity model the result is
    /// bit-identical to [`Self::cost_lo`] (`x · 1.0 == x`). Non-default
    /// *weights* invalidate the hand-derived formulas, so the bound
    /// degrades to the trivially sound `0.0`.
    pub fn cost_lo_model(&self, enabled: &RuleSet, model: &CostModel) -> f64 {
        match correction_span(model) {
            Some((lo_f, _)) => self.cost_lo(enabled) * lo_f,
            None => 0.0,
        }
    }

    /// [`Self::cost_hi`] under an arbitrary [`CostModel`] (see
    /// [`Self::cost_lo_model`] for the widening argument). `None` when the
    /// direct alternative is not provably feasible *or* the model's
    /// weights leave the hand-derived formulas' regime.
    pub fn cost_hi_model(&self, enabled: &RuleSet, model: &CostModel) -> Option<f64> {
        let (_, hi_f) = correction_span(model)?;
        self.cost_hi(enabled).map(|v| v * hi_f)
    }

    /// Sound per-component bracket of the whole-plan cost vector of any
    /// compilable plan under `enabled` and `model`. Each charged component
    /// is non-negative and enters the DEFAULT scalar at weight 1, so each
    /// is individually bounded by the (model-widened) scalar upper bound;
    /// the advisory components (rows, memory) carry weight 0 and get the
    /// trivial bracket. Corrections can only widen these intervals, never
    /// rotate a component outside them.
    pub fn cost_components_model(&self, enabled: &RuleSet, model: &CostModel) -> ComponentBounds {
        let hi = self.cost_hi_model(enabled, model).unwrap_or(f64::INFINITY);
        let charged = (0.0, hi);
        ComponentBounds {
            rows: (0.0, f64::INFINITY),
            cpu: charged,
            io: charged,
            net: charged,
            memory: (0.0, f64::INFINITY),
            vertices: charged,
        }
    }

    /// [`Self::cost_components_model`] under the identity model.
    pub fn cost_components(&self, enabled: &RuleSet) -> ComponentBounds {
        self.cost_components_model(enabled, &CostModel::DEFAULT)
    }

    /// Interval transfer for one normalized operator given its children's
    /// already-computed intervals. Each arm evaluates the corresponding
    /// [`Estimator::derive`] formula at the child interval endpoints; all
    /// arms are monotone for fixed metadata, so this is exact.
    fn transfer(
        &self,
        est: &Estimator<'_>,
        op: &LogicalOp,
        children: &[NodeId],
        obs: &ObservableCatalog,
    ) -> (Interval, Interval) {
        let kid = |i: usize| -> (Interval, Interval) {
            children
                .get(i)
                .map(|c| (self.rows[c.index()], self.row_bytes[c.index()]))
                .unwrap_or((Interval::point(1.0), Interval::ZERO))
        };
        match op {
            LogicalOp::Get { table } => {
                // Normalized away; kept total for robustness.
                let t = obs.table_rows(*table) as f64;
                (
                    Interval::point(t.max(1.0)),
                    Interval::point(obs.table_row_bytes(*table) as f64),
                )
            }
            LogicalOp::RangeGet { table, pushed } => {
                let t = obs.table_rows(*table) as f64;
                let (slo, shi) = sel_envelope(est, pushed);
                (
                    Interval::new((t * slo).max(1.0), (t * shi).max(1.0)),
                    Interval::point(obs.table_row_bytes(*table) as f64),
                )
            }
            LogicalOp::Select { predicate } | LogicalOp::Filter { predicate } => {
                let (r, rb) = kid(0);
                let (slo, shi) = sel_envelope(est, predicate);
                (
                    Interval::new((r.lo() * slo).max(1.0), (r.hi() * shi).max(1.0)),
                    rb,
                )
            }
            LogicalOp::Project { cols, computed } => {
                let (r, _) = kid(0);
                (
                    r,
                    Interval::point(12.0 + 8.0 * (cols.len() + *computed as usize) as f64),
                )
            }
            LogicalOp::Join { kind, keys } => {
                let (l, lb) = kid(0);
                let (r, rb) = kid(1);
                let rows_at = |lr: f64, rr: f64| -> f64 {
                    let mut rows = match keys.first() {
                        Some(&(lk, rk)) => {
                            let ndv = obs.col_ndv(lk).max(obs.col_ndv(rk)).max(1);
                            lr * rr / ndv as f64
                        }
                        None => lr * rr,
                    };
                    for _ in keys.iter().skip(1) {
                        rows *= 0.3;
                    }
                    rows = match kind {
                        JoinKind::Inner => rows,
                        JoinKind::LeftOuter => rows.max(lr),
                        JoinKind::Semi => (lr * 0.7).min(rows).max(1.0),
                    };
                    rows.max(1.0)
                };
                let rows = Interval::new(rows_at(l.lo(), r.lo()), rows_at(l.hi(), r.hi()));
                let row_bytes = match kind {
                    JoinKind::Semi => lb,
                    _ => lb.add(&rb),
                };
                (rows, row_bytes)
            }
            LogicalOp::GroupBy {
                keys,
                aggs,
                partial,
            } => {
                let (c, _) = kid(0);
                let mut groups = 1.0f64;
                for &k in keys {
                    groups *= obs.col_ndv(k) as f64;
                }
                let rows_at = |cr: f64| -> f64 {
                    let rows = if *partial {
                        (groups * 50.0).min(cr)
                    } else {
                        groups.min(cr * 0.9)
                    };
                    rows.max(1.0)
                };
                (
                    Interval::new(rows_at(c.lo()), rows_at(c.hi())),
                    Interval::point(16.0 + 8.0 * (keys.len() + aggs.len()) as f64),
                )
            }
            LogicalOp::UnionAll | LogicalOp::VirtualDataset => {
                let mut rows = Interval::ZERO;
                let mut row_bytes = Interval::ZERO;
                for i in 0..children.len() {
                    let (r, rb) = kid(i);
                    rows = rows.add(&r);
                    row_bytes = row_bytes.max(&rb);
                }
                (rows.floor_at(1.0), row_bytes)
            }
            LogicalOp::Top { k } => {
                let (c, rb) = kid(0);
                let kf = *k as f64;
                (
                    Interval::new(kf.min(c.lo()).max(1.0), kf.min(c.hi()).max(1.0)),
                    rb,
                )
            }
            LogicalOp::Sort { .. } | LogicalOp::Window { .. } | LogicalOp::Output { .. } => kid(0),
            LogicalOp::Process { .. } => {
                let (c, rb) = kid(0);
                let udo = scope_ir::catalog::DEFAULT_UDO_SELECTIVITY;
                (
                    Interval::new((c.lo() * udo).max(1.0), (c.hi() * udo).max(1.0)),
                    rb.scale(1.2),
                )
            }
        }
    }

    /// The direct-plan upper-bound term for one node: every implementation
    /// of the node's kind costed at interval-`hi` inputs (maxed over all
    /// DOP tiers), plus a worst-case exchange per child edge.
    fn hi_term(&self, op: &LogicalOp, children: &[NodeId], obs: &ObservableCatalog) -> HiTerm {
        let cat = RuleCatalog::global();
        let kind = op.kind();
        let kid_rows: Vec<f64> = children.iter().map(|c| self.rows[c.index()].hi()).collect();
        let kid_bytes: Vec<f64> = children.iter().map(|c| self.bytes(*c).hi()).collect();
        let mut entries = Vec::new();
        for &rid in cat.impls_for(kind) {
            if let RuleAction::Impl(p) = cat.rule(rid).action {
                entries.push((
                    rid,
                    impl_hi(p, op, self, children, &kid_rows, &kid_bytes, obs),
                ));
            }
        }
        let exchange: f64 = kid_bytes.iter().map(|&b| worst_exchange(b)).sum();
        HiTerm {
            impls: ImplTable { entries },
            exchange,
        }
    }
}

/// Widen an interval by the relative estimator slack.
fn widen(i: Interval) -> Interval {
    Interval::new(i.lo() * (1.0 - EST_SLACK), i.hi() * (1.0 + EST_SLACK))
}

/// Per-component `[lo, hi]` brackets of a whole-plan cost vector (see
/// [`PlanBounds::cost_components_model`]). Mirrors the axes of
/// `scope_optimizer::CostEstimate`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentBounds {
    pub rows: (f64, f64),
    pub cpu: (f64, f64),
    pub io: (f64, f64),
    pub net: (f64, f64),
    pub memory: (f64, f64),
    pub vertices: (f64, f64),
}

impl ComponentBounds {
    /// Whether a concrete cost vector lies inside every bracket.
    pub fn contains(&self, c: &scope_optimizer::CostEstimate) -> bool {
        let inside = |(lo, hi): (f64, f64), v: f64| lo <= v && v <= hi;
        inside(self.rows, c.rows)
            && inside(self.cpu, c.cpu)
            && inside(self.io, c.io)
            && inside(self.net, c.net)
            && inside(self.memory, c.memory)
            && inside(self.vertices, c.vertices)
    }
}

/// The multiplicative span a model's corrections can move any
/// DEFAULT-weight scalarized cost by: corrections scale cpu by one factor
/// and io+net by another (vertices stay unscaled; rows and memory carry
/// weight 0), so every corrected scalar lies in
/// `[min(1, f_cpu, f_io), max(1, f_cpu, f_io)]` times the uncorrected one.
/// `None` when the model's weights are not the DEFAULT fold the
/// hand-derived bound formulas mirror, or the corrections are degenerate —
/// callers fall back to trivial bounds.
fn correction_span(model: &CostModel) -> Option<(f64, f64)> {
    if model.weights != CostWeights::DEFAULT || !model.corrections.is_valid() {
        return None;
    }
    let c = model.corrections;
    Some((c.cpu.min(c.io).min(1.0), c.cpu.max(c.io).max(1.0)))
}

/// The required normalizers, applied op-locally (mirrors
/// `scope_optimizer::normalize`, which is 1:1 on nodes).
fn normalize_op(op: &LogicalOp) -> LogicalOp {
    match op {
        LogicalOp::Get { table } => LogicalOp::RangeGet {
            table: *table,
            pushed: Predicate::true_pred(),
        },
        LogicalOp::Select { predicate } => LogicalOp::Filter {
            predicate: predicate.clone(),
        },
        other => other.clone(),
    }
}

/// Mandatory kinds that contribute cost floors: no catalog rule can
/// eliminate or merge nodes of these kinds (see module docs). `Window` is
/// excluded because `CollapseSame(Window)` can merge stacked windows;
/// `Output` contributes a zero floor anyway (`in_bytes·C_IO/dop` has no
/// vertex term and its input estimate is not rewrite-invariant).
fn is_floor_kind(kind: OpKind) -> bool {
    matches!(
        kind,
        OpKind::RangeGet | OpKind::Join | OpKind::GroupBy | OpKind::Process
    )
}

/// The order-invariant selectivity envelope of a conjunction (see module
/// docs): `lo` is the full-strength all-atoms product, `hi` the
/// rearrangement-maximal backoff product. Both clamped into the
/// estimator's `[1e-9, 1]` range; every `conj_selectivity` value for every
/// atom order lies inside.
fn sel_envelope(est: &Estimator<'_>, pred: &Predicate) -> (f64, f64) {
    if pred.is_true() || pred.atoms.is_empty() {
        return (1.0, 1.0);
    }
    let mut sels: Vec<f64> = pred.atoms.iter().map(|a| est.atom_selectivity(a)).collect();
    let lo = sels.iter().product::<f64>().clamp(1e-9, 1.0);
    sels.sort_by(|a, b| b.total_cmp(a));
    let mut hi = 1.0f64;
    for (i, s) in sels.iter().take(4).enumerate() {
        hi *= if i == 0 {
            *s
        } else {
            s.powf(1.0 / (1u32 << i) as f64)
        };
    }
    let hi = hi.clamp(1e-9, 1.0);
    (lo.min(hi), hi)
}

fn min_over_tiers(f: impl Fn(f64) -> f64) -> f64 {
    DOP_TIERS
        .iter()
        .map(|&d| f(d as f64))
        .fold(f64::INFINITY, f64::min)
}

fn max_over_tiers(f: impl Fn(f64) -> f64) -> f64 {
    DOP_TIERS
        .iter()
        .map(|&d| f(d as f64))
        .fold(0.0f64, f64::max)
}

/// `log2` as the cost model computes it (clamped at 2 rows).
fn log2c(rows: f64) -> f64 {
    rows.max(2.0).log2()
}

/// Cost floor of one implementation: its cost-model formula at
/// provably-minimal inputs (every estimate is floored at one row; byte
/// volumes at zero except the rewrite-invariant raw scan bytes), minimized
/// over every DOP tier the model could pick.
fn floor_table(op: &LogicalOp, obs: &ObservableCatalog) -> ImplTable {
    let cat = RuleCatalog::global();
    let mut entries = Vec::new();
    for &rid in cat.impls_for(op.kind()) {
        if let RuleAction::Impl(p) = cat.rule(rid).action {
            entries.push((rid, impl_floor(p, op, obs)));
        }
    }
    ImplTable { entries }
}

fn impl_floor(phys: PhysImpl, op: &LogicalOp, obs: &ObservableCatalog) -> f64 {
    use PhysImpl::*;
    let udo = C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW;
    match phys {
        ScanSerial => raw_scan_bytes(op, obs) * C_IO + C_VERTEX,
        ScanParallel => {
            // Exact: parallel scans always read the full table at the
            // byte-driven tier, independent of pushed predicates.
            let raw = raw_scan_bytes(op, obs);
            let d = dop_for_bytes(raw) as f64;
            raw * C_IO / d + d * C_VERTEX
        }
        ScanIndexed => {
            // Read volume is floored at one byte; the log term on raw bytes
            // is predicate-independent.
            let raw = raw_scan_bytes(op, obs);
            C_IO + 0.05 * raw.max(1.0).log2() + C_VERTEX
        }
        HashJoin1 | HashJoin2 | HashJoin3 => {
            min_over_tiers(|d| 2.0 * C_HASH_ROW / d + d * C_VERTEX)
        }
        MergeJoin => {
            min_over_tiers(|d| (2.0 * log2c(1.0) * C_SORT_ROW + 2.0 * C_CPU_ROW) / d + d * C_VERTEX)
        }
        BroadcastJoin => min_over_tiers(|d| C_HASH_ROW / d + C_HASH_ROW + d * C_VERTEX),
        LoopJoin => 0.02e-6 + C_VERTEX,
        IndexJoin => min_over_tiers(|d| log2c(1.0) * 0.8e-6 / d + C_CPU_ROW * 0.1 + d * C_VERTEX),
        HashAgg => min_over_tiers(|d| C_HASH_ROW / d),
        SortAgg => min_over_tiers(|d| log2c(1.0) * C_SORT_ROW / d),
        StreamAgg => min_over_tiers(|d| C_CPU_ROW * 0.8 / d),
        ProcessParallel => min_over_tiers(|d| udo / d + d * C_VERTEX),
        ProcessSerial => udo + C_VERTEX,
        // Aggregation-free unaries, unions, sorts, tops, windows, output,
        // exchanges: floors pinned at zero (eliminable, merge-prone, or
        // zero-vertex formulas over non-invariant inputs).
        _ => 0.0,
    }
}

/// Upper bound on one implementation's cost at interval-`hi` inputs,
/// maximized over every DOP tier (the model's tier choice and the
/// hash-join tier bumps are all dominated).
#[allow(clippy::too_many_arguments)]
fn impl_hi(
    phys: PhysImpl,
    op: &LogicalOp,
    bounds: &PlanBounds,
    children: &[NodeId],
    kid_rows: &[f64],
    kid_bytes: &[f64],
    obs: &ObservableCatalog,
) -> f64 {
    use PhysImpl::*;
    let in_rows: f64 = kid_rows.iter().sum();
    let in_bytes: f64 = kid_bytes.iter().sum();
    let l_rows = kid_rows.first().copied().unwrap_or(0.0);
    let r_rows = kid_rows.get(1).copied().unwrap_or(0.0);
    let udo = C_UDO_ROW * scope_ir::catalog::DEFAULT_UDO_CPU_PER_ROW;
    match phys {
        ScanSerial => raw_scan_bytes(op, obs) * C_IO + C_VERTEX,
        ScanParallel => {
            let raw = raw_scan_bytes(op, obs);
            let d = dop_for_bytes(raw) as f64;
            raw * C_IO / d + d * C_VERTEX
        }
        ScanIndexed => {
            // The model reads `(own_bytes·2).min(raw).max(1)`; `raw` bytes
            // dominates every possible read volume.
            let raw = raw_scan_bytes(op, obs);
            let read = raw.max(1.0);
            max_over_tiers(|d| read * C_IO / d + 0.05 * raw.max(1.0).log2() + d * C_VERTEX)
        }
        FilterImpl => in_rows * C_CPU_ROW,
        ProjectImpl => {
            let computed = match op {
                LogicalOp::Project { computed, .. } => *computed as f64,
                _ => 0.0,
            };
            in_rows * C_CPU_ROW * (1.0 + computed)
        }
        HashJoin1 | HashJoin2 | HashJoin3 => {
            max_over_tiers(|d| in_rows * C_HASH_ROW / d + d * C_VERTEX)
        }
        MergeJoin => {
            let sort: f64 = children
                .iter()
                .map(|c| {
                    let r = bounds.rows[c.index()].hi();
                    r * log2c(r) * C_SORT_ROW
                })
                .sum();
            max_over_tiers(|d| (sort + in_rows * C_CPU_ROW) / d + d * C_VERTEX)
        }
        BroadcastJoin => {
            max_over_tiers(|d| l_rows * C_HASH_ROW / d + r_rows * C_HASH_ROW + d * C_VERTEX)
        }
        LoopJoin => l_rows * r_rows * 0.02e-6 + C_VERTEX,
        IndexJoin => max_over_tiers(|d| {
            l_rows * log2c(r_rows.max(1.0)) * 0.8e-6 / d + r_rows * C_CPU_ROW * 0.1 + d * C_VERTEX
        }),
        HashAgg => in_rows * C_HASH_ROW,
        SortAgg => in_rows * log2c(in_rows) * C_SORT_ROW,
        StreamAgg => in_rows * C_CPU_ROW * 0.8,
        UnionConcat => in_rows * C_CPU_ROW * 0.1,
        UnionSerial => in_rows * C_CPU_ROW + C_VERTEX,
        UnionVirtual | VirtualDatasetImpl => {
            max_over_tiers(|d| 2.0 * in_bytes * C_IO / d + d * C_VERTEX)
        }
        TopN => {
            let k = match op {
                LogicalOp::Top { k } => *k as f64,
                _ => 1.0,
            };
            in_rows * C_CPU_ROW + k * log2c(k) * C_SORT_ROW
        }
        TopSort | SortSerial => in_rows * log2c(in_rows) * C_SORT_ROW + C_VERTEX,
        SortParallel => {
            max_over_tiers(|d| in_rows * log2c(in_rows / d) * C_SORT_ROW / d + d * C_VERTEX)
        }
        WindowHash => in_rows * C_HASH_ROW,
        WindowSort => in_rows * log2c(in_rows) * C_SORT_ROW,
        ProcessParallel => max_over_tiers(|d| in_rows * udo / d + d * C_VERTEX),
        ProcessSerial => in_rows * udo + C_VERTEX,
        OutputImpl => in_bytes * C_IO,
        ExchangeHash | ExchangeRange | ExchangeBroadcast | ExchangeGather => {
            // Exchanges are accounted per child edge separately.
            0.0
        }
    }
}

/// Worst-case enforcer exchange cost for one child edge carrying at most
/// `b` bytes, maximized over exchange kinds and DOP tiers.
fn worst_exchange(b: f64) -> f64 {
    let hash = max_over_tiers(|d| b * C_NET / d + d * C_VERTEX);
    let range = max_over_tiers(|d| b * C_NET * 1.15 / d + d * C_VERTEX + 0.5);
    let bcast =
        max_over_tiers(|d| b * C_NET + b * C_NET * (d - 1.0).max(0.0) * 0.02 + d * C_VERTEX);
    let gather = b * C_NET + C_VERTEX;
    hash.max(range).max(bcast).max(gather)
}

/// Audit the live estimator against the abstract intervals: derive every
/// node's point estimate bottom-up (exactly as memo ingest does) and
/// report any rows/bytes value that escapes its interval as a typed
/// [`LintViolation::EstimateOutOfBounds`].
pub fn audit_estimates(plan: &PlanGraph, obs: &ObservableCatalog) -> Vec<LintViolation> {
    let bounds = PlanBounds::analyze(plan, obs);
    let est = Estimator::new(obs);
    let mut ests: Vec<Option<LogicalEst>> = (0..plan.len()).map(|_| None).collect();
    let mut out = Vec::new();
    for &id in bounds.order() {
        let node = plan.node(id);
        let nop = normalize_op(&node.op);
        let kids: Vec<&LogicalEst> = node
            .children
            .iter()
            .filter_map(|c| ests[c.index()].as_ref())
            .collect();
        let point = est.derive(&nop, &kids);
        let r = bounds.rows(id);
        if !r.contains(point.rows) {
            out.push(LintViolation::EstimateOutOfBounds {
                node: id.index(),
                kind: nop.kind(),
                quantity: BoundQuantity::Rows,
                point: point.rows,
                lo: r.lo(),
                hi: r.hi(),
            });
        }
        let b = bounds.bytes(id);
        let point_bytes = point.rows * point.row_bytes;
        if !b.contains(point_bytes) {
            out.push(LintViolation::EstimateOutOfBounds {
                node: id.index(),
                kind: nop.kind(),
                quantity: BoundQuantity::Bytes,
                point: point_bytes,
                lo: b.lo(),
                hi: b.hi(),
            });
        }
        ests[id.index()] = Some(point);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_ir::ids::{ColId, DomainId, TableId};
    use scope_ir::{AggFunc, CmpOp, Literal, PredAtom, TrueCatalog};
    use scope_optimizer::RuleConfig;

    fn catalog() -> ObservableCatalog {
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(1000, 0.0, DomainId(0));
        let c1 = cat.add_column(100, 0.0, DomainId(1));
        let c2 = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(1_000_000, 100, 1, vec![c0, c1]);
        cat.add_table(500_000, 80, 2, vec![c2]);
        cat.observe()
    }

    fn atom(col: ColId, op: CmpOp) -> PredAtom {
        PredAtom::unknown(col, op, Literal::Int(1))
    }

    /// Output(GroupBy(Join(Filter(Get(t0)), RangeGet(t1)))) — exercises
    /// scans, a filter envelope, a keyed join, and an aggregation.
    fn plan() -> PlanGraph {
        let mut p = PlanGraph::new();
        let s0 = p.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let f = p.add_unchecked(
            LogicalOp::Filter {
                predicate: Predicate::atom(atom(ColId(1), CmpOp::Range)),
            },
            vec![s0],
        );
        let s1 = p.add_unchecked(
            LogicalOp::RangeGet {
                table: TableId(1),
                pushed: Predicate::true_pred(),
            },
            vec![],
        );
        let j = p.add_unchecked(
            LogicalOp::Join {
                kind: JoinKind::Inner,
                keys: vec![(ColId(0), ColId(2))],
            },
            vec![f, s1],
        );
        let g = p.add_unchecked(
            LogicalOp::GroupBy {
                keys: vec![ColId(1)],
                aggs: vec![AggFunc::Count],
                partial: false,
            },
            vec![j],
        );
        let o = p.add_unchecked(LogicalOp::Output { stream: 1 }, vec![g]);
        p.set_root(o);
        p
    }

    #[test]
    fn intervals_are_finite_ordered_and_contain_live_points() {
        let obs = catalog();
        let p = plan();
        let bounds = PlanBounds::analyze(&p, &obs);
        let est = Estimator::new(&obs);
        let mut ests: Vec<Option<LogicalEst>> = (0..p.len()).map(|_| None).collect();
        for &id in bounds.order() {
            let node = p.node(id);
            let nop = normalize_op(&node.op);
            let kids: Vec<&LogicalEst> = node
                .children
                .iter()
                .filter_map(|c| ests[c.index()].as_ref())
                .collect();
            let point = est.derive(&nop, &kids);
            let r = bounds.rows(id);
            r.debug_check();
            bounds.row_bytes(id).debug_check();
            assert!(
                r.contains(point.rows),
                "node {id:?}: rows {} outside [{}, {}]",
                point.rows,
                r.lo(),
                r.hi()
            );
            let b = bounds.bytes(id);
            assert!(
                b.contains(point.rows * point.row_bytes),
                "node {id:?} bytes"
            );
            ests[id.index()] = Some(point);
        }
    }

    #[test]
    fn audit_is_clean_on_default_catalog() {
        let obs = catalog();
        assert_eq!(audit_estimates(&plan(), &obs), Vec::new());
    }

    #[test]
    fn cost_bounds_are_ordered_and_scan_anchored() {
        let obs = catalog();
        let bounds = PlanBounds::analyze(&plan(), &obs);
        let config = RuleConfig::default_config();
        let lo = bounds.cost_lo(config.enabled());
        let hi = bounds
            .cost_hi(config.enabled())
            .expect("default config keeps every impl enabled");
        assert!(lo.is_finite() && hi.is_finite());
        assert!(lo <= hi, "lo {lo} must not exceed hi {hi}");
        // Two scans with a vertex floor each: the bound is structurally
        // positive, not a trivial zero.
        assert!(lo > 2.0 * 0.3, "scan floors must anchor the bound: {lo}");
    }

    #[test]
    fn disabling_impls_tightens_the_floor() {
        // A table large enough that a serial scan is strictly costlier than
        // the parallel/indexed minimum — so shrinking the enabled set to the
        // serial impl must strictly raise the floor.
        let mut cat = TrueCatalog::new();
        let c0 = cat.add_column(1000, 0.0, DomainId(0));
        cat.add_table(200_000_000, 100, 4, vec![c0]);
        let obs = cat.observe();
        let mut p = PlanGraph::new();
        let s = p.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let o = p.add_unchecked(LogicalOp::Output { stream: 1 }, vec![s]);
        p.set_root(o);
        let bounds = PlanBounds::analyze(&p, &obs);
        let rules = RuleCatalog::global();
        let full = RuleConfig::default_config();
        let lo_full = bounds.cost_lo(full.enabled());
        // Keep only the serial scan: the per-scan minimum can only grow.
        let mut serial_only = full.clone();
        for &rid in rules.impls_for(OpKind::RangeGet) {
            if rules.rule(rid).action != RuleAction::Impl(PhysImpl::ScanSerial) {
                serial_only.disable(rid);
            }
        }
        let lo_serial = bounds.cost_lo(serial_only.enabled());
        assert!(
            lo_serial >= lo_full,
            "shrinking the enabled set must not lower the floor: {lo_serial} < {lo_full}"
        );
        assert!(
            lo_serial > lo_full,
            "serial-only scans are strictly costlier"
        );
    }

    #[test]
    fn cost_hi_refuses_infeasible_configs() {
        let obs = catalog();
        let bounds = PlanBounds::analyze(&plan(), &obs);
        let cat = RuleCatalog::global();
        let mut config = RuleConfig::default_config();
        for &rid in cat.impls_for(OpKind::Join) {
            config.disable(rid);
        }
        assert_eq!(bounds.cost_hi(config.enabled()), None);
        let mut config = RuleConfig::default_config();
        config.disable(cat.exchange_impls()[0]);
        assert_eq!(bounds.cost_hi(config.enabled()), None);
    }

    #[test]
    fn shared_subtrees_are_counted_once() {
        let obs = catalog();
        // Union over the SAME scan node twice (a DAG) — the canonical pass
        // must count one scan floor, mirroring memo hash-consing.
        let mut shared = PlanGraph::new();
        let s = shared.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let u = shared.add_unchecked(LogicalOp::UnionAll, vec![s, s]);
        let o = shared.add_unchecked(LogicalOp::Output { stream: 1 }, vec![u]);
        shared.set_root(o);

        let mut single = PlanGraph::new();
        let s = single.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
        let o = single.add_unchecked(LogicalOp::Output { stream: 1 }, vec![s]);
        single.set_root(o);

        let config = RuleConfig::default_config();
        let lo_shared = PlanBounds::analyze(&shared, &obs).cost_lo(config.enabled());
        let lo_single = PlanBounds::analyze(&single, &obs).cost_lo(config.enabled());
        assert!(
            (lo_shared - lo_single).abs() < 1e-9,
            "shared scan must contribute one floor: {lo_shared} vs {lo_single}"
        );
    }

    #[test]
    fn identity_model_bounds_are_bit_identical_to_the_classic_ones() {
        let obs = catalog();
        let bounds = PlanBounds::analyze(&plan(), &obs);
        let config = RuleConfig::default_config();
        let lo = bounds.cost_lo(config.enabled());
        let lo_m = bounds.cost_lo_model(config.enabled(), &CostModel::DEFAULT);
        assert_eq!(lo.to_bits(), lo_m.to_bits());
        let hi = bounds.cost_hi(config.enabled()).unwrap();
        let hi_m = bounds
            .cost_hi_model(config.enabled(), &CostModel::DEFAULT)
            .unwrap();
        assert_eq!(hi.to_bits(), hi_m.to_bits());
    }

    #[test]
    fn corrected_models_widen_bounds_and_still_bracket_the_winner() {
        use scope_optimizer::{compile_with_model, CompileBudget, CostCorrections};
        let obs = catalog();
        let p = plan();
        let bounds = PlanBounds::analyze(&p, &obs);
        let config = RuleConfig::default_config();
        let lo = bounds.cost_lo(config.enabled());
        let hi = bounds.cost_hi(config.enabled()).unwrap();
        let model = CostModel {
            weights: CostWeights::DEFAULT,
            corrections: CostCorrections {
                rows: 1.0,
                cpu: 2.0,
                io: 0.5,
            },
        };
        let lo_m = bounds.cost_lo_model(config.enabled(), &model);
        let hi_m = bounds.cost_hi_model(config.enabled(), &model).unwrap();
        // The span is [min(1, 2, 0.5), max(1, 2, 0.5)] = [0.5, 2].
        assert_eq!(lo_m.to_bits(), (lo * 0.5).to_bits());
        assert_eq!(hi_m.to_bits(), (hi * 2.0).to_bits());
        // The bracket must hold for the plan actually compiled under the
        // corrected model.
        let compiled =
            compile_with_model(&p, &obs, &config, &CompileBudget::default(), &model).unwrap();
        assert!(
            lo_m <= compiled.est_cost && compiled.est_cost <= hi_m,
            "corrected winner {} escaped [{lo_m}, {hi_m}]",
            compiled.est_cost
        );
        // ... and the component brackets must hold for its cost vector.
        let comp = bounds.cost_components_model(config.enabled(), &model);
        let corrected = model.corrected(&compiled.est_cost_vec);
        assert!(
            comp.contains(&corrected),
            "corrected vector {corrected:?} escaped {comp:?}"
        );
    }

    #[test]
    fn non_default_weights_degrade_to_trivial_bounds() {
        let obs = catalog();
        let bounds = PlanBounds::analyze(&plan(), &obs);
        let config = RuleConfig::default_config();
        let skewed = CostModel {
            weights: CostWeights {
                io: 4.0,
                ..CostWeights::DEFAULT
            },
            corrections: scope_optimizer::CostCorrections::IDENTITY,
        };
        assert_eq!(bounds.cost_lo_model(config.enabled(), &skewed), 0.0);
        assert_eq!(bounds.cost_hi_model(config.enabled(), &skewed), None);
        // Trivial bounds stay sound brackets.
        let comp = bounds.cost_components_model(config.enabled(), &skewed);
        assert_eq!(comp.cpu, (0.0, f64::INFINITY));
    }

    #[test]
    fn component_brackets_contain_the_default_winner() {
        use scope_optimizer::{compile, RuleConfig};
        let obs = catalog();
        let p = plan();
        let bounds = PlanBounds::analyze(&p, &obs);
        let config = RuleConfig::default_config();
        let comp = bounds.cost_components(config.enabled());
        let compiled = compile(&p, &obs, &config).unwrap();
        assert!(comp.contains(&compiled.est_cost_vec));
        // Each charged bracket is the scalar hi — a real (finite) bound.
        assert!(comp.cpu.1.is_finite() && comp.io.1.is_finite());
    }

    #[test]
    fn sel_envelope_contains_every_atom_order() {
        let obs = catalog();
        let est = Estimator::new(&obs);
        let atoms = [
            atom(ColId(0), CmpOp::Eq),
            atom(ColId(1), CmpOp::Range),
            atom(ColId(2), CmpOp::Like),
            atom(ColId(1), CmpOp::Between),
            atom(ColId(0), CmpOp::Neq),
        ];
        let pred = Predicate {
            atoms: atoms.to_vec(),
        };
        let (lo, hi) = sel_envelope(&est, &pred);
        assert!(lo > 0.0 && hi <= 1.0 && lo <= hi);
        // A few representative orders, including reversed and rotated.
        let mut orders: Vec<Vec<PredAtom>> =
            vec![atoms.to_vec(), atoms.iter().rev().cloned().collect()];
        for rot in 1..atoms.len() {
            let mut v = atoms.to_vec();
            v.rotate_left(rot);
            orders.push(v);
        }
        for order in &orders {
            let s = est.conj_selectivity(order);
            assert!(
                s >= lo && s <= hi,
                "order produced {s} outside [{lo}, {hi}]"
            );
        }
    }
}
