//! Findings, severities, and the machine-readable lint report shared by
//! every pass.

use std::fmt;

use crate::violation::LintViolation;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Diagnostic only; no action needed.
    Info,
    /// Suspicious but not certainly wrong (e.g. a config that only fails on
    /// plans needing a repartition).
    Warning,
    /// Certainly wrong: the plan breaks an invariant or the config cannot
    /// compile.
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one pass.
#[derive(Clone, Debug, PartialEq)]
pub struct LintFinding {
    /// Name of the pass that produced the finding.
    pub pass: &'static str,
    pub severity: Severity,
    /// Stable machine-readable code for the finding class (a
    /// `LintViolation`/`PlanViolation` variant slug).
    pub code: &'static str,
    /// Human-readable rendering.
    pub message: String,
}

/// The machine-readable result of running a pass registry: a flat list of
/// findings that callers can filter by pass, severity, or code, and render
/// as JSON for tooling.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LintReport {
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    pub fn push(
        &mut self,
        pass: &'static str,
        severity: Severity,
        code: &'static str,
        message: String,
    ) {
        self.findings.push(LintFinding {
            pass,
            severity,
            code,
            message,
        });
    }

    /// Record a typed configuration/catalog violation.
    pub fn push_violation(&mut self, pass: &'static str, severity: Severity, v: &LintViolation) {
        self.push(pass, severity, v.code(), v.to_string());
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Whether the report carries no errors (warnings/infos allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// The worst severity present, if any finding exists.
    pub fn worst(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    /// Render as a JSON array of finding objects (machine-readable report;
    /// no external serializer available offline, so fields are escaped by
    /// hand).
    pub fn to_json(&self) -> String {
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let items: Vec<String> = self
            .findings
            .iter()
            .map(|f| {
                format!(
                    "{{\"pass\":\"{}\",\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"}}",
                    f.pass,
                    f.severity.name(),
                    f.code,
                    escape(&f.message)
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(
                f,
                "[{}] {} ({}): {}",
                finding.severity.name(),
                finding.pass,
                finding.code,
                finding.message
            )?;
        }
        Ok(())
    }
}
