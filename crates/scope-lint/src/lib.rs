//! # scope-lint
//!
//! Static analysis for the steering loop: vet rule catalogs, rule
//! configurations, and plan IR **before any compile**. The paper's
//! production follow-up stresses that invalid or internally-contradictory
//! flag combinations must be rejected before they reach the optimizer;
//! this crate moves that rejection to zero-compile time.
//!
//! Three layers:
//!
//! 1. **Rule graph** ([`rulegraph::RuleGraph`]) — the dependency/implication
//!    graph extracted from the 256-rule catalog: implementation coverage
//!    per operator kind, escape rewrites (via
//!    [`scope_optimizer::AnchorRewrite`] metadata), `Project` producers,
//!    swap-rule cycles, and required-canonicalizer coverage.
//! 2. **Config lattice checker** ([`analyze::JobLint`]) — classifies any
//!    `RuleConfig` against one job's plan as
//!    `Valid | Redundant | Dead | Invalid` with typed
//!    [`violation::LintViolation`] diagnostics. `Invalid` is *sound*: a
//!    rejected config can never compile, so the discovery pipeline skips
//!    it without changing any result. `Redundant` identifies configs that
//!    compile bit-identically to their canonical projection, so their
//!    compiles can be shared.
//! 3. **Plan-IR pass framework** ([`pass`]) — a `Pass` trait, registry,
//!    severity levels, and a machine-readable [`report::LintReport`]. The
//!    default passes are built from the same shared cores
//!    (`scope_ir::check_structure` / `check_provenance`) as
//!    `validate_logical`, subsuming its ad-hoc checks.
//! 4. **Abstract-interpretation bounds** ([`bounds::PlanBounds`]) — sound
//!    `[lo, hi]` intervals for rows, bytes, and whole-plan cost derived
//!    from the catalog envelopes. Powers the discovery bounds gate (retire
//!    candidates whose cost lower bound exceeds the threshold before any
//!    compile), the search's branch-and-bound flag, and the estimator
//!    audit ([`bounds::audit_estimates`]).

pub mod analyze;
pub mod bounds;
pub mod pass;
pub mod report;
pub mod rulegraph;
pub mod violation;

pub use analyze::{catalog_invalid, ingest_bits, ConfigVerdict, JobLint};
pub use bounds::{audit_estimates, ComponentBounds, PlanBounds};
pub use pass::{lint_plan, Pass, PassContext, PassRegistry, ProvenancePass, StructurePass};
pub use report::{LintFinding, LintReport, Severity};
pub use rulegraph::RuleGraph;
pub use violation::{BoundQuantity, LintViolation};
