//! Property tests for the abstract-interpretation bounds over random rule
//! configurations, real workload jobs, and adversarial interval endpoints:
//!
//! 1. **Interval well-formedness** — every derived rows/bytes interval is
//!    finite with `lo ≤ hi`, for every node of every job, under garbage
//!    inputs too (the domain constructor sanitizes NaN/∞).
//! 2. **Cost-bound soundness** — for any config that compiles, the
//!    whole-plan interval `[cost_lo, cost_hi]` brackets the compiled
//!    winner's estimated cost. The lower bound holds for *every* enabled
//!    set; the upper bound whenever it is claimed (`Some`).
//! 3. **Point containment** — the live estimator's per-node point
//!    estimates stay inside their intervals ([`audit_estimates`] is
//!    silent). The `classic` differential oracle derives through the same
//!    `Estimator`, so its points are contained by the same check.
//! 4. **Lattice laws** — `join` is an upper bound and widening is
//!    monotone: joining further intervals never shrinks the hull; interval
//!    arithmetic preserves the invariants and containment.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_ir::{Interval, Job};
use scope_lint::{audit_estimates, PlanBounds};
use scope_optimizer::{compile_job, effective_config, RuleConfig, RuleId, RuleSet, NUM_RULES};
use scope_workload::{Workload, WorkloadProfile};

fn jobs() -> &'static Vec<Job> {
    static JOBS: OnceLock<Vec<Job>> = OnceLock::new();
    JOBS.get_or_init(|| {
        let w = Workload::generate(WorkloadProfile::workload_a(0.02));
        w.day(0)
    })
}

/// A random config: every non-required rule kept with probability `keep`.
fn random_config(seed: u64, keep: f64) -> RuleConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enabled = RuleSet::EMPTY;
    for id in 0..NUM_RULES as u16 {
        if rng.gen_bool(keep) {
            enabled.insert(RuleId(id));
        }
    }
    RuleConfig::normalized(enabled).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn intervals_are_wellformed_and_cost_bounds_bracket_compiles(
        seed in any::<u64>(),
        keep in 0.2f64..0.95,
        job_pick in any::<u64>(),
    ) {
        let jobs = jobs();
        let job = &jobs[job_pick as usize % jobs.len()];
        let obs = job.catalog.observe();
        let config = random_config(seed, keep);
        let bounds = PlanBounds::analyze(&job.plan, &obs);
        for &id in bounds.order() {
            for i in [bounds.rows(id), bounds.row_bytes(id), bounds.bytes(id)] {
                prop_assert!(i.lo().is_finite() && i.hi().is_finite());
                prop_assert!(0.0 <= i.lo() && i.lo() <= i.hi());
            }
        }
        // The lower bound must be finite and non-negative for *any*
        // enabled set, compilable or not.
        let lo_any = bounds.cost_lo(config.enabled());
        prop_assert!(lo_any.is_finite() && lo_any >= 0.0);
        // When the config compiles, the compile goes through the job's
        // effective config (customer hints merged) — the bound for that
        // enabled set must bracket the winner's cost.
        if let Ok(c) = compile_job(job, &config) {
            let ec = effective_config(job, &config);
            let lo = bounds.cost_lo(ec.enabled());
            prop_assert!(
                lo <= c.est_cost,
                "cost_lo {lo} exceeds compiled cost {} (job {})",
                c.est_cost,
                job.id.0
            );
            if let Some(hi) = bounds.cost_hi(ec.enabled()) {
                prop_assert!(
                    c.est_cost <= hi,
                    "compiled cost {} exceeds cost_hi {hi} (job {})",
                    c.est_cost,
                    job.id.0
                );
            }
        }
        // Monotonicity of the floor: the full rule set can only have a
        // lower (or equal) floor than any subset.
        let full = RuleConfig::default_config();
        prop_assert!(bounds.cost_lo(full.enabled()) <= lo_any + 1e-12);
    }

    #[test]
    fn live_and_classic_point_estimates_stay_inside_their_intervals(
        job_pick in any::<u64>(),
    ) {
        let jobs = jobs();
        let job = &jobs[job_pick as usize % jobs.len()];
        let obs = job.catalog.observe();
        // `audit_estimates` replays `Estimator::derive` bottom-up — the
        // exact derivation both the memo search and the `classic` oracle
        // consume — so an empty report is containment for both.
        let violations = audit_estimates(&job.plan, &obs);
        prop_assert!(
            violations.is_empty(),
            "estimator escaped its interval: {violations:?}"
        );
    }

    #[test]
    fn interval_join_widens_monotonically_and_arithmetic_preserves_invariants(
        a in any::<f64>(),
        b in any::<f64>(),
        c in any::<f64>(),
        d in any::<f64>(),
        x in any::<f64>(),
    ) {
        // The constructor must sanitize anything, NaN and ∞ included.
        let ia = Interval::new(a, b);
        let ib = Interval::new(c, d);
        for i in [ia, ib] {
            prop_assert!(i.lo().is_finite() && i.hi().is_finite());
            prop_assert!(0.0 <= i.lo() && i.lo() <= i.hi());
        }
        // Join is an upper bound, and widening by further joins is
        // monotone: the hull never shrinks.
        let j = ia.join(&ib);
        prop_assert!(ia.subset_of(&j) && ib.subset_of(&j));
        let wider = j.join(&Interval::new(x, x));
        prop_assert!(j.subset_of(&wider));
        // Arithmetic preserves invariants and pointwise containment.
        let sum = ia.add(&ib);
        let prod = ia.mul(&ib);
        for i in [sum, prod] {
            prop_assert!(i.lo().is_finite() && i.hi().is_finite());
            prop_assert!(i.lo() <= i.hi());
        }
        prop_assert!(sum.contains(ia.lo() + ib.lo()));
        prop_assert!(sum.contains(ia.hi() + ib.hi()));
        prop_assert!(prod.contains(ia.lo() * ib.lo()));
        prop_assert!(prod.contains(ia.hi() * ib.hi()));
    }
}
