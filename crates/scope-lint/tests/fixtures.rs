//! Fixture tests: one per [`LintViolation`] variant, plus the dead-rule and
//! swap-cycle catalogs the issue calls for. Everything here runs against
//! the real 256-rule global catalog — no compiles anywhere.

use scope_ir::ids::TableId;
use scope_ir::{LogicalOp, OpKind, PlanGraph, Predicate, TrueCatalog};
use scope_lint::{catalog_invalid, ingest_bits, ConfigVerdict, JobLint, LintViolation, RuleGraph};
use scope_optimizer::{RuleCatalog, RuleConfig, RuleSet};
use scope_workload::{Workload, WorkloadProfile};

fn a_job_plan() -> PlanGraph {
    let w = Workload::generate(WorkloadProfile::workload_a(0.02));
    w.day(0)[0].plan.clone()
}

/// A minimal normalized-shape plan with no `Project` anywhere: scan → out.
fn project_free_plan() -> PlanGraph {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(100, 0.0, scope_ir::ids::DomainId(0));
    cat.add_table(10_000, 100, 1, vec![c]);
    let mut plan = PlanGraph::new();
    let scan = plan.add_unchecked(
        LogicalOp::RangeGet {
            table: TableId(0),
            pushed: Predicate::true_pred(),
        },
        vec![],
    );
    let out = plan.add_unchecked(LogicalOp::Output { stream: 1 }, vec![scan]);
    plan.set_root(out);
    plan
}

#[test]
fn no_implementation_fires_when_every_output_impl_is_disabled() {
    let mut config = RuleConfig::default_config();
    for id in RuleGraph::global().impls(OpKind::Output).iter() {
        config.disable(id);
    }
    let lint = JobLint::new(&a_job_plan());
    let ConfigVerdict::Invalid { violations } = lint.classify(&config) else {
        panic!("disabling every Output impl must be certainly invalid");
    };
    assert!(violations.iter().any(|v| matches!(
        v,
        LintViolation::NoImplementation {
            kind: OpKind::Output,
            ..
        }
    )));
    // Plan-independently broken too: no job anywhere can compile it.
    let catalog_level = catalog_invalid(&config);
    assert_eq!(catalog_level.len(), 1);
    assert_eq!(catalog_level[0].code(), "no-implementation");
}

#[test]
fn required_rule_cleared_fires_on_raw_bit_ingestion() {
    let cat = RuleCatalog::global();
    let (config, violation) = ingest_bits(RuleSet::EMPTY);
    let Some(LintViolation::RequiredRuleCleared { rules }) = violation else {
        panic!("clearing every bit must report the required correction");
    };
    assert_eq!(rules, *cat.required());
    assert_eq!(*config.enabled(), *cat.required());
    // Already-normalized bits ingest silently.
    let (_, violation) = ingest_bits(*RuleConfig::default_config().enabled());
    assert!(violation.is_none());
}

#[test]
fn all_exchange_impls_disabled_is_warned_not_fatal() {
    let graph = RuleGraph::global();
    let mut config = RuleConfig::default_config();
    for id in graph.exchange_impls().iter() {
        config.disable(id);
    }
    let lint = JobLint::new(&a_job_plan());
    let warnings = lint.warnings(&config);
    assert!(warnings
        .iter()
        .any(|v| matches!(v, LintViolation::AllExchangeImplsDisabled)));
    // Not a certain failure: single-machine plans never need an exchange.
    assert!(!lint
        .certain_failures(&config)
        .iter()
        .any(|v| matches!(v, LintViolation::AllExchangeImplsDisabled)));
}

#[test]
fn dead_rules_fire_on_a_project_free_plan_with_producers_disabled() {
    let cat = RuleCatalog::global();
    let graph = RuleGraph::global();
    let plan = project_free_plan();
    let lint = JobLint::new(&plan);
    assert_eq!(lint.kind_counts()[OpKind::Project as usize], 0);
    assert!(lint.is_reachable(OpKind::Project), "producers can add them");

    // Disable every Project producer (the PruneBelow family): now the
    // enabled Project impls/transforms can never fire on this plan.
    let mut config = RuleConfig::default_config();
    for id in graph.project_producers().iter() {
        config.disable(id);
    }
    // `Dead` ranks below `Redundant` in the lattice, so query the dead set
    // directly (this tiny plan makes most of the catalog non-live).
    let dead = lint.dead_rules(&config);
    assert!(!dead.is_empty(), "Project-anchored rules should be dead");
    for id in dead.iter() {
        assert!(!cat.required().contains(id));
        let anchored_on_project = graph.impls(OpKind::Project).contains(id)
            || graph.transforms(OpKind::Project).contains(id);
        assert!(anchored_on_project, "only Project rules can be dead here");
    }
    let violation = LintViolation::DeadRules { rules: dead };
    assert_eq!(violation.code(), "dead-rules");

    // With producers enabled (default config) nothing is dead.
    assert!(lint.dead_rules(&RuleConfig::default_config()).is_empty());
}

#[test]
fn unreachable_impls_are_reported_per_absent_kind() {
    let cat = RuleCatalog::global();
    let graph = RuleGraph::global();
    let plan = project_free_plan();
    let lint = JobLint::new(&plan);
    let config = RuleConfig::default_config();
    let dead_impls = graph.statically_dead_impls(cat, &config, lint.kind_counts());
    // The plan is RangeGet → Output only: every enabled impl of the other
    // kinds (Join, Sort, GroupBy, ...) is unreachable.
    assert!(!dead_impls.is_empty());
    for v in &dead_impls {
        let LintViolation::UnreachableImpl { rule, kind } = v else {
            panic!("statically_dead_impls only emits UnreachableImpl");
        };
        assert_eq!(v.code(), "unreachable-impl");
        assert!(lint.kind_counts()[*kind as usize] == 0);
        assert!(graph.impls(*kind).contains(*rule));
        assert!(config.is_enabled(*rule));
    }
    // Never for kinds the plan contains.
    assert!(!dead_impls
        .iter()
        .any(|v| matches!(v, LintViolation::UnreachableImpl { kind, .. }
            if lint.kind_counts()[*kind as usize] > 0)));
}

#[test]
fn swap_cycle_without_normalizer_fires_when_collapses_are_disabled() {
    let cat = RuleCatalog::global();
    let graph = RuleGraph::global();
    // The default config terminates every swap cycle via a collapse rule.
    let default = RuleConfig::default_config();
    assert!(graph.swap_cycles(cat, &default).is_empty());

    // Disable every collapse/merge normalizer: the Sort↔Window (and
    // friends) commutation cycles now only terminate via memo dedup.
    let mut config = default.clone();
    for name in [
        "CollapseSelects",
        "MergeProjects",
        "CollapseSorts",
        "CollapseTops",
        "CollapseWindows",
    ] {
        config.disable(cat.find(name).expect("collapse rule exists"));
    }
    let cycles = graph.swap_cycles(cat, &config);
    assert!(!cycles.is_empty(), "expected an unterminated swap cycle");
    for v in &cycles {
        let LintViolation::SwapCycleWithoutNormalizer { kinds, rules } = v else {
            panic!("swap_cycles only emits SwapCycleWithoutNormalizer");
        };
        assert_eq!(v.code(), "swap-cycle-without-normalizer");
        assert!(!kinds.is_empty());
        assert!(!rules.is_empty());
        for rule in rules {
            assert!(config.is_enabled(*rule));
            assert!(matches!(
                cat.rule(*rule).action,
                scope_optimizer::RuleAction::SwapUnary { .. }
            ));
        }
    }
    // Re-enabling one in-cycle collapse rule dissolves that cycle's report.
    let mut softened = config.clone();
    softened.enable(cat.find("CollapseSorts").unwrap());
    assert!(graph.swap_cycles(cat, &softened).len() <= cycles.len());
}

#[test]
fn the_global_catalog_has_full_canonicalizer_coverage() {
    let cat = RuleCatalog::global();
    let graph = RuleGraph::global();
    assert!(graph.required_coverage(cat).is_empty());
    // The variant itself renders with a stable code (the catalog builder
    // is `pub(crate)`, so a doctored catalog cannot be built from here —
    // coverage of the emitting loop comes from the assertion above).
    let v = LintViolation::MissingCanonicalizer { kind: OpKind::Join };
    assert_eq!(v.code(), "missing-canonicalizer");
    assert!(format!("{v}").contains("Join"));
}

#[test]
fn verdict_precedence_is_invalid_over_redundant_over_dead() {
    let lint = JobLint::new(&a_job_plan());
    // Invalid beats Redundant: a config that is both non-canonical and
    // missing the Output impl classifies Invalid.
    let mut config = RuleConfig::default_config();
    for id in RuleGraph::global().impls(OpKind::Output).iter() {
        config.disable(id);
    }
    assert!(matches!(
        lint.classify(&config),
        ConfigVerdict::Invalid { .. }
    ));
    // The default config on a real job: canonical projection strips the
    // non-live rules, so it classifies Redundant (never Invalid).
    let verdict = lint.classify(&RuleConfig::default_config());
    assert!(matches!(
        verdict,
        ConfigVerdict::Redundant { .. } | ConfigVerdict::Valid
    ));
}

#[test]
fn canonical_config_classifies_valid_or_dead() {
    // Projecting any config onto the live set must be a fixpoint: the
    // canonical config itself is never Redundant again.
    let lint = JobLint::new(&a_job_plan());
    let canonical = lint.canonical_bits(&RuleConfig::default_config());
    let (config, _) = RuleConfig::normalized(canonical);
    match lint.classify(&config) {
        ConfigVerdict::Redundant { .. } => panic!("canonical must be a fixpoint"),
        ConfigVerdict::Invalid { violations } => {
            panic!("default projection cannot be invalid: {violations:?}")
        }
        ConfigVerdict::Valid | ConfigVerdict::Dead { .. } => {}
    }
}
