//! Property tests over random rule configurations and real workload jobs:
//!
//! 1. **Soundness** — a statically-`Invalid` config never compiles.
//! 2. **No false alarms at runtime** — a config that compiles cleanly is
//!    never statically `Invalid`, and its plan passes the physical
//!    validator (no statically-vetted config trips a runtime
//!    `PlanViolation`).
//! 3. **Canonical erasure** — a `Redundant` config compiles bit-identically
//!    (signature, cost, task count) to its canonical projection.
//! 4. **Ingestion** — `ingest_bits` is idempotent and its correction mask
//!    is exactly the cleared required bits.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scope_ir::Job;
use scope_lint::{ingest_bits, ConfigVerdict, JobLint, LintViolation};
use scope_optimizer::{
    compile_job, validate_physical, RuleCatalog, RuleConfig, RuleId, RuleSet, NUM_RULES,
};
use scope_workload::{Workload, WorkloadProfile};

fn jobs() -> &'static Vec<Job> {
    static JOBS: OnceLock<Vec<Job>> = OnceLock::new();
    JOBS.get_or_init(|| {
        let w = Workload::generate(WorkloadProfile::workload_a(0.02));
        w.day(0)
    })
}

/// A random config: every non-required rule kept with probability `keep`
/// (required rules are clamped by construction, mirroring the samplers).
fn random_config(seed: u64, keep: f64) -> RuleConfig {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut enabled = RuleSet::EMPTY;
    for id in 0..NUM_RULES as u16 {
        if rng.gen_bool(keep) {
            enabled.insert(RuleId(id));
        }
    }
    RuleConfig::normalized(enabled).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invalid_verdicts_never_compile(seed in any::<u64>(), keep in 0.2f64..0.95, job_pick in any::<u64>()) {
        let jobs = jobs();
        let job = &jobs[job_pick as usize % jobs.len()];
        let config = random_config(seed, keep);
        let verdict = JobLint::new(&job.plan).classify(&config);
        let compiled = compile_job(job, &config);
        if let ConfigVerdict::Invalid { violations } = &verdict {
            prop_assert!(!violations.is_empty());
            prop_assert!(
                compiled.is_err(),
                "statically-Invalid config compiled: {violations:?}"
            );
        }
        // The dual: whatever compiles was not statically Invalid, and its
        // plan passes the full physical validator.
        if let Ok(c) = &compiled {
            prop_assert!(!matches!(verdict, ConfigVerdict::Invalid { .. }));
            prop_assert!(validate_physical(&c.plan).is_empty());
        }
    }

    #[test]
    fn redundant_verdicts_erase_to_identical_compiles(seed in any::<u64>(), job_pick in any::<u64>()) {
        let jobs = jobs();
        let job = &jobs[job_pick as usize % jobs.len()];
        // High keep-rate so most samples compile and classify Redundant.
        let config = random_config(seed, 0.9);
        let lint = JobLint::new(&job.plan);
        if let ConfigVerdict::Redundant { canonical } = lint.classify(&config) {
            let projected = RuleConfig::normalized(canonical).0;
            prop_assert_eq!(*projected.enabled(), canonical);
            match (compile_job(job, &config), compile_job(job, &projected)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.signature, b.signature);
                    prop_assert_eq!(a.est_cost, b.est_cost);
                    prop_assert_eq!(a.stats.tasks, b.stats.tasks);
                }
                (Err(_), Err(_)) => {} // equivalent failures are fine
                (a, b) => prop_assert!(
                    false,
                    "canonical projection changed compilability: {:?} vs {:?}",
                    a.is_ok(),
                    b.is_ok()
                ),
            }
        }
    }

    #[test]
    fn ingestion_is_idempotent_and_reports_exact_corrections(seed in any::<u64>(), keep in 0.0f64..1.0) {
        let cat = RuleCatalog::global();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = RuleSet::EMPTY;
        for id in 0..NUM_RULES as u16 {
            if rng.gen_bool(keep) {
                bits.insert(RuleId(id));
            }
        }
        let (config, violation) = ingest_bits(bits);
        // The correction is exactly the cleared required bits.
        let cleared = cat.required().difference(&bits);
        match violation {
            Some(LintViolation::RequiredRuleCleared { rules }) => {
                prop_assert_eq!(rules, cleared);
            }
            Some(other) => prop_assert!(false, "unexpected violation {other:?}"),
            None => prop_assert!(cleared.is_empty()),
        }
        prop_assert_eq!(*config.enabled(), bits.union(cat.required()));
        // Re-ingesting the normalized bits is silent and a fixpoint.
        let (again, second) = ingest_bits(*config.enabled());
        prop_assert!(second.is_none());
        prop_assert_eq!(again.enabled(), config.enabled());
    }
}
