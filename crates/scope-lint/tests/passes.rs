//! The pass framework must agree with `scope_ir::validate_logical` finding
//! for finding — both are built from the same shared cores — and its
//! report must be machine-readable.

use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::validate::validate_logical;
use scope_ir::{
    CmpOp, Literal, LogicalOp, ObservableCatalog, PlanGraph, PredAtom, Predicate, TrueCatalog,
};
use scope_lint::pass::plan_violation_code;
use scope_lint::{lint_plan, PassRegistry, Severity};
use scope_workload::{Workload, WorkloadProfile};

fn catalog() -> ObservableCatalog {
    let mut cat = TrueCatalog::new();
    let c0 = cat.add_column(100, 0.0, DomainId(0));
    let c1 = cat.add_column(50, 0.0, DomainId(1));
    cat.add_table(10_000, 100, 1, vec![c0, c1]);
    cat.observe()
}

fn scan() -> LogicalOp {
    LogicalOp::RangeGet {
        table: TableId(0),
        pushed: Predicate::true_pred(),
    }
}

#[test]
fn default_passes_agree_with_validate_logical_on_real_jobs() {
    let w = Workload::generate(WorkloadProfile::workload_a(0.04));
    for job in &w.day(0) {
        let obs = job.catalog.observe();
        let violations = validate_logical(&job.plan, &obs);
        let report = lint_plan(&job.plan, &obs);
        assert_eq!(report.findings.len(), violations.len());
        for (finding, violation) in report.findings.iter().zip(&violations) {
            assert_eq!(finding.code, plan_violation_code(violation));
            assert_eq!(finding.severity, Severity::Error);
            assert_eq!(finding.message, violation.to_string());
        }
        assert_eq!(report.is_clean(), violations.is_empty());
    }
}

#[test]
fn default_passes_agree_with_validate_logical_on_broken_plans() {
    let obs = catalog();
    let mut broken: Vec<(&str, PlanGraph)> = Vec::new();

    // Rootless.
    broken.push(("rootless", PlanGraph::new()));

    // Root is not an Output.
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(), vec![]);
    p.set_root(s);
    broken.push(("root-not-output", p));

    // Unknown table + unknown column.
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(
        LogicalOp::RangeGet {
            table: TableId(99),
            pushed: Predicate::true_pred(),
        },
        vec![],
    );
    let f = p.add_unchecked(
        LogicalOp::Filter {
            predicate: Predicate::atom(PredAtom::unknown(ColId(1234), CmpOp::Eq, Literal::Int(1))),
        },
        vec![s],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 1 }, vec![f]);
    p.set_root(o);
    broken.push(("unknown-table", p));

    for (label, plan) in &broken {
        let violations = validate_logical(plan, &obs);
        let report = lint_plan(plan, &obs);
        assert_eq!(
            report.findings.len(),
            violations.len(),
            "finding count diverged for {label}"
        );
        for (finding, violation) in report.findings.iter().zip(violations.iter()) {
            assert_eq!(finding.code, plan_violation_code(violation), "{label}");
        }
        assert!(!report.is_clean(), "{label} must produce findings");
        assert!(report.error_count() > 0, "{label}");
        assert!(
            report.findings.iter().any(|f| f.code == *label) || *label == "rootless",
            "{label} missing its signature code"
        );
        // The machine-readable form carries every code.
        let json = report.to_json();
        for f in &report.findings {
            assert!(json.contains(f.code), "{label} json lost {}", f.code);
        }
    }
}

#[test]
fn shared_structure_core_reports_arity_and_dangling_edges() {
    // `PlanGraph::add` rejects bad arity and forward edges at build time,
    // so the defensive cases of the shared core are exercised directly:
    // a unary node with two children, one of them out of the arena.
    use scope_ir::ids::NodeId;
    use scope_ir::validate::{check_structure, PlanViolation, StructuralNode};
    let children: Vec<Vec<NodeId>> = vec![vec![], vec![NodeId(0), NodeId(7)], vec![NodeId(1)]];
    let mut out = Vec::new();
    let edges_ok = check_structure(
        Some(NodeId(2)),
        3,
        (0..3u32).map(NodeId),
        |id| StructuralNode {
            kind: ["scan", "filter", "output"][id.index()],
            children: &children[id.index()],
            arity: [(0, 0), (1, 1), (1, 1)][id.index()],
            is_output: id.index() == 2,
        },
        &mut out,
    );
    assert!(out
        .iter()
        .any(|v| matches!(v, PlanViolation::BadArity { node, got: 2, .. } if node.index() == 1)));
    assert!(out.iter().any(
        |v| matches!(v, PlanViolation::DanglingInput { node, child } if node.index() == 1 && child.index() == 7)
    ));
    // Per-node edge flags gate downstream checks: the broken node is
    // flagged, the clean ones are not.
    assert_eq!(edges_ok, vec![true, false, true]);
    assert_eq!(
        out.iter()
            .map(scope_lint::pass::plan_violation_code)
            .collect::<Vec<_>>(),
        vec!["bad-arity", "dangling-input"]
    );
}

#[test]
fn registry_is_ordered_and_extensible() {
    let registry = PassRegistry::with_default_passes();
    assert_eq!(registry.names(), vec!["structure", "provenance"]);

    // A custom pass rides alongside the defaults.
    struct CountNodes;
    impl scope_lint::Pass for CountNodes {
        fn name(&self) -> &'static str {
            "count-nodes"
        }
        fn run(&self, ctx: &scope_lint::PassContext<'_>, report: &mut scope_lint::LintReport) {
            report.push(
                self.name(),
                Severity::Info,
                "node-count",
                format!("{} nodes", ctx.plan.len()),
            );
        }
    }
    let mut registry = PassRegistry::with_default_passes();
    registry.register(Box::new(CountNodes));

    let obs = catalog();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(), vec![]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 1 }, vec![s]);
    p.set_root(o);
    let report = registry.run(&p, &obs);
    // Info findings do not make a report unclean.
    assert!(report.is_clean());
    assert_eq!(report.error_count(), 0);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].pass, "count-nodes");
    assert_eq!(report.worst(), Some(Severity::Info));
}
