//! Edge cases for the compiler: degenerate inputs, extreme statistics, and
//! adversarial configurations.

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::{compile, RuleCatalog, RuleConfig, RuleSet};

fn obs_with(rows: u64) -> scope_ir::ObservableCatalog {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(100, 0.0, DomainId(0));
    cat.add_table(rows, 100, 1, vec![c]);
    cat.observe()
}

fn scan_out() -> PlanGraph {
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    g.set_root(o);
    g
}

#[test]
fn tiny_and_huge_tables_both_compile() {
    let plan = scan_out();
    for rows in [1u64, 100, 1_000_000_000, u64::MAX / 1_000_000] {
        let compiled = compile(&plan, &obs_with(rows), &RuleConfig::default_config())
            .unwrap_or_else(|e| panic!("rows={rows}: {e}"));
        assert!(compiled.est_cost.is_finite());
        assert!(compiled.est_cost >= 0.0);
    }
}

#[test]
fn unknown_table_id_compiles_with_zero_rows() {
    // A plan referencing a table absent from the catalog: the estimator
    // treats it as empty rather than panicking.
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(99) }, vec![]);
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    g.set_root(o);
    let compiled = compile(&g, &obs_with(100), &RuleConfig::default_config()).unwrap();
    assert!(compiled.est_cost.is_finite());
}

#[test]
fn cross_join_compiles_via_gather() {
    let mut cat = TrueCatalog::new();
    let c0 = cat.add_column(10, 0.0, DomainId(0));
    let c1 = cat.add_column(10, 0.0, DomainId(1));
    cat.add_table(100, 50, 1, vec![c0]);
    cat.add_table(100, 50, 2, vec![c1]);
    let mut g = PlanGraph::new();
    let a = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let b = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
    let j = g.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![], // cross join
        },
        vec![a, b],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![j]);
    g.set_root(o);
    let compiled = compile(&g, &cat.observe(), &RuleConfig::default_config()).unwrap();
    // Cross joins degenerate to singleton execution: for these tiny serial
    // scans the join's inputs are already singletons (no exchange needed),
    // and the join itself runs on one vertex.
    let join = compiled
        .plan
        .reachable()
        .into_iter()
        .find(|&id| compiled.plan.node(id).op.name().contains("Join"))
        .expect("plan has a join");
    assert_eq!(compiled.plan.node(join).dop, 1);
}

#[test]
fn deep_filter_chain_compiles_and_collapses() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1000, 0.0, DomainId(0));
    cat.add_table(10_000_000, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let mut node = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    for i in 0..25 {
        node = g.add_unchecked(
            LogicalOp::Select {
                predicate: Predicate::atom(PredAtom::unknown(
                    ColId(0),
                    CmpOp::Range,
                    Literal::Int(i),
                )),
            },
            vec![node],
        );
    }
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![node]);
    g.set_root(o);
    let compiled = compile(&g, &cat.observe(), &RuleConfig::default_config()).unwrap();
    // Filter-collapsing + scan pushdown shrink the 25-filter chain
    // substantially in the winning plan.
    let filters = compiled
        .plan
        .reachable()
        .into_iter()
        .filter(|&id| compiled.plan.node(id).op.name() == "Filter")
        .count();
    assert!(filters < 25, "got {filters} physical filters");
}

#[test]
fn wide_union_compiles_within_budget() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1000, 0.0, DomainId(0));
    let mut branches = Vec::new();
    let mut g = PlanGraph::new();
    for i in 0..30 {
        cat.add_table(100_000 + i, 100, i, vec![c]);
        branches.push(g.add_unchecked(
            LogicalOp::Get {
                table: TableId(i as u32),
            },
            vec![],
        ));
    }
    let u = g.add_unchecked(LogicalOp::UnionAll, branches);
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![c],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![u],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![agg]);
    g.set_root(o);
    let compiled = compile(&g, &cat.observe(), &RuleConfig::default_config()).unwrap();
    assert!(compiled.memo_exprs <= scope_optimizer::memo::MAX_TOTAL_EXPRS);
    assert!(compiled.est_cost.is_finite());
}

#[test]
fn minimal_configuration_still_compiles_simple_plans() {
    // Only required rules + one implementation per needed kind.
    let cat = RuleCatalog::global();
    let mut enabled = RuleSet::EMPTY;
    for name in [
        "ParallelScanImpl",
        "OutputImpl",
        "HashExchangeImpl",
        "GatherExchangeImpl",
    ] {
        enabled.insert(cat.find(name).unwrap());
    }
    let config = RuleConfig::from_enabled(enabled);
    let compiled = compile(&scan_out(), &obs_with(1_000_000), &config).unwrap();
    // With no rewrites enabled the signature is small and contains only
    // the allowed rules plus required ones.
    let allowed = config.enabled().union(cat.required());
    assert!(compiled.signature.0.difference(&allowed).is_empty());
}

#[test]
fn all_non_required_disabled_fails_with_no_scan_impl() {
    let config = RuleConfig::from_enabled(RuleSet::EMPTY);
    let err = compile(&scan_out(), &obs_with(1000), &config).unwrap_err();
    assert!(matches!(
        err,
        scope_optimizer::CompileError::NoImplementation { .. }
    ));
}

#[test]
fn empty_predicate_select_is_eliminated() {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(100, 0.0, DomainId(0));
    cat.add_table(1_000_000, 100, 1, vec![c]);
    let mut g = PlanGraph::new();
    let s = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::true_pred(),
        },
        vec![s],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    g.set_root(o);
    let compiled = compile(&g, &cat.observe(), &RuleConfig::default_config()).unwrap();
    // SelectOnTrue drops the trivially-true filter from the winning plan.
    let filters = compiled
        .plan
        .reachable()
        .into_iter()
        .filter(|&id| compiled.plan.node(id).op.name() == "Filter")
        .count();
    assert_eq!(
        filters,
        0,
        "TRUE filter survived:\n{}",
        compiled.plan.render()
    );
}
