//! End-to-end compilation tests: raw script plan → physical plan +
//! signature, under the default and steered rule configurations.

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::rules::RuleCategory;
use scope_optimizer::{compile, CompileError, PhysOp, RuleCatalog, RuleConfig, RuleSet};

/// A catalog with two joinable tables and a couple of filterable columns.
fn test_catalog() -> (TrueCatalog, Vec<ColId>) {
    let mut cat = TrueCatalog::new();
    let k0 = cat.add_column(50_000, 0.0, DomainId(0)); // join key, left
    let a = cat.add_column(200, 0.0, DomainId(1)); // filter col
    let k1 = cat.add_column(50_000, 0.0, DomainId(0)); // join key, right
    let b = cat.add_column(1_000, 0.0, DomainId(2)); // group key
    cat.add_table(2_000_000, 120, 11, vec![k0, a]);
    cat.add_table(800_000, 80, 22, vec![k1, b]);
    (cat, vec![k0, a, k1, b])
}

/// SELECT b, count(*) FROM t0 JOIN t1 ON k0=k1 WHERE a=? GROUP BY b → out
fn join_agg_plan(cols: &[ColId]) -> PlanGraph {
    let mut g = PlanGraph::new();
    let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom::unknown(cols[1], CmpOp::Eq, Literal::Int(7))),
        },
        vec![s0],
    );
    let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
    let j = g.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(cols[0], cols[2])],
        },
        vec![f, s1],
    );
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![cols[3]],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![j],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
    g.set_root(o);
    g
}

#[test]
fn default_config_compiles_join_agg_job() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let compiled = compile(&plan, &obs, &RuleConfig::default_config()).expect("compiles");
    assert!(compiled.est_cost > 0.0);
    assert!(compiled.plan.len() >= 6);
    // The signature contains required rules and at least one impl rule.
    let catlg = RuleCatalog::global();
    assert!(compiled
        .signature
        .contains(catlg.find("GetToRange").unwrap()));
    assert!(compiled
        .signature
        .contains(catlg.find("BuildOutput").unwrap()));
    let has_impl = compiled
        .signature
        .on_rules()
        .any(|id| catlg.rule(id).category == RuleCategory::Implementation);
    assert!(has_impl, "signature must include implementation rules");
    // Exploration actually happened.
    assert!(compiled.memo_exprs > compiled.memo_groups);
}

#[test]
fn signature_is_subset_of_enabled_union_required() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let config = RuleConfig::default_config();
    let compiled = compile(&plan, &obs, &config).unwrap();
    let catlg = RuleCatalog::global();
    let allowed = config.enabled().union(catlg.required());
    assert!(compiled.signature.0.difference(&allowed).is_empty());
}

#[test]
fn disabling_all_join_impls_fails_compilation() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let catlg = RuleCatalog::global();
    let mut config = RuleConfig::default_config();
    for rule in catlg.impls_for(scope_ir::OpKind::Join) {
        config.disable(*rule);
    }
    let err = compile(&plan, &obs, &config).unwrap_err();
    assert_eq!(
        err,
        CompileError::NoImplementation {
            kind: scope_ir::OpKind::Join
        }
    );
}

#[test]
fn disabling_used_join_impl_steers_to_alternative() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let catlg = RuleCatalog::global();

    let default = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
    // Find which join impl won by inspecting the physical plan.
    let join_node = default
        .plan
        .reachable()
        .into_iter()
        .find(|&id| {
            matches!(
                default.plan.node(id).op,
                PhysOp::HashJoin { .. }
                    | PhysOp::MergeJoin { .. }
                    | PhysOp::BroadcastJoin { .. }
                    | PhysOp::LoopJoin { .. }
                    | PhysOp::IndexJoin { .. }
            )
        })
        .expect("plan has a join");
    let winner_rule = default.plan.node(join_node).created_by.unwrap();

    let mut config = RuleConfig::default_config();
    config.disable(winner_rule);
    let steered = compile(&plan, &obs, &config).unwrap();
    assert!(
        !steered.signature.contains(winner_rule),
        "disabled rule must not appear in the new signature"
    );
    // A different join implementation was chosen.
    let new_join = steered
        .plan
        .reachable()
        .into_iter()
        .find_map(|id| {
            steered.plan.node(id).created_by.filter(|r| {
                catlg.rule(*r).category == RuleCategory::Implementation
                    && catlg.rule(*r).name.contains("Join")
            })
        })
        .expect("steered plan has a join impl");
    assert_ne!(new_join, winner_rule);
}

#[test]
fn exchanges_are_inserted_and_enforce_exchange_fires() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let compiled = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
    assert!(
        compiled.plan.num_exchanges() > 0,
        "distributed plan needs exchanges"
    );
    let catlg = RuleCatalog::global();
    assert!(compiled
        .signature
        .contains(catlg.find("EnforceExchange").unwrap()));
}

#[test]
fn compilation_is_deterministic() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let a = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
    let b = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
    assert_eq!(a.est_cost, b.est_cost);
    assert_eq!(a.signature, b.signature);
    assert_eq!(a.plan.len(), b.plan.len());
}

#[test]
fn alternate_configs_can_change_estimated_cost() {
    let (cat, cols) = test_catalog();
    let obs = cat.observe();
    let plan = join_agg_plan(&cols);
    let default = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();

    // Disable every on-by-default transformation that fired; the optimizer
    // must still compile (implementation rules remain) and will generally
    // produce a different plan/cost.
    let catlg = RuleCatalog::global();
    let mut config = RuleConfig::default_config();
    let fired_transforms: RuleSet = default
        .signature
        .on_rules()
        .filter(|id| catlg.rule(*id).category == RuleCategory::OnByDefault)
        .collect();
    config.disable_all(&fired_transforms);
    let steered = compile(&plan, &obs, &config).unwrap();
    // Signatures must differ (the disabled rules are gone).
    assert!(default.signature != steered.signature || default.est_cost != steered.est_cost);
}
