//! Integration tests for the fingerprint-keyed compile cache against the
//! real optimizer: cached plans must be bit-identical to fresh compiles,
//! errors must never be cached, and concurrent lookups of the same key must
//! converge on one shared entry.

use std::sync::Arc;

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{ObservableCatalog, PlanGraph, TrueCatalog};
use scope_optimizer::{
    compile, plan_catalog_fingerprint, CompileCache, RuleCatalog, RuleConfig, RuleSet,
};

fn test_job() -> (PlanGraph, ObservableCatalog) {
    let mut cat = TrueCatalog::new();
    let k0 = cat.add_column(50_000, 0.0, DomainId(0));
    let a = cat.add_column(200, 0.0, DomainId(1));
    let k1 = cat.add_column(50_000, 0.0, DomainId(0));
    let b = cat.add_column(1_000, 0.0, DomainId(2));
    cat.add_table(2_000_000, 120, 11, vec![k0, a]);
    cat.add_table(800_000, 80, 22, vec![k1, b]);

    let mut g = PlanGraph::new();
    let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate::atom(PredAtom::unknown(a, CmpOp::Eq, Literal::Int(7))),
        },
        vec![s0],
    );
    let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
    let j = g.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(k0, k1)],
        },
        vec![f, s1],
    );
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![b],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![j],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 99 }, vec![agg]);
    g.set_root(o);
    (g, cat.observe())
}

/// A configuration that disables every implementation rule: no physical
/// plan can be produced, so compilation must fail.
fn impossible_config() -> RuleConfig {
    let cat = RuleCatalog::global();
    let enabled: RuleSet = cat
        .non_required()
        .iter()
        .filter(|id| cat.rule(*id).category != scope_optimizer::RuleCategory::Implementation)
        .collect();
    RuleConfig::from_enabled(enabled)
}

#[test]
fn cached_plan_is_bit_identical_to_a_fresh_compile() {
    let (plan, obs) = test_job();
    let fp = plan_catalog_fingerprint(&plan, &obs);
    let config = RuleConfig::default_config();
    let cache = CompileCache::new(64);

    let fresh = compile(&plan, &obs, &config).expect("compiles");
    let cached = cache
        .get_or_compile(fp, &config, || compile(&plan, &obs, &config))
        .expect("compiles");
    let hit = cache
        .get_or_compile(fp, &config, || panic!("must not recompile on a hit"))
        .expect("hit");

    // The hit shares the insertion's allocation...
    assert!(Arc::ptr_eq(&cached, &hit));
    // ...and the cached result is bit-identical to an uncached compile
    // (plans have no PartialEq; their Debug form is a full rendering).
    assert_eq!(cached.est_cost.to_bits(), fresh.est_cost.to_bits());
    assert_eq!(cached.signature, fresh.signature);
    assert_eq!(format!("{:?}", cached.plan), format!("{:?}", fresh.plan));
    assert_eq!(cache.stats().hits, 1);
    assert_eq!(cache.stats().misses, 1);
}

#[test]
fn compile_errors_are_never_cached() {
    let (plan, obs) = test_job();
    let fp = plan_catalog_fingerprint(&plan, &obs);
    let config = impossible_config();
    let cache = CompileCache::new(64);

    for _ in 0..3 {
        assert!(cache
            .get_or_compile(fp, &config, || compile(&plan, &obs, &config))
            .is_err());
    }
    // Every attempt recompiled: the failure was never served from cache.
    assert_eq!(cache.stats().misses, 3);
    assert_eq!(cache.stats().hits, 0);
    assert_eq!(cache.len(), 0);

    // The failing key must not shadow a later success for a different
    // config under the same fingerprint.
    let ok = cache.get_or_compile(fp, &RuleConfig::default_config(), || {
        compile(&plan, &obs, &RuleConfig::default_config())
    });
    assert!(ok.is_ok());
    assert_eq!(cache.len(), 1);
}

#[test]
fn concurrent_lookups_converge_on_one_entry() {
    let (plan, obs) = test_job();
    let fp = plan_catalog_fingerprint(&plan, &obs);
    let config = RuleConfig::default_config();
    let cache = CompileCache::new(64);

    let results: Vec<Arc<_>> = std::thread::scope(|s| {
        // The intermediate collect is the point: all eight threads must be
        // spawned before the first join, or the "race" runs sequentially.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(|| {
                    cache
                        .get_or_compile(fp, &config, || compile(&plan, &obs, &config))
                        .expect("compiles")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Racing threads may each compile (the closure runs outside the lock),
    // but first-insert-wins: exactly one entry exists afterwards and every
    // *subsequent* lookup shares it.
    assert_eq!(cache.len(), 1);
    let canonical = cache
        .get_or_compile(fp, &config, || panic!("must hit"))
        .unwrap();
    for r in &results {
        assert_eq!(r.est_cost.to_bits(), canonical.est_cost.to_bits());
        assert_eq!(r.signature, canonical.signature);
    }
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 9);
    assert_eq!(stats.insertions, 1);
}

#[test]
fn distinct_configs_get_distinct_entries_under_one_fingerprint() {
    let (plan, obs) = test_job();
    let fp = plan_catalog_fingerprint(&plan, &obs);
    let cache = CompileCache::new(64);
    let cat = RuleCatalog::global();

    let default = RuleConfig::default_config();
    let all = RuleConfig::from_enabled(cat.non_required());
    assert_ne!(default.enabled(), all.enabled());

    let a = cache
        .get_or_compile(fp, &default, || compile(&plan, &obs, &default))
        .unwrap();
    let b = cache
        .get_or_compile(fp, &all, || compile(&plan, &obs, &all))
        .unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(cache.len(), 2);
    // Both keys hit independently afterwards.
    assert!(Arc::ptr_eq(
        &a,
        &cache
            .get_or_compile(fp, &default, || panic!("hit"))
            .unwrap()
    ));
    assert!(Arc::ptr_eq(
        &b,
        &cache.get_or_compile(fp, &all, || panic!("hit")).unwrap()
    ));
}
