//! Direct tests of the transformation-rule engine: each family applied to a
//! hand-built memo, checking the rewritten alternative's shape.

use std::collections::BTreeSet;

use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, TableId, UdoId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::estimate::Estimator;
use scope_optimizer::memo::{GroupId, MExprId, Memo};
use scope_optimizer::transform::{apply_rule, referenced_cols, TransformCtx};
use scope_optimizer::{RuleCatalog, RuleId};

struct Fixture {
    cat: TrueCatalog,
}

impl Fixture {
    fn new() -> Fixture {
        let mut cat = TrueCatalog::new();
        for i in 0..6 {
            cat.add_column(1000 + i, 0.0, DomainId(i as u32));
        }
        cat.add_table(1_000_000, 100, 1, vec![ColId(0), ColId(1), ColId(2)]);
        cat.add_table(500_000, 80, 2, vec![ColId(3), ColId(4)]);
        Fixture { cat }
    }

    /// Ingest a plan, apply `rule_name` to every expression once, and
    /// return (memo, root, number of new expressions).
    fn apply(&self, plan: &PlanGraph, rule_name: &str) -> (Memo, GroupId, usize) {
        let obs = self.cat.observe();
        let est = Estimator::new(&obs);
        let mut referenced: BTreeSet<ColId> = BTreeSet::new();
        for (_, node) in plan.iter() {
            referenced_cols(&node.op, &mut referenced);
        }
        let (mut memo, root) = Memo::from_plan(plan, &est).unwrap();
        let catalog = RuleCatalog::global();
        let rule = catalog.rule(
            catalog
                .find(rule_name)
                .unwrap_or_else(|| panic!("rule {rule_name}")),
        );
        let ctx = TransformCtx {
            est: &est,
            referenced: &referenced,
        };
        let mut added = 0;
        let upto = memo.num_exprs();
        for i in 0..upto {
            added += apply_rule(rule, MExprId(i as u32), &mut memo, &ctx);
        }
        (memo, root, added)
    }
}

fn atom(col: u32, op: CmpOp) -> PredAtom {
    PredAtom::unknown(ColId(col), op, Literal::Int(1))
}

fn filter(atoms: Vec<PredAtom>) -> LogicalOp {
    LogicalOp::Filter {
        predicate: Predicate { atoms },
    }
}

fn scan(t: u32) -> LogicalOp {
    LogicalOp::RangeGet {
        table: TableId(t),
        pushed: Predicate::true_pred(),
    }
}

/// Find an expression in a group matching a predicate over its op.
fn find_in_group<F: Fn(&LogicalOp) -> bool>(memo: &Memo, g: GroupId, f: F) -> bool {
    memo.group_exprs(g).any(|e| f(memo.op(e)))
}

/// First child group of a group's canonical expression.
fn canonical_child0(memo: &Memo, g: GroupId) -> GroupId {
    memo.children(memo.canonical(g))[0]
}

#[test]
fn collapse_filters_merges_adjacent_filters() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let f1 = p.add_unchecked(filter(vec![atom(0, CmpOp::Eq)]), vec![s]);
    let f2 = p.add_unchecked(filter(vec![atom(1, CmpOp::Range)]), vec![f1]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f2]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "CollapseSelects");
    assert_eq!(added, 1);
    // The merged filter lives in the upper filter's group.
    let out_child = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, out_child, |op| {
        matches!(op, LogicalOp::Filter { predicate } if predicate.len() == 2)
    }));
}

#[test]
fn filter_into_scan_pushes_predicate() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let f = p.add_unchecked(filter(vec![atom(0, CmpOp::Eq)]), vec![s]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "SelectPartitions");
    assert_eq!(added, 1);
    let out_child = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, out_child, |op| {
        matches!(op, LogicalOp::RangeGet { pushed, .. } if pushed.len() == 1)
    }));
}

#[test]
fn filter_below_join_splits_by_side() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let l = p.add_unchecked(scan(0), vec![]);
    let r = p.add_unchecked(scan(1), vec![]);
    let j = p.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(3))],
        },
        vec![l, r],
    );
    // One atom per side.
    let f = p.add_unchecked(
        filter(vec![atom(1, CmpOp::Eq), atom(4, CmpOp::Range)]),
        vec![j],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "SelectOnJoin");
    assert!(added >= 1);
    // An alternative join over filtered children exists in the filter's
    // group (no residual — both atoms moved).
    let out_child = canonical_child0(&memo, root);
    let pushed_join = memo.group_exprs(out_child).any(|e| {
        matches!(memo.op(e), LogicalOp::Join { .. })
            && memo
                .children(e)
                .iter()
                .all(|&c| matches!(memo.canonical_op(c), LogicalOp::Filter { .. }))
    });
    assert!(pushed_join, "expected Join over per-side Filters");
}

#[test]
fn eq_only_pushdown_keeps_residual_above() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let proj = p.add_unchecked(
        LogicalOp::Project {
            cols: vec![ColId(0), ColId(1), ColId(2)],
            computed: 0,
        },
        vec![s],
    );
    let f = p.add_unchecked(
        filter(vec![atom(1, CmpOp::Eq), atom(2, CmpOp::Like)]),
        vec![proj],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    p.set_root(o);
    // SelectOnProject pushes everything; the eq_only variants exist for
    // Join/GroupBy — here use the full pushdown and check both atoms move.
    let (memo, root, added) = fx.apply(&p, "SelectOnProject");
    assert_eq!(added, 1);
    let out_child = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, out_child, |op| {
        matches!(op, LogicalOp::Project { .. })
    }));
}

#[test]
fn reorder_atoms_orders_by_estimated_selectivity() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    // Range (sel 1/3) before Eq (sel ~1/1000): SelAsc must swap them.
    let f = p.add_unchecked(
        filter(vec![atom(1, CmpOp::Range), atom(0, CmpOp::Eq)]),
        vec![s],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "SelectPredNormalized");
    assert_eq!(added, 1);
    let out_child = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, out_child, |op| {
        matches!(op, LogicalOp::Filter { predicate }
            if predicate.atoms[0].op == CmpOp::Eq && predicate.atoms[1].op == CmpOp::Range)
    }));
}

#[test]
fn join_commute_swaps_children_and_keys() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let l = p.add_unchecked(scan(0), vec![]);
    let r = p.add_unchecked(scan(1), vec![]);
    let j = p.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(3))],
        },
        vec![l, r],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![j]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "JoinCommute");
    assert_eq!(added, 1);
    let join_group = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, join_group, |op| {
        matches!(op, LogicalOp::Join { keys, .. } if keys == &vec![(ColId(3), ColId(0))])
    }));
}

#[test]
fn join_on_union_distributes_join_over_branches() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let b1 = p.add_unchecked(scan(0), vec![]);
    let b2 = p.add_unchecked(scan(0), vec![]);
    let u = p.add_unchecked(LogicalOp::UnionAll, vec![b1, b2]);
    let r = p.add_unchecked(scan(1), vec![]);
    let j = p.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(3))],
        },
        vec![u, r],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![j]);
    p.set_root(o);
    // b1 == b2 structurally → they dedup to one group; union arity 2 kept.
    let (memo, root, added) = fx.apply(&p, "CorrelatedJoinOnUnionAll1");
    assert!(added >= 1, "rule must fire");
    let join_group = canonical_child0(&memo, root);
    assert!(
        find_in_group(&memo, join_group, |op| {
            matches!(op, LogicalOp::UnionAll)
        }),
        "expected UnionAll(Join, Join) alternative"
    );
}

#[test]
fn split_groupby_produces_partial_final_pair() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let g = p.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![ColId(1)],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![s],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![g]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "SplitGroupByHashed");
    assert_eq!(added, 1);
    let gb_group = canonical_child0(&memo, root);
    let has_split = memo.group_exprs(gb_group).any(|e| {
        matches!(memo.op(e), LogicalOp::GroupBy { partial: false, .. })
            && memo.children(e).len() == 1
            && matches!(
                memo.canonical_op(memo.children(e)[0]),
                LogicalOp::GroupBy { partial: true, .. }
            )
    });
    assert!(has_split);
}

#[test]
fn union_flatten_inlines_nested_unions() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let a = p.add_unchecked(scan(0), vec![]);
    let b = p.add_unchecked(scan(1), vec![]);
    let inner = p.add_unchecked(LogicalOp::UnionAll, vec![a, b]);
    let c = p.add_unchecked(LogicalOp::Process { udo: UdoId(0) }, vec![b]);
    let outer = p.add_unchecked(LogicalOp::UnionAll, vec![inner, c]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![outer]);
    p.set_root(o);
    let (memo, root, added) = fx.apply(&p, "UnionAllOnUnionAll");
    assert!(added >= 1);
    let u_group = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, u_group, |op| matches!(
        op,
        LogicalOp::UnionAll
    )));
    // Flattened alternative has 3 children.
    let flattened = memo
        .group_exprs(u_group)
        .any(|e| matches!(memo.op(e), LogicalOp::UnionAll) && memo.children(e).len() == 3);
    assert!(flattened);
}

#[test]
fn swap_unary_commutes_adjacent_operators() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let sort = p.add_unchecked(
        LogicalOp::Sort {
            keys: vec![ColId(0)],
        },
        vec![s],
    );
    let f = p.add_unchecked(filter(vec![atom(1, CmpOp::Eq)]), vec![sort]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![f]);
    p.set_root(o);
    // ReseqFilterOnSort: Filter over Sort → Sort over Filter.
    let (memo, root, added) = fx.apply(&p, "ReseqFilterOnSort");
    assert_eq!(added, 1);
    let top_group = canonical_child0(&memo, root);
    assert!(find_in_group(&memo, top_group, |op| matches!(
        op,
        LogicalOp::Sort { .. }
    )));
}

#[test]
fn rules_do_not_fire_on_mismatched_patterns() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let s = p.add_unchecked(scan(0), vec![]);
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![s]);
    p.set_root(o);
    for name in [
        "CollapseSelects",
        "SelectOnJoin",
        "JoinCommute",
        "SplitGroupBy",
        "UnionAllOnUnionAll",
        "CorrelatedJoinOnUnionAll1",
        "TopOnRestrRemap",
    ] {
        let (_, _, added) = fx.apply(&p, name);
        assert_eq!(added, 0, "{name} fired on a bare scan");
    }
}

#[test]
fn prune_below_respects_referenced_columns() {
    let fx = Fixture::new();
    let mut p = PlanGraph::new();
    let l = p.add_unchecked(scan(0), vec![]); // 3 cols
    let r = p.add_unchecked(scan(1), vec![]); // 2 cols
    let j = p.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(3))],
        },
        vec![l, r],
    );
    let g = p.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![ColId(1)],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![j],
    );
    let o = p.add_unchecked(LogicalOp::Output { stream: 0 }, vec![g]);
    p.set_root(o);
    // Lazy pruning needs ≥4 droppable columns; this plan references every
    // column except ColId(2) and ColId(4), so the lazy rule must NOT fire,
    // while the eager off-by-default variant fires.
    let (_, _, lazy_added) = fx.apply(&p, "PruneJoin");
    assert_eq!(lazy_added, 0);
    let (memo, root, eager_added) = fx.apply(&p, "EagerPruneJoin");
    assert!(eager_added >= 1);
    // The pruning projection keeps only referenced columns.
    let gb_group = canonical_child0(&memo, root);
    let join_group = canonical_child0(&memo, gb_group);
    let pruned = memo.group_exprs(join_group).any(|e| {
        matches!(memo.op(e), LogicalOp::Join { .. })
            && memo.children(e).iter().any(|&c| {
                matches!(memo.canonical_op(c),
                    LogicalOp::Project { cols, .. } if !cols.contains(&ColId(2)))
            })
    });
    assert!(pruned);
}

#[test]
fn rule_id_lookup_sanity() {
    // Ids used in the transform tests exist and are transformation rules.
    let cat = RuleCatalog::global();
    for name in ["CollapseSelects", "SelectOnJoin", "JoinCommute"] {
        let id: RuleId = cat.find(name).unwrap();
        assert!(cat.rule(id).action.is_transformation());
    }
}
