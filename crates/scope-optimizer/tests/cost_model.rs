//! Cost-model behaviour tests across the remaining implementation
//! alternatives: relative orderings the search relies on.

use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::ops::{AggFunc, LogicalOp};
use scope_ir::TrueCatalog;
use scope_optimizer::cost::{exchange_cost, impl_cost, CostEstimate, CostWeights};
use scope_optimizer::estimate::LogicalEst;
use scope_optimizer::rules::PhysImpl;
use scope_optimizer::Partitioning;

/// Default scalarization — the single ranked value the search compares.
fn ds(c: &CostEstimate) -> f64 {
    CostWeights::DEFAULT.scalarize(c)
}

fn obs() -> scope_ir::ObservableCatalog {
    let mut cat = TrueCatalog::new();
    let c = cat.add_column(1000, 0.0, DomainId(0));
    cat.add_table(10_000_000, 100, 1, vec![c]);
    cat.observe()
}

fn est(rows: f64) -> LogicalEst {
    LogicalEst {
        rows,
        row_bytes: 100.0,
        cols: vec![ColId(0)],
    }
}

fn agg_op(partial: bool) -> LogicalOp {
    LogicalOp::GroupBy {
        keys: vec![ColId(0)],
        aggs: vec![AggFunc::Count],
        partial,
    }
}

#[test]
fn agg_impl_ordering_for_large_inputs() {
    let op = agg_op(false);
    let own = est(1e4);
    let child = est(1e8);
    let o = obs();
    let hash = impl_cost(PhysImpl::HashAgg, &op, &own, &[&child], &o);
    let sort = impl_cost(PhysImpl::SortAgg, &op, &own, &[&child], &o);
    let stream = impl_cost(PhysImpl::StreamAgg, &op, &own, &[&child], &o);
    // Sorting dominates hashing for large inputs; streaming is cheapest
    // per-row (it needs range-partitioned input instead).
    assert!(ds(&sort.cost) > ds(&hash.cost));
    assert!(ds(&stream.cost) < ds(&hash.cost));
}

#[test]
fn top_heap_beats_global_sort_for_big_inputs() {
    let op = LogicalOp::Top { k: 100 };
    let own = est(100.0);
    let child = est(1e8);
    let o = obs();
    let heap = impl_cost(PhysImpl::TopN, &op, &own, &[&child], &o);
    let sort = impl_cost(PhysImpl::TopSort, &op, &own, &[&child], &o);
    assert!(
        ds(&heap.cost) < ds(&sort.cost) / 5.0,
        "{} vs {}",
        ds(&heap.cost),
        ds(&sort.cost)
    );
    assert!(heap.dop >= sort.dop);
}

#[test]
fn serial_variants_cost_more_on_big_inputs() {
    let o = obs();
    let sort_op = LogicalOp::Sort {
        keys: vec![ColId(0)],
    };
    let own = est(1e8);
    let child = est(1e8);
    let par = impl_cost(PhysImpl::SortParallel, &sort_op, &own, &[&child], &o);
    let ser = impl_cost(PhysImpl::SortSerial, &sort_op, &own, &[&child], &o);
    assert!(ds(&par.cost) < ds(&ser.cost));
    assert_eq!(ser.dop, 1);

    let union_op = LogicalOp::UnionAll;
    let par_u = impl_cost(
        PhysImpl::UnionConcat,
        &union_op,
        &own,
        &[&child, &child],
        &o,
    );
    let ser_u = impl_cost(
        PhysImpl::UnionSerial,
        &union_op,
        &own,
        &[&child, &child],
        &o,
    );
    assert!(ds(&par_u.cost) < ds(&ser_u.cost));
}

#[test]
fn union_virtual_charges_materialization() {
    let o = obs();
    let op = LogicalOp::UnionAll;
    let own = est(2e7);
    let child = est(1e7);
    let concat = impl_cost(PhysImpl::UnionConcat, &op, &own, &[&child, &child], &o);
    let virt = impl_cost(PhysImpl::UnionVirtual, &op, &own, &[&child, &child], &o);
    // The write+read makes the estimated cost strictly higher — the reason
    // the default plan prefers UnionAllToUnionAll even when materializing
    // would truly be better under skew (the QA3/QB3 motif).
    assert!(ds(&virt.cost) > ds(&concat.cost));
}

#[test]
fn window_impls_track_their_agg_counterparts() {
    let o = obs();
    let op = LogicalOp::Window {
        keys: vec![ColId(0)],
    };
    let own = est(1e7);
    let child = est(1e7);
    let hash = impl_cost(PhysImpl::WindowHash, &op, &own, &[&child], &o);
    let sort = impl_cost(PhysImpl::WindowSort, &op, &own, &[&child], &o);
    assert!(ds(&hash.cost) < ds(&sort.cost));
}

#[test]
fn exchange_costs_reflect_data_movement() {
    let bytes = 1e10;
    let hash = exchange_cost(PhysImpl::ExchangeHash, bytes, 50);
    let range = exchange_cost(PhysImpl::ExchangeRange, bytes, 50);
    let bcast = exchange_cost(PhysImpl::ExchangeBroadcast, bytes, 50);
    let gather = exchange_cost(PhysImpl::ExchangeGather, bytes, 50);
    // Range pays sampling on top of hash; gather serializes everything.
    assert!(ds(&range.cost) > ds(&hash.cost));
    assert!(ds(&gather.cost) > ds(&hash.cost));
    assert!(ds(&bcast.cost) > ds(&hash.cost));
    assert_eq!(gather.dop, 1);
    assert_eq!(hash.dop, 50);
}

#[test]
fn partial_agg_has_no_partitioning_requirement() {
    use scope_optimizer::cost::required_child_parts;
    let full = required_child_parts(PhysImpl::HashAgg, &agg_op(false), 1);
    let partial = required_child_parts(PhysImpl::HashAgg, &agg_op(true), 1);
    assert!(matches!(full[0], Partitioning::Hash(_)));
    assert!(matches!(partial[0], Partitioning::Any));
}

#[test]
fn global_agg_without_keys_gathers() {
    use scope_optimizer::cost::required_child_parts;
    let op = LogicalOp::GroupBy {
        keys: vec![],
        aggs: vec![AggFunc::Count],
        partial: false,
    };
    let parts = required_child_parts(PhysImpl::HashAgg, &op, 1);
    assert_eq!(parts[0], Partitioning::Singleton);
}

#[test]
fn scan_variants_dop_and_indexing() {
    let o = obs();
    let op = LogicalOp::RangeGet {
        table: TableId(0),
        pushed: scope_ir::Predicate::true_pred(),
    };
    let own = est(1e7);
    let par = impl_cost(PhysImpl::ScanParallel, &op, &own, &[], &o);
    let ser = impl_cost(PhysImpl::ScanSerial, &op, &own, &[], &o);
    assert!(par.dop > 1);
    assert_eq!(ser.dop, 1);
    assert!(ds(&par.cost) < ds(&ser.cost));
    // Without a pushed predicate the indexed scan has no advantage.
    let idx = impl_cost(PhysImpl::ScanIndexed, &op, &own, &[], &o);
    assert!(ds(&idx.cost) >= ds(&par.cost) * 0.5);
}
