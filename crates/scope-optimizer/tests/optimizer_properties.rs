//! Property tests over compilation invariants: estimates stay finite and
//! positive, signatures respect configurations, disabling non-fired rules
//! is a no-op, and estimated cost responds monotonically to input size.

use proptest::prelude::*;
use scope_ir::expr::{CmpOp, Literal, PredAtom, Predicate};
use scope_ir::ids::{ColId, DomainId, TableId};
use scope_ir::ops::{AggFunc, JoinKind, LogicalOp};
use scope_ir::{PlanGraph, TrueCatalog};
use scope_optimizer::{compile, RuleCatalog, RuleConfig, RuleId};

fn catalog(rows0: u64, rows1: u64) -> TrueCatalog {
    let mut cat = TrueCatalog::new();
    let k0 = cat.add_column(50_000, 0.0, DomainId(0));
    let a = cat.add_column(200, 0.0, DomainId(1));
    let k1 = cat.add_column(50_000, 0.0, DomainId(0));
    let b = cat.add_column(1_000, 0.0, DomainId(2));
    cat.add_table(rows0, 120, 11, vec![k0, a]);
    cat.add_table(rows1, 80, 22, vec![k1, b]);
    cat
}

fn join_plan(n_atoms: usize) -> PlanGraph {
    let mut g = PlanGraph::new();
    let s0 = g.add_unchecked(LogicalOp::Get { table: TableId(0) }, vec![]);
    let atoms = (0..n_atoms)
        .map(|i| PredAtom::unknown(ColId(1), CmpOp::Range, Literal::Int(i as i64)))
        .collect();
    let f = g.add_unchecked(
        LogicalOp::Select {
            predicate: Predicate { atoms },
        },
        vec![s0],
    );
    let s1 = g.add_unchecked(LogicalOp::Get { table: TableId(1) }, vec![]);
    let j = g.add_unchecked(
        LogicalOp::Join {
            kind: JoinKind::Inner,
            keys: vec![(ColId(0), ColId(2))],
        },
        vec![f, s1],
    );
    let agg = g.add_unchecked(
        LogicalOp::GroupBy {
            keys: vec![ColId(3)],
            aggs: vec![AggFunc::Count],
            partial: false,
        },
        vec![j],
    );
    let o = g.add_unchecked(LogicalOp::Output { stream: 9 }, vec![agg]);
    g.set_root(o);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compilation succeeds for any input sizes, with finite positive cost
    /// and finite estimates on every node.
    #[test]
    fn compile_is_total_over_sizes(rows0 in 1_000u64..2_000_000_000, rows1 in 1_000u64..2_000_000_000, n_atoms in 0usize..6) {
        let cat = catalog(rows0, rows1);
        let obs = cat.observe();
        let plan = join_plan(n_atoms);
        let compiled = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
        prop_assert!(compiled.est_cost.is_finite() && compiled.est_cost > 0.0);
        for id in compiled.plan.reachable() {
            let node = compiled.plan.node(id);
            prop_assert!(node.est_rows.is_finite() && node.est_rows >= 0.0);
            prop_assert!(node.est_cost.is_finite() && node.est_cost >= 0.0);
            prop_assert!(node.dop >= 1);
        }
    }

    /// Disabling rules that did NOT fire leaves the plan and cost unchanged
    /// — the footnote-2 property the candidate search relies on.
    #[test]
    fn disabling_unfired_rules_is_noop(seed in any::<u64>()) {
        let cat = catalog(2_000_000, 800_000);
        let obs = cat.observe();
        let plan = join_plan(2);
        let default = compile(&plan, &obs, &RuleConfig::default_config()).unwrap();
        let rules = RuleCatalog::global();
        // Pick pseudo-random non-required rules outside the signature.
        let mut config = RuleConfig::default_config();
        let mut x = seed;
        let mut disabled = 0;
        while disabled < 12 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let id = RuleId((x >> 33) as u16 % 256);
            if !rules.required().contains(id) && !default.signature.contains(id) {
                config.disable(id);
                disabled += 1;
            }
        }
        let steered = compile(&plan, &obs, &config).unwrap();
        prop_assert_eq!(steered.signature, default.signature);
        prop_assert!((steered.est_cost - default.est_cost).abs() < 1e-9);
    }

    /// Estimated cost never decreases when the (scanned) input grows, all
    /// else equal.
    #[test]
    fn cost_monotone_in_input_size(rows in 10_000u64..1_000_000_000) {
        let plan = join_plan(1);
        let cat_small = catalog(rows, 500_000);
        let cat_big = catalog(rows.saturating_mul(4), 500_000);
        let c_small = compile(&plan, &cat_small.observe(), &RuleConfig::default_config()).unwrap();
        let c_big = compile(&plan, &cat_big.observe(), &RuleConfig::default_config()).unwrap();
        prop_assert!(
            c_big.est_cost >= c_small.est_cost * 0.9,
            "cost fell sharply with bigger input: {} -> {}",
            c_small.est_cost,
            c_big.est_cost
        );
    }

    /// The signature always contains the four base required rules for this
    /// plan shape, regardless of configuration.
    #[test]
    fn required_rules_always_fire(seed in any::<u64>()) {
        let cat = catalog(2_000_000, 800_000);
        let obs = cat.observe();
        let plan = join_plan(1);
        let rules = RuleCatalog::global();
        let mut config = RuleConfig::default_config();
        let mut x = seed;
        for _ in 0..30 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            config.disable(RuleId((x >> 33) as u16 % 256));
        }
        if let Ok(compiled) = compile(&plan, &obs, &config) {
            for name in ["GetToRange", "SelectToFilter", "BuildOutput"] {
                prop_assert!(compiled.signature.contains(rules.find(name).unwrap()), "{} missing", name);
            }
        }
    }
}
